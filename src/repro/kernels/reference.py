"""Reference kernel backend: the verified no-grad inference paths.

Every function here is the code that previously lived inline in
``repro.core`` — the GAT-e stack delegates to the Tensor
``forward_batch`` implementation (tape-free under ``no_grad``) and the
decoder loops are the raw-numpy replicas proven bit-identical to the
Tensor path by ``tests/test_core_batching.py::TestFastPathParity``.
The fused backend is certified against these functions by the
differential conformance suite.

All entry points take and return plain ``np.ndarray`` values; module
parameters are read through the passed model objects (duck-typed, the
same objects ``repro.core`` builds).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autodiff import Tensor
from ..nn.positional import sinusoidal_position_encoding


def recurrent_step(recurrent, x: np.ndarray, state):
    """Raw-numpy replica of ``RecurrentCell.step`` for inference.

    Performs the exact floating-point operations of the Tensor-based
    cells (same association order, same sigmoid/tanh formulas) without
    building tape nodes; outputs are bit-identical to the Tensor path.
    """
    cell = recurrent.cell
    d = cell.hidden_dim
    if recurrent.cell_type == "lstm":
        h, c = state
        gates = x @ cell.weight_x.data + h @ cell.weight_h.data + cell.bias.data
        i_gate = 1.0 / (1.0 + np.exp(-gates[..., 0 * d:1 * d]))
        f_gate = 1.0 / (1.0 + np.exp(-gates[..., 1 * d:2 * d]))
        g_gate = np.tanh(gates[..., 2 * d:3 * d])
        o_gate = 1.0 / (1.0 + np.exp(-gates[..., 3 * d:4 * d]))
        c_next = f_gate * c + i_gate * g_gate
        h_next = o_gate * np.tanh(c_next)
        return h_next, (h_next, c_next)
    h = state
    gates_x = x @ cell.weight_x.data + cell.bias.data
    gates_h = h @ cell.weight_h.data
    reset = 1.0 / (1.0 + np.exp(-(gates_x[..., 0:d] + gates_h[..., 0:d])))
    update = 1.0 / (1.0 + np.exp(-(gates_x[..., d:2 * d]
                                   + gates_h[..., d:2 * d])))
    candidate = np.tanh(gates_x[..., 2 * d:3 * d]
                        + reset * gates_h[..., 2 * d:3 * d])
    one = np.ones_like(update)
    h_next = (one - update) * candidate + update * h
    return h_next, h_next


def _initial_numpy_state(recurrent, batch: int):
    """Zero recurrent state as raw arrays (matching ``initial_state``)."""
    state = recurrent.initial_state((batch,))
    if recurrent.cell_type == "lstm":
        return tuple(s.data for s in state)
    return state.data


def gat_encoder_forward(gat, nodes: np.ndarray, edges: np.ndarray,
                        adjacency: np.ndarray, need_edges: bool = True):
    """GAT-e stack via the Tensor ``forward_batch`` (tape-free under no_grad)."""
    out_nodes, out_edges = gat._forward_batch_tensor(
        Tensor(nodes), Tensor(edges), adjacency, need_edges=need_edges)
    return out_nodes.data, (None if out_edges is None else out_edges.data)


def level_embed(encoder, continuous: np.ndarray, discrete: np.ndarray,
                edge_features: np.ndarray, global_data: np.ndarray):
    """Level feature embedding via the Tensor glue (tape-free under no_grad).

    Delegates to ``LevelEncoder._embed_tensor`` — the exact code the
    training path runs — and unwraps the arrays.
    """
    nodes, edges = encoder._embed_tensor(continuous, discrete, edge_features,
                                         Tensor(global_data))
    return nodes.data, edges.data


def lstm_unroll(cell, sequence: np.ndarray) -> np.ndarray:
    """Unroll an LSTM cell over ``(B, n, d)`` steps via Tensor ops.

    Identical to the Tensor loop previously inlined in
    ``repro.core.encoder._unroll_lstm_batch``; under ``no_grad`` the
    Tensor ops build no tape, so this is the verified reference for the
    fused unroll.
    """
    batch = sequence.shape[0]
    state = cell.initial_state((batch,))
    sequence_t = Tensor(sequence)
    outputs = []
    for step in range(sequence.shape[1]):
        h, c = cell(sequence_t[:, step, :], state)
        state = (h, c)
        outputs.append(h.data)
    return np.stack(outputs, axis=1)


def pointer_decode(decoder, nodes: np.ndarray, courier: np.ndarray,
                   lengths: np.ndarray,
                   adjacency: Optional[np.ndarray] = None) -> np.ndarray:
    """Greedy batched pointer decode (raw numpy, bit-identical to Tensor path).

    The key projection is hoisted out of the loop (the keys never
    change); every other operation is replicated in order, including
    the masked log-softmax, so the argmax (tie behaviour included) is
    bit-identical to the Tensor ``forward_batch``.
    """
    batch, n = nodes.shape[0], nodes.shape[1]
    lengths = np.asarray(lengths, dtype=np.int64)
    visited = np.arange(n)[None, :] >= lengths[:, None]   # padding pre-visited
    state = _initial_numpy_state(decoder.recurrent, batch)
    step_input: np.ndarray = decoder.start_token.data
    previous: Optional[np.ndarray] = None
    routes = np.zeros((batch, n), dtype=np.int64)
    projected_keys = nodes @ decoder.attention.key_proj.weight.data
    query_weight = decoder.attention.query_proj.weight.data
    v = decoder.attention.v.data
    rows = np.arange(batch)

    for step in range(n):
        h, state = recurrent_step(decoder.recurrent, step_input, state)
        query = np.concatenate([h, courier], axis=-1)
        projected_query = (query @ query_weight).reshape(batch, 1, -1)
        scores = np.tanh(projected_keys + projected_query) @ v
        feasible = decoder._candidate_mask_batch(visited, previous, adjacency)
        done = ~feasible.any(axis=1)
        if done.any():
            feasible = feasible.copy()
            feasible[done, 0] = True
        penalised = scores + np.where(feasible, 0.0, -1e30)
        shifted = penalised - penalised.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(
            np.exp(shifted).sum(axis=1, keepdims=True))
        chosen = np.argmax(log_probs, axis=1)
        routes[:, step] = chosen
        visited[rows, chosen] = True
        previous = chosen
        active = (step + 1 < lengths).astype(np.float64)[:, None]
        step_input = nodes[rows, chosen] * active

    return routes


def sort_rnn_forward(sort, nodes: np.ndarray, routes: np.ndarray,
                     lengths: np.ndarray) -> np.ndarray:
    """Batched SortLSTM forward (raw numpy, bit-identical to Tensor path).

    Returns ``(B, n)`` arrival times in node order; padding entries are
    exactly zero.
    """
    batch, n = nodes.shape[0], nodes.shape[1]
    routes = np.asarray(routes, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    step_valid = np.arange(n)[None, :] < lengths[:, None]
    state = _initial_numpy_state(sort.recurrent, batch)
    head_weight = sort.head.weight.data
    head_bias = sort.head.bias.data
    rows = np.arange(batch)
    by_step = np.zeros((batch, n))
    for position in range(1, n + 1):
        valid = step_valid[:, position - 1]
        safe = np.where(valid, routes[:, position - 1], 0)
        step_nodes = (nodes[rows, safe]
                      * valid.astype(np.float64)[:, None])
        encoding = np.tile(
            sinusoidal_position_encoding(position, sort.position_dim),
            (batch, 1))
        step_input = np.concatenate([step_nodes, encoding], axis=-1)
        h, state = recurrent_step(sort.recurrent, step_input, state)
        by_step[:, position - 1] = (h @ head_weight
                                    + head_bias).reshape(batch)
    inverse = np.zeros((batch, n), dtype=np.int64)
    row_index, step_index = np.nonzero(step_valid)
    inverse[row_index, routes[row_index, step_index]] = step_index
    gathered = by_step[rows[:, None], np.where(step_valid, inverse, 0)]
    return gathered * step_valid.astype(np.float64)
