"""Kernel backend selection.

Two interchangeable backends implement the no-grad inference kernels
(GAT-e encoder stack, LSTM/GRU unrolls, pointer decode, sort-RNN):

* ``reference`` — the verified paths: the GAT-e stack delegates to the
  Tensor ``forward_batch`` code and the decoders run the raw-numpy
  replicas proven bit-identical to the Tensor path.
* ``fused`` — single-pass kernels with preallocated scratch buffers
  (see :mod:`repro.kernels.workspace`); the differential conformance
  suite (``tests/test_kernel_conformance.py``) certifies them against
  the reference backend.

Selection order: an explicit :func:`use` call wins, then the
``REPRO_KERNELS`` environment variable, then the default (``fused``).
If the fused backend fails to import and nothing was requested
explicitly, dispatch falls back to ``reference`` — *loudly*, via a
``RuntimeWarning``, with the reason retrievable from
:func:`fallback_reason`.  A backend that was explicitly requested
(env var or :func:`use`) never falls back: the error propagates.
:func:`require` lets CI assert that a backend really is importable.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Dict, Optional

BACKENDS = ("reference", "fused")
DEFAULT_BACKEND = "fused"
ENV_VAR = "REPRO_KERNELS"


class KernelUnavailableError(RuntimeError):
    """A kernel backend failed to import (or was recorded as broken)."""


_modules: Dict[str, object] = {}
_import_errors: Dict[str, str] = {}
_active: Optional[str] = None
_fallback_reason: Optional[str] = None


def _load(name: str):
    """Import (once) and return the backend module; loud on failure."""
    if name not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; choose from {BACKENDS}")
    if name in _modules:
        return _modules[name]
    if name in _import_errors:
        raise KernelUnavailableError(
            f"kernel backend {name!r} unavailable: {_import_errors[name]}")
    try:
        if name == "reference":
            from . import reference as module
        else:
            from . import fused as module
    except Exception as exc:  # record, so later calls fail the same way
        _import_errors[name] = repr(exc)
        raise KernelUnavailableError(
            f"kernel backend {name!r} failed to import: {exc!r}") from exc
    _modules[name] = module
    return module


def _resolve_initial() -> str:
    """First-use backend choice: env var, else default with explicit fallback."""
    global _fallback_reason
    requested = os.environ.get(ENV_VAR, "").strip().lower()
    if requested:
        _load(requested)  # explicit request: any failure propagates
        return requested
    try:
        _load(DEFAULT_BACKEND)
        return DEFAULT_BACKEND
    except KernelUnavailableError as exc:
        _fallback_reason = str(exc)
        warnings.warn(
            f"falling back to the 'reference' kernel backend: {exc}",
            RuntimeWarning, stacklevel=3)
        _load("reference")
        return "reference"


def active_name() -> str:
    """Name of the currently selected backend (resolving it on first use)."""
    global _active
    if _active is None:
        _active = _resolve_initial()
    return _active


def active():
    """The currently selected backend module."""
    return _load(active_name())


def use(name: str) -> str:
    """Select a backend by name; returns the previous name.

    Raises ``ValueError`` for unknown names and
    :class:`KernelUnavailableError` if the backend cannot import —
    the previous selection stays in effect in both cases.
    """
    global _active
    previous = active_name()
    _load(name)
    _active = name
    return previous


@contextmanager
def backend_scope(name: str):
    """Context manager that selects ``name`` and restores the previous backend."""
    previous = use(name)
    try:
        yield
    finally:
        use(previous)


def require(name: str) -> None:
    """Assert that backend ``name`` is importable; raise otherwise.

    CI calls ``require("fused")`` so an import regression fails the job
    instead of silently degrading every benchmark to the reference path.
    """
    _load(name)


def available_backends() -> Dict[str, Optional[str]]:
    """Map backend name -> ``None`` if importable, else the error string."""
    status: Dict[str, Optional[str]] = {}
    for name in BACKENDS:
        try:
            _load(name)
            status[name] = None
        except KernelUnavailableError as exc:
            status[name] = str(exc)
    return status


def fallback_reason() -> Optional[str]:
    """Why dispatch fell back to ``reference`` (``None`` if it did not)."""
    return _fallback_reason


def _reset(clear_import_errors: bool = True) -> None:
    """Test hook: forget the selection (and optionally recorded errors)."""
    global _active, _fallback_reason
    _active = None
    _fallback_reason = None
    if clear_import_errors:
        _import_errors.clear()
