"""Fused no-grad inference kernels with backend dispatch.

``repro.core`` routes its hot inference paths (GAT-e stack, LSTM/GRU
unrolls, pointer decode, sort-RNN) through this package whenever
gradients are disabled; training and autodiff keep the existing
verified Tensor path.  Two backends are provided:

* ``reference`` — the previously inlined, test-certified paths;
* ``fused`` — single-pass kernels over reusable scratch buffers
  (:mod:`repro.kernels.workspace`), bit-identical by construction and
  certified by ``tests/test_kernel_conformance.py``.

Select with :func:`use` / :func:`backend_scope`, the ``REPRO_KERNELS``
environment variable, or the CLI ``--kernels`` flag.
"""

from .dispatch import (
    BACKENDS,
    DEFAULT_BACKEND,
    ENV_VAR,
    KernelUnavailableError,
    active,
    active_name,
    available_backends,
    backend_scope,
    fallback_reason,
    require,
    use,
)
from .workspace import Workspace, get_workspace, workspace_scope

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "KernelUnavailableError",
    "Workspace",
    "active",
    "active_name",
    "available_backends",
    "backend_scope",
    "fallback_reason",
    "get_workspace",
    "require",
    "use",
    "workspace_scope",
]
