"""Scratch-buffer workspace for the fused inference kernels.

The fused kernels run many small numpy operations per decode step; at
batch sizes 1-8 the allocator dominates the op cost.  A
:class:`Workspace` hands out preallocated ``np.empty`` buffers keyed by
``(tag, shape, dtype)`` so every step of a decode loop — and every
layer of the GAT-e stack — reuses the same scratch memory.

Buffers are *not* zeroed on reuse (callers overwrite them fully, or
request :meth:`Workspace.zeros` explicitly).  Workspaces are
thread-local: two threads running fused inference concurrently never
share a buffer, so no locking is needed.

Two lifecycle rules keep the implicit pool safe for multi-process
serving (:mod:`repro.serving_shard`):

* **fork safety** — the lazily created thread-local workspace records
  the pid that created it; a forked child that inherited the parent's
  pool discards it on first use and starts fresh, so a parent and its
  shard workers never reuse (copy-on-write aliased) scratch buffers.
* **explicit ownership** — :func:`workspace_scope` pins an explicit
  :class:`Workspace` for a dynamic extent.  Shard runtimes that share
  one thread (the deterministic inline mode of the load scenarios)
  each enter their own scope around request processing, so the fused
  kernels draw from *that shard's* pool instead of the ambient
  thread-local one.
"""

from __future__ import annotations

import contextlib
import os
import threading
from collections import OrderedDict
from typing import Iterator, Tuple

import numpy as np


class Workspace:
    """Bounded pool of reusable scratch arrays.

    The pool is an LRU over ``(tag, shape, dtype)`` keys capped at
    ``max_entries`` so pathological shape churn (e.g. sweeping many
    distinct batch sizes) cannot grow memory without bound.
    """

    def __init__(self, max_entries: int = 64):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._buffers: "OrderedDict[Tuple, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._buffers)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the pool."""
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def buf(self, tag: str, shape, dtype=np.float64) -> np.ndarray:
        """Return a reusable buffer of ``shape``; contents are undefined."""
        key = (tag, tuple(int(s) for s in shape), np.dtype(dtype).str)
        buffer = self._buffers.get(key)
        if buffer is None:
            self.misses += 1
            buffer = np.empty(key[1], dtype=dtype)
            self._buffers[key] = buffer
            while len(self._buffers) > self.max_entries:
                self._buffers.popitem(last=False)
        else:
            self.hits += 1
            self._buffers.move_to_end(key)
        return buffer

    def zeros(self, tag: str, shape, dtype=np.float64) -> np.ndarray:
        """Like :meth:`buf` but zero-filled."""
        buffer = self.buf(tag, shape, dtype=dtype)
        buffer[...] = 0
        return buffer

    def clear(self) -> None:
        self._buffers.clear()
        self.hits = 0
        self.misses = 0


_local = threading.local()


def get_workspace() -> Workspace:
    """The active workspace for the calling thread.

    Resolution order: the innermost :func:`workspace_scope` override,
    else the thread-local default (created on first use, re-created
    after a fork so child processes never inherit the parent's pool).
    """
    pid = os.getpid()
    stack = getattr(_local, "scope_stack", None)
    if stack and getattr(_local, "scope_pid", None) == pid:
        return stack[-1]
    workspace = getattr(_local, "workspace", None)
    if workspace is None or getattr(_local, "owner_pid", None) != pid:
        workspace = Workspace()
        _local.workspace = workspace
        _local.owner_pid = pid
    return workspace


@contextlib.contextmanager
def workspace_scope(workspace: Workspace) -> Iterator[Workspace]:
    """Pin ``workspace`` as the active pool for the enclosed extent.

    Scopes nest (innermost wins) and are per-thread; a scope opened
    before a fork is ignored in the child.
    """
    pid = os.getpid()
    stack = getattr(_local, "scope_stack", None)
    if stack is None or getattr(_local, "scope_pid", None) != pid:
        stack = []
        _local.scope_stack = stack
        _local.scope_pid = pid
    stack.append(workspace)
    try:
        yield workspace
    finally:
        stack.pop()
