"""Fused kernel backend: single-pass no-grad kernels with scratch reuse.

Each kernel performs the *same floating-point operations in the same
association order* as the reference backend — per-head matmuls stay
separate, gate splits keep the reference order, the masked softmax runs
the exact reference sequence — so outputs are bit-identical; only
temporaries, tape bookkeeping and Python overhead are removed:

* :func:`gat_encoder_forward` — one pass per GAT-e layer: edge logits,
  masked softmax, neighbour aggregation and edge update run in-place on
  workspace buffers that are reused across heads and layers.
* :func:`level_embed` — the encoder's feature-embedding glue (Eq. 18):
  continuous projection, embedding gathers, global tiling and the
  node/edge input projections collapse into slice writes plus two GEMMs.
* :class:`_FusedRecurrent` — LSTM/GRU stepper with one gate matmul per
  step into preallocated gate/hidden/cell buffers (ping-pong swapped,
  never reallocated).
* :func:`pointer_decode` — incremental decode: the feasibility penalty
  is maintained in place (`-1e30` written at each chosen column)
  instead of being rebuilt from the visited mask every step, and the
  log-softmax is skipped entirely — a per-row monotone shift cannot
  change the argmax.
* :func:`sort_rnn_forward` / :func:`lstm_unroll` — fused gathers and
  steppers for the time decoder and the BiLSTM ablation encoder.

The differential conformance suite (``tests/test_kernel_conformance.py``)
certifies all of this against the reference backend.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.positional import sinusoidal_position_encoding
from .workspace import Workspace, get_workspace

# Position-encoding rows are pure functions of (position, dim); caching
# the stacked table per (n, dim) hoists them out of the sort-RNN step
# loop entirely (the values are bitwise-identical to fresh computation).
_POSITION_TABLES: dict = {}


def _position_table(n: int, dim: int) -> np.ndarray:
    table = _POSITION_TABLES.get(dim)
    if table is None or table.shape[0] < n:
        table = np.stack([sinusoidal_position_encoding(p, dim)
                          for p in range(1, n + 1)])
        _POSITION_TABLES[dim] = table
    return table


def _sigmoid_(values: np.ndarray) -> np.ndarray:
    """In-place ``1 / (1 + exp(-x))`` — same values as the Tensor sigmoid."""
    np.negative(values, out=values)
    np.exp(values, out=values)
    values += 1.0
    np.divide(1.0, values, out=values)
    return values


def _relu_into(values: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``values * (values > 0)`` — the exact Tensor ``relu`` expression."""
    return np.multiply(values, values > 0, out=out)


class _BareCell:
    """Adapts a raw LSTM/GRU cell to the ``recurrent`` duck type."""

    __slots__ = ("cell", "cell_type")

    def __init__(self, cell, cell_type: str):
        self.cell = cell
        self.cell_type = cell_type


class _FusedRecurrent:
    """Preallocated-buffer LSTM/GRU stepper.

    Bit-identical to :func:`repro.kernels.reference.recurrent_step`:
    the gate pre-activation keeps the ``(x W_x + h W_h) + b``
    association (LSTM) / ``(x W_x + b) + h W_h`` slice sums (GRU), and
    state updates keep ``(f*c) + (i*g)`` / ``((1-z)*n) + (z*h)``.
    Hidden/cell buffers are ping-pong swapped between steps.
    """

    def __init__(self, recurrent, batch: int, workspace: Workspace, tag: str):
        cell = recurrent.cell
        self.kind = recurrent.cell_type
        self.hidden_dim = cell.hidden_dim
        self.weight_x = cell.weight_x.data
        self.weight_h = cell.weight_h.data
        self.bias = cell.bias.data
        self.ws = workspace
        self.tag = tag
        d = cell.hidden_dim
        gate_width = self.weight_x.shape[1]  # 4d (lstm) / 3d (gru)
        ws = workspace
        self.gates = ws.buf(tag + ".gates", (batch, gate_width))
        self.h_gates = ws.buf(tag + ".hgates", (batch, gate_width))
        self.h = ws.zeros(tag + ".h", (batch, d))
        self.h_next = ws.buf(tag + ".hnext", (batch, d))
        self.scratch = ws.buf(tag + ".scratch", (batch, d))
        if self.kind == "lstm":
            self.c = ws.zeros(tag + ".c", (batch, d))
            self.c_next = ws.buf(tag + ".cnext", (batch, d))
            self.g_scratch = ws.buf(tag + ".gscratch", (batch, d))
        else:
            self.rz = ws.buf(tag + ".rz", (batch, 2 * d))
            self.candidate = ws.buf(tag + ".cand", (batch, d))

    def _input_gates(self, x: np.ndarray) -> np.ndarray:
        gates = self.gates
        if x.ndim == 2:
            np.matmul(x, self.weight_x, out=gates)
        else:
            # 1-D input (the start token): the reference computes a
            # vector x @ W_x and lets the h-term broadcast; replicating
            # that (vector matmul, then broadcast add) keeps bit parity.
            gates[...] = x @ self.weight_x
        return gates

    def precompute_inputs(self, sequence: np.ndarray) -> np.ndarray:
        """Project every step's input through ``W_x`` in one GEMM.

        ``sequence`` is ``(B, steps, in)``; returns ``(steps, B, gates)``
        whose slice ``[s]`` is bitwise-identical to the per-step 2-D
        ``x_s @ W_x`` (row blocks of a GEMM are computed independently).
        Only valid when the whole input sequence is known up front —
        i.e. not for pointer decoding, where step inputs depend on the
        previous choice.
        """
        steps, batch = sequence.shape[1], sequence.shape[0]
        buf = self.ws.buf(self.tag + ".xgates",
                          (steps, batch, self.weight_x.shape[1]))
        np.matmul(sequence.transpose(1, 0, 2), self.weight_x, out=buf)
        return buf

    def step(self, x: Optional[np.ndarray],
             pre: Optional[np.ndarray] = None) -> np.ndarray:
        if self.kind == "lstm":
            return self._step_lstm(x, pre)
        return self._step_gru(x, pre)

    def _step_lstm(self, x: Optional[np.ndarray],
                   pre: Optional[np.ndarray] = None) -> np.ndarray:
        d = self.hidden_dim
        np.matmul(self.h, self.weight_h, out=self.h_gates)
        if pre is None:
            gates = self._input_gates(x)
            gates += self.h_gates
        else:
            gates = self.gates
            np.add(pre, self.h_gates, out=gates)
        gates += self.bias
        # tanh of the g-gate pre-activation is saved first, then one
        # contiguous sigmoid sweeps the whole gate buffer (the swept
        # g-slice is dead).  Elementwise results are identical to
        # per-slice application; whole-buffer contiguous ufuncs are
        # 2-3x faster than four strided slice passes.
        np.tanh(gates[:, 2 * d:3 * d], out=self.g_scratch)
        _sigmoid_(gates)
        np.multiply(gates[:, 1 * d:2 * d], self.c, out=self.c_next)
        np.multiply(gates[:, 0 * d:1 * d], self.g_scratch, out=self.scratch)
        self.c_next += self.scratch
        np.tanh(self.c_next, out=self.scratch)
        np.multiply(gates[:, 3 * d:4 * d], self.scratch, out=self.h_next)
        self.h, self.h_next = self.h_next, self.h
        self.c, self.c_next = self.c_next, self.c
        return self.h

    def _step_gru(self, x: Optional[np.ndarray],
                  pre: Optional[np.ndarray] = None) -> np.ndarray:
        d = self.hidden_dim
        if pre is None:
            gates_x = self._input_gates(x)
            gates_x += self.bias
        else:
            gates_x = self.gates
            np.add(pre, self.bias, out=gates_x)
        np.matmul(self.h, self.weight_h, out=self.h_gates)
        gates_h = self.h_gates
        # Reset and update gates are adjacent slices: one add + one
        # contiguous sigmoid over both.
        np.add(gates_x[:, 0:2 * d], gates_h[:, 0:2 * d], out=self.rz)
        _sigmoid_(self.rz)
        reset = self.rz[:, 0:d]
        update = self.rz[:, d:2 * d]
        np.multiply(reset, gates_h[:, 2 * d:3 * d], out=self.candidate)
        np.add(gates_x[:, 2 * d:3 * d], self.candidate, out=self.candidate)
        np.tanh(self.candidate, out=self.candidate)
        np.subtract(1.0, update, out=self.scratch)
        np.multiply(self.scratch, self.candidate, out=self.h_next)
        np.multiply(update, self.h, out=self.scratch)
        self.h_next += self.scratch
        self.h, self.h_next = self.h_next, self.h
        return self.h


# ----------------------------------------------------------------------
# GAT-e encoder stack
# ----------------------------------------------------------------------
def _stacked(ws: Workspace, tag: str, heads, attr: str) -> np.ndarray:
    """Copy one weight per head into a reusable ``(H, ...)`` buffer.

    Cheaper than ``np.stack`` (no list/concatenate machinery) and safe
    against in-place optimizer updates, unlike caching the stack.
    """
    first = getattr(heads[0], attr).data
    buf = ws.buf(tag, (len(heads),) + first.shape)
    buf[0] = first
    for index in range(1, len(heads)):
        buf[index] = getattr(heads[index], attr).data
    return buf


def _gat_layer(layer, nodes: np.ndarray, edges: np.ndarray,
               adjacency: np.ndarray, mask_f: np.ndarray,
               empty_f: np.ndarray, empty_b: np.ndarray,
               need_edges: bool, ws: Workspace):
    """One multi-head GAT-e layer, all heads stacked on a leading axis.

    Head weights are stacked to ``(H, ...)`` and every matmul runs as a
    batched GEMM whose per-slice 2-D shape equals the per-head call, so
    each head's result is bitwise-identical to computing it alone; the
    whole masked-softmax chain then runs once over ``(H, B, n, n)``
    instead of ``H`` times over ``(B, n, n)``.  The attention-vector
    scores stay per-head 1-D matmuls (``(B, n, d) @ (d,)``) because the
    dgemv and dgemm paths are not bitwise-interchangeable.
    """
    heads = layer.heads
    num_heads = len(heads)
    batch, n, dim = nodes.shape
    head_dim = heads[0].w2.data.shape[1]
    out_dim = head_dim if layer.final else head_dim * num_heads
    w1 = _stacked(ws, "gat.w1s", heads, "w1")          # (H, dim, dim)
    w2 = _stacked(ws, "gat.w2s", heads, "w2")          # (H, dim, hd)

    transformed = ws.buf("gat.transformed", (num_heads, batch, n, dim))
    np.matmul(nodes, w1[:, None], out=transformed)
    source = ws.buf("gat.source", (num_heads, batch, n))
    target = ws.buf("gat.target", (num_heads, batch, n))
    logits = ws.buf("gat.alpha", (num_heads, batch, n, n))
    scratch = ws.buf("gat.scratch", (num_heads, batch, n, n))
    row_max = ws.buf("gat.rowmax", (num_heads, batch, n, 1))
    for index, head in enumerate(heads):
        np.matmul(transformed[index], head.a_src.data, out=source[index])
        np.matmul(transformed[index], head.a_dst.data, out=target[index])
        np.matmul(edges, head.a_edge.data, out=scratch[index])  # edge score
    np.add(source[:, :, :, None], target[:, :, None, :], out=logits)
    logits += scratch
    # Leaky ReLU as max(x, slope*x): picks the same product the
    # reference's where()-multiply computes, with no temporaries.
    np.multiply(logits, heads[0].leaky_slope, out=scratch)
    np.maximum(logits, scratch, out=logits)
    # Masked softmax, reference op order (see autodiff.masked_softmax).
    logits.max(axis=3, keepdims=True, where=adjacency[None, :, :, :],
               initial=-np.inf, out=row_max)
    np.copyto(row_max, 0.0, where=empty_b[None])       # fully-masked rows
    logits -= row_max
    # Zero masked positions *before* exp (reference clamps them with a
    # where()); multiplying by the mask maps them to +-0.0, and
    # exp(+-0.0) == 1.0 exactly, so the exp'd values match bitwise.
    logits *= mask_f
    np.exp(logits, out=logits)
    logits *= mask_f
    denominator = logits.sum(axis=3, keepdims=True, out=row_max)
    denominator += empty_f
    logits /= denominator

    messages = ws.buf("gat.messages", (num_heads, batch, n, head_dim))
    np.matmul(nodes, w2[:, None], out=messages)
    node_tmp = ws.buf("gat.node_tmp", (num_heads, batch, n, head_dim))
    np.matmul(logits, messages, out=node_tmp)
    node_out = ws.buf("gat.node_out", (batch, n, out_dim))
    if layer.final:
        # add.reduce over a length-H axis accumulates sequentially —
        # the same h0+h1+... order as the reference head loop.
        np.add.reduce(node_tmp, axis=0, out=node_out)
    else:
        for index in range(num_heads):
            lo = index * head_dim
            _relu_into(node_tmp[index], node_out[..., lo:lo + head_dim])

    edge_out = None
    if need_edges:
        w3 = _stacked(ws, "gat.w3s", heads, "w3")
        w4 = _stacked(ws, "gat.w4s", heads, "w4")
        w5 = _stacked(ws, "gat.w5s", heads, "w5")
        edge_tmp = ws.buf("gat.edge_tmp", (num_heads, batch, n, n, head_dim))
        np.matmul(edges, w3[:, None, None], out=edge_tmp)
        n4 = ws.buf("gat.n4", (num_heads, batch, n, head_dim))
        n5 = ws.buf("gat.n5", (num_heads, batch, n, head_dim))
        np.matmul(nodes, w4[:, None], out=n4)
        np.matmul(nodes, w5[:, None], out=n5)
        edge_tmp += n4[:, :, :, None, :]
        edge_tmp += n5[:, :, None, :, :]
        edge_out = ws.buf("gat.edge_out", (batch, n, n, out_dim))
        if layer.final:
            np.add.reduce(edge_tmp, axis=0, out=edge_out)
        else:
            for index in range(num_heads):
                lo = index * head_dim
                _relu_into(edge_tmp[index], edge_out[..., lo:lo + head_dim])
    if layer.final:
        scale = 1.0 / float(num_heads)
        node_out *= scale
        _relu_into(node_out, node_out)
        if need_edges:
            edge_out *= scale
            _relu_into(edge_out, edge_out)
    return node_out, edge_out


def gat_encoder_forward(gat, nodes: np.ndarray, edges: np.ndarray,
                        adjacency: np.ndarray, need_edges: bool = True):
    """Residual GAT-e stack fused over workspace buffers.

    Masks, their float casts and the empty-row guard are computed once
    for the whole stack; node/edge accumulators are updated in place.
    """
    ws = get_workspace()
    adjacency = np.asarray(adjacency, dtype=bool)
    mask_f = adjacency.astype(np.float64)
    empty_b = (~adjacency).all(axis=2, keepdims=True)
    empty_f = empty_b.astype(np.float64)
    node_acc = ws.buf("gat.node_acc", nodes.shape)
    np.copyto(node_acc, nodes)
    edge_acc = ws.buf("gat.edge_acc", edges.shape)
    np.copyto(edge_acc, edges)
    last = len(gat.layers) - 1
    # One errstate for the whole stack: fully-masked rows produce
    # -inf - -inf inside the attention shift (reference behaviour).
    with np.errstate(invalid="ignore"):
        for index, layer in enumerate(gat.layers):
            layer_need_edges = need_edges or index < last
            node_update, edge_update = _gat_layer(
                layer, node_acc, edge_acc, adjacency, mask_f, empty_f,
                empty_b, layer_need_edges, ws)
            node_acc += node_update
            if layer_need_edges:
                edge_acc += edge_update
    # Copies detach the results from the reusable workspace buffers.
    return node_acc.copy(), (edge_acc.copy() if need_edges else None)


# ----------------------------------------------------------------------
# Recurrent kernels
# ----------------------------------------------------------------------
def lstm_unroll(cell, sequence: np.ndarray) -> np.ndarray:
    """Unroll an LSTM cell over ``(B, n, d)`` with preallocated buffers.

    The input-side gate projections for every step are batched into one
    GEMM up front; the step loop only runs the recurrent half.
    """
    batch, steps, _ = sequence.shape
    recurrent = _FusedRecurrent(_BareCell(cell, "lstm"), batch,
                                get_workspace(), "unroll")
    pre = recurrent.precompute_inputs(sequence)
    outputs = np.empty((batch, steps, cell.hidden_dim))
    for step in range(steps):
        outputs[:, step, :] = recurrent.step(None, pre=pre[step])
    return outputs


def level_embed(encoder, continuous: np.ndarray, discrete: np.ndarray,
                edge_features: np.ndarray, global_data: np.ndarray):
    """Fused node/edge feature embedding for one padded graph level.

    Replaces the Tensor glue of ``LevelEncoder.forward_batch`` — the
    continuous projection, discrete embedding gathers, global-context
    tiling and the node/edge input projections — with slice writes into
    one workspace buffer followed by two GEMMs.  Concatenation becomes
    slice assignment (a memcpy), the tile-by-ones becomes a broadcast
    copy (``x * 1.0`` is an IEEE identity), and each projection keeps
    the same matmul + bias add, so outputs are bit-identical to the
    Tensor path.  Returned arrays are workspace views: valid until the
    next same-shape call on this thread (the GAT stack consumes them
    immediately and returns fresh copies).
    """
    ws = get_workspace()
    batch, n = continuous.shape[:2]
    features = encoder.node_features
    cont_dim = features.continuous.out_features
    stacked = ws.buf("embed.stack",
                     (batch, n, features.output_dim + global_data.shape[-1]))
    np.matmul(continuous, features.continuous.weight.data,
              out=stacked[:, :, :cont_dim])
    stacked[:, :, :cont_dim] += features.continuous.bias.data
    indices = np.asarray(discrete, dtype=np.int64)
    offset = cont_dim
    for column, table in enumerate(features.embeddings):
        idx = indices[..., column]
        if np.any(idx < 0) or np.any(idx >= table.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {table.num_embeddings}): "
                f"min={idx.min()}, max={idx.max()}"
            )
        stacked[:, :, offset:offset + table.embedding_dim] = \
            table.weight.data[idx]
        offset += table.embedding_dim
    stacked[:, :, features.output_dim:] = global_data[:, None, :]
    nodes = ws.buf("embed.nodes", (batch, n, encoder.node_proj.out_features))
    np.matmul(stacked, encoder.node_proj.weight.data, out=nodes)
    nodes += encoder.node_proj.bias.data
    edges = ws.buf("embed.edges",
                   (batch, n, n, encoder.edge_proj.out_features))
    np.matmul(edge_features, encoder.edge_proj.weight.data, out=edges)
    edges += encoder.edge_proj.bias.data
    return nodes, edges


def pointer_decode(decoder, nodes: np.ndarray, courier: np.ndarray,
                   lengths: np.ndarray,
                   adjacency: Optional[np.ndarray] = None) -> np.ndarray:
    """Incremental greedy pointer decode.

    Instead of rebuilding the feasibility mask and running a full
    log-softmax per step, the additive ``-1e30`` penalty row is updated
    in place as nodes are chosen, and the argmax runs directly on the
    penalised scores (the log-softmax subtracts a per-row constant, a
    monotone shift that cannot change the argmax).  With
    ``restrict_to_neighbors`` the feasible set depends on the previous
    choice, so the mask is recomputed per step exactly as the reference
    does.
    """
    ws = get_workspace()
    batch, n, node_dim = nodes.shape
    lengths = np.asarray(lengths, dtype=np.int64)
    visited = np.arange(n)[None, :] >= lengths[:, None]   # padding pre-visited
    attention = decoder.attention
    query_weight = attention.query_proj.weight.data
    v = attention.v.data
    hidden = query_weight.shape[1]
    projected_keys = np.matmul(nodes, attention.key_proj.weight.data,
                               out=ws.buf("ptr.keys", (batch, n, hidden)))
    recurrent = _FusedRecurrent(decoder.recurrent, batch, ws, "ptr")
    state_dim = recurrent.hidden_dim
    query = ws.buf("ptr.query", (batch, state_dim + courier.shape[-1]))
    query[:, state_dim:] = courier
    projected_query = ws.buf("ptr.pquery", (batch, hidden))
    pre_tanh = ws.buf("ptr.pretanh", (batch, n, hidden))
    step_input_buf = ws.buf("ptr.input", (batch, node_dim))
    scores = ws.buf("ptr.scores", (batch, n))
    routes = np.zeros((batch, n), dtype=np.int64)
    rows = np.arange(batch)
    incremental = not (decoder.restrict_to_neighbors and adjacency is not None)
    steps = np.arange(1, n + 1)
    # Per-step masks hoisted out of the loop: the float "still active"
    # column and, for the incremental path, the value the chosen column
    # gets.  Rows already finished *before* a step choose the dummy
    # candidate 0, which must stay open (value 0.0); everyone else's
    # choice is closed with -1e30.  A row finishing *at* a step still
    # closes its last real node, so its dummy is re-opened explicitly.
    active_f = (steps[:, None] < lengths[None, :]).astype(np.float64)
    if incremental:
        penalty = ws.buf("ptr.penalty", (batch, n))
        np.copyto(penalty, np.where(visited, -1e30, 0.0))
        exhausted = lengths <= 0
        if exhausted.any():   # dummy candidate for empty rows, like reference
            penalty[exhausted, 0] = 0.0
        close_value = np.where(steps[:, None] > lengths[None, :], 0.0, -1e30)
        # Rows whose last real node is chosen at step s (lengths == s),
        # grouped per step with one sort instead of n nonzero scans.
        order = np.argsort(lengths, kind="stable")
        sorted_lengths = lengths[order]
        lo = np.searchsorted(sorted_lengths, steps, side="left")
        hi = np.searchsorted(sorted_lengths, steps, side="right")
        reopen_rows = [order[lo[i]:hi[i]] for i in range(n)]
    step_input: np.ndarray = decoder.start_token.data
    previous: Optional[np.ndarray] = None

    for step in range(n):
        h = recurrent.step(step_input)
        query[:, :state_dim] = h
        np.matmul(query, query_weight, out=projected_query)
        np.add(projected_keys, projected_query[:, None, :], out=pre_tanh)
        np.tanh(pre_tanh, out=pre_tanh)
        np.matmul(pre_tanh, v, out=scores)         # (B, n)
        if incremental:
            scores += penalty
        else:
            feasible = decoder._candidate_mask_batch(visited, previous,
                                                     adjacency)
            done = ~feasible.any(axis=1)
            if done.any():
                feasible = feasible.copy()
                feasible[done, 0] = True
            scores += np.where(feasible, 0.0, -1e30)
        chosen = np.argmax(scores, axis=1)
        routes[:, step] = chosen
        if incremental:
            penalty[rows, chosen] = close_value[step]
            if reopen_rows[step].size:   # rows whose last real node this was
                penalty[reopen_rows[step], 0] = 0.0
        else:
            visited[rows, chosen] = True
            previous = chosen
        np.multiply(nodes[rows, chosen], active_f[step][:, None],
                    out=step_input_buf)
        step_input = step_input_buf

    return routes


def sort_rnn_forward(sort, nodes: np.ndarray, routes: np.ndarray,
                     lengths: np.ndarray) -> np.ndarray:
    """Batched SortLSTM forward with a fused gather+concat step input."""
    ws = get_workspace()
    batch, n, node_dim = nodes.shape
    routes = np.asarray(routes, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    step_valid = np.arange(n)[None, :] < lengths[:, None]
    step_valid_f = step_valid.astype(np.float64)
    safe_all = np.where(step_valid, routes, 0)   # all gather indices at once
    recurrent = _FusedRecurrent(sort.recurrent, batch, ws, "sort")
    head_weight = sort.head.weight.data
    head_bias = sort.head.bias.data
    head_out = ws.buf("sort.head", (batch, 1))
    rows = np.arange(batch)
    by_step = np.zeros((batch, n))
    # The whole step-input sequence is known up front (gathered nodes +
    # position encodings), so both the gather and the input-side gate
    # projections are batched out of the loop.
    sequence = ws.buf("sort.seq", (batch, n, node_dim + sort.position_dim))
    np.multiply(nodes[rows[:, None], safe_all], step_valid_f[:, :, None],
                out=sequence[:, :, :node_dim])
    sequence[:, :, node_dim:] = _position_table(n, sort.position_dim)[None, :n]
    pre = recurrent.precompute_inputs(sequence)
    for position in range(1, n + 1):
        h = recurrent.step(None, pre=pre[position - 1])
        np.matmul(h, head_weight, out=head_out)
        head_out += head_bias
        by_step[:, position - 1] = head_out[:, 0]
    inverse = np.zeros((batch, n), dtype=np.int64)
    row_index, step_index = np.nonzero(step_valid)
    inverse[row_index, routes[row_index, step_index]] = step_index
    gathered = by_step[rows[:, None], np.where(step_valid, inverse, 0)]
    return gathered * step_valid_f
