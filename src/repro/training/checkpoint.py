"""Checkpointing: persist model weights as ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..nn import Module


def save_checkpoint(model: Module, path: Union[str, Path]) -> None:
    """Write the model's parameters to ``path`` (``.npz``)."""
    path = Path(path)
    state = model.state_dict()
    # Parameter names contain dots; np.savez handles arbitrary keys.
    np.savez(path, **state)


def load_checkpoint(model: Module, path: Union[str, Path]) -> None:
    """Load parameters saved by :func:`save_checkpoint` into ``model``."""
    path = Path(path)
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
