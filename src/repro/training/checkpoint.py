"""Checkpointing: persist model weights as ``.npz`` archives.

Two durability guarantees matter for the deployment layer built on top
(:mod:`repro.deploy`):

* :func:`save_checkpoint` is **atomic** — the archive is written to a
  temporary file in the destination directory and renamed into place,
  so a crash mid-write can never leave a truncated file at ``path``.
* :func:`load_checkpoint` **validates before it applies** — parameter
  names and shapes are checked against the model first, so a mismatch
  raises :class:`CheckpointError` with the model left untouched rather
  than half-applied.
"""

from __future__ import annotations

import os
import tempfile
import zipfile
from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..nn import Module


class CheckpointError(ValueError):
    """A checkpoint file is unreadable or disagrees with the model."""


def _normalized(path: Union[str, Path]) -> Path:
    """Mirror ``np.savez``'s habit of appending ``.npz`` to bare names."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_checkpoint(model: Module, path: Union[str, Path]) -> Path:
    """Atomically write the model's parameters to ``path`` (``.npz``).

    The archive lands under a temporary name in the same directory and
    is renamed over ``path`` only once fully written.  Returns the final
    path (with the ``.npz`` suffix ``np.savez`` would have added).
    """
    path = _normalized(path)
    state = model.state_dict()
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(fd, "wb") as handle:
            # Parameter names contain dots; np.savez handles arbitrary keys.
            np.savez(handle, **state)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def _read_archive(path: Path) -> Dict[str, np.ndarray]:
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint at {path}")
    try:
        with np.load(path) as archive:
            return {name: archive[name] for name in archive.files}
    except (zipfile.BadZipFile, EOFError, OSError, ValueError, KeyError) as exc:
        raise CheckpointError(
            f"checkpoint {path} is corrupt or truncated: {exc}") from exc


def load_checkpoint(model: Module, path: Union[str, Path]) -> None:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    Raises :class:`CheckpointError` if the file is unreadable, if the
    parameter names disagree with the model, or if any shape differs —
    in every case **before** touching any model parameter.
    """
    path = _normalized(path)
    state = _read_archive(path)
    own = dict(model.named_parameters())
    missing = sorted(set(own) - set(state))
    unexpected = sorted(set(state) - set(own))
    if missing or unexpected:
        raise CheckpointError(
            f"checkpoint {path} does not match the model: "
            f"missing={missing}, unexpected={unexpected}")
    bad_shapes = [
        f"{name}: checkpoint {np.asarray(state[name]).shape} "
        f"vs model {parameter.data.shape}"
        for name, parameter in own.items()
        if np.asarray(state[name]).shape != parameter.data.shape
    ]
    if bad_shapes:
        raise CheckpointError(
            f"checkpoint {path} has mismatched shapes: "
            + "; ".join(bad_shapes))
    model.load_state_dict(state)
