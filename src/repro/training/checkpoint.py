"""Checkpointing: persist model weights (and optimiser state) as ``.npz``.

Two durability guarantees matter for the deployment layer built on top
(:mod:`repro.deploy`):

* :func:`save_checkpoint` is **atomic** — the archive is written to a
  temporary file in the destination directory and renamed into place,
  so a crash mid-write can never leave a truncated file at ``path``.
* :func:`load_checkpoint` **validates before it applies** — parameter
  names and shapes are checked against the model first, so a mismatch
  raises :class:`CheckpointError` with the model left untouched rather
  than half-applied.

Passing ``optimizer=`` to both functions additionally round-trips the
optimiser's internal state (Adam moments, momentum velocities, step
counter, learning rate) inside the same archive under a reserved
``__optim__/`` key prefix, so a resumed run continues *identically* to
an uninterrupted one.  Checkpoints written without optimiser state load
fine without it, and checkpoints written *with* it stay loadable by
callers that only care about the weights.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..autodiff.optim import Optimizer
from ..nn import Module

#: Reserved key prefix separating optimiser entries from parameter names
#: (model parameter paths are dotted attribute names and never contain
#: a slash, so the prefix cannot collide).
_OPTIM_PREFIX = "__optim__/"
_OPTIM_META = _OPTIM_PREFIX + "meta"


class CheckpointError(ValueError):
    """A checkpoint file is unreadable or disagrees with the model."""


def _normalized(path: Union[str, Path]) -> Path:
    """Mirror ``np.savez``'s habit of appending ``.npz`` to bare names."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def _optimizer_entries(optimizer: Optimizer) -> Dict[str, np.ndarray]:
    """Flatten ``optimizer.state_dict()`` into npz-storable arrays."""
    state = optimizer.state_dict()
    entries: Dict[str, np.ndarray] = {}
    meta = {
        "kind": state["kind"],
        "scalars": state["scalars"],
        "slots": {name: len(buffers)
                  for name, buffers in state["slots"].items()},
    }
    entries[_OPTIM_META] = np.array(json.dumps(meta))
    for name, buffers in state["slots"].items():
        for index, buffer in enumerate(buffers):
            entries[f"{_OPTIM_PREFIX}slot/{name}/{index}"] = buffer
    return entries


def save_checkpoint(model: Module, path: Union[str, Path],
                    optimizer: Optional[Optimizer] = None) -> Path:
    """Atomically write the model's parameters to ``path`` (``.npz``).

    The archive lands under a temporary name in the same directory and
    is renamed over ``path`` only once fully written.  With
    ``optimizer=``, its :meth:`~repro.autodiff.optim.Optimizer.state_dict`
    is stored in the same archive.  Returns the final path (with the
    ``.npz`` suffix ``np.savez`` would have added).
    """
    path = _normalized(path)
    state = model.state_dict()
    if optimizer is not None:
        state.update(_optimizer_entries(optimizer))
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(fd, "wb") as handle:
            # Parameter names contain dots; np.savez handles arbitrary keys.
            np.savez(handle, **state)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def _read_archive(path: Path) -> Dict[str, np.ndarray]:
    if not path.exists():
        raise FileNotFoundError(f"no checkpoint at {path}")
    try:
        with np.load(path) as archive:
            return {name: archive[name] for name in archive.files}
    except (zipfile.BadZipFile, EOFError, OSError, ValueError, KeyError) as exc:
        raise CheckpointError(
            f"checkpoint {path} is corrupt or truncated: {exc}") from exc


def _restore_optimizer(optimizer: Optimizer,
                       entries: Dict[str, np.ndarray], path: Path) -> None:
    if _OPTIM_META not in entries:
        raise CheckpointError(
            f"checkpoint {path} has no optimizer state; it was saved "
            "without optimizer= and cannot resume one")
    try:
        meta = json.loads(str(entries[_OPTIM_META]))
    except (json.JSONDecodeError, TypeError) as exc:
        raise CheckpointError(
            f"checkpoint {path} has corrupt optimizer metadata: {exc}"
        ) from exc
    slots = {}
    for name, count in meta["slots"].items():
        buffers = []
        for index in range(count):
            key = f"{_OPTIM_PREFIX}slot/{name}/{index}"
            if key not in entries:
                raise CheckpointError(
                    f"checkpoint {path} is missing optimizer buffer {key}")
            buffers.append(entries[key])
        slots[name] = buffers
    try:
        optimizer.load_state_dict({
            "kind": meta["kind"],
            "scalars": meta["scalars"],
            "slots": slots,
        })
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {path} optimizer state does not match: {exc}"
        ) from exc


def load_checkpoint(model: Module, path: Union[str, Path],
                    optimizer: Optional[Optimizer] = None) -> None:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    Raises :class:`CheckpointError` if the file is unreadable, if the
    parameter names disagree with the model, or if any shape differs —
    in every case **before** touching any model parameter.  With
    ``optimizer=``, the archive's optimiser state is restored into it
    as well (raising :class:`CheckpointError` if the archive was saved
    without one or it does not fit the optimiser's parameters).
    """
    path = _normalized(path)
    archive = _read_archive(path)
    state = {name: value for name, value in archive.items()
             if not name.startswith(_OPTIM_PREFIX)}
    own = dict(model.named_parameters())
    missing = sorted(set(own) - set(state))
    unexpected = sorted(set(state) - set(own))
    if missing or unexpected:
        raise CheckpointError(
            f"checkpoint {path} does not match the model: "
            f"missing={missing}, unexpected={unexpected}")
    bad_shapes = [
        f"{name}: checkpoint {np.asarray(state[name]).shape} "
        f"vs model {parameter.data.shape}"
        for name, parameter in own.items()
        if np.asarray(state[name]).shape != parameter.data.shape
    ]
    if bad_shapes:
        raise CheckpointError(
            f"checkpoint {path} has mismatched shapes: "
            + "; ".join(bad_shapes))
    if optimizer is not None:
        # Validate the optimizer state before applying model weights so
        # a mismatch leaves both objects untouched.
        _restore_optimizer(optimizer, archive, path)
    model.load_state_dict(state)
