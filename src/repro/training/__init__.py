"""Training substrate: multi-task trainer, schedules, checkpoints."""

from .trainer import Trainer, TrainerConfig, TrainingHistory, train_m2g4rtp
from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint

__all__ = [
    "Trainer", "TrainerConfig", "TrainingHistory", "train_m2g4rtp",
    "save_checkpoint", "load_checkpoint", "CheckpointError",
]
