"""Training loop for M²G4RTP and its ablation variants.

Implements the paper's multi-task training (Section IV-D): per-instance
teacher forcing, the four losses combined by the model's weighting
module, Adam with gradient clipping and a step LR schedule, and early
stopping on validation loss.

The "two-step" ablation uses two optimisers over disjoint parameter
groups: the route stage (encoder + route decoders) and the time stage
(SortLSTMs), with time-decoder inputs detached inside the model.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional

import numpy as np

from ..autodiff import (Adam, CosineAnnealingLR, StepLR, Tensor,
                        clip_grad_norm, no_grad, stack)
from ..core.model import M2G4RTP, RTPTargets
from ..data.dataset import RTPDataset
from ..graphs import GraphBuilder, MultiLevelGraph
from ..obs.events import EventLog
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import span

_ROUTE_TASKS = ("aoi_route", "location_route")
_TIME_TASKS = ("aoi_time", "location_time")


@dataclasses.dataclass
class TrainerConfig:
    """Optimisation hyper-parameters."""

    epochs: int = 16
    learning_rate: float = 3e-3
    grad_clip: float = 5.0
    lr_schedule: str = "step"   # "step" or "cosine"
    lr_step: int = 6
    lr_gamma: float = 0.5
    patience: int = 5
    shuffle_seed: int = 7
    scheduled_sampling: float = 0.0
    batch_size: int = 1
    verbose: bool = False


@dataclasses.dataclass
class TrainingHistory:
    """Per-epoch records produced by :meth:`Trainer.fit`."""

    train_loss: List[float] = dataclasses.field(default_factory=list)
    val_loss: List[float] = dataclasses.field(default_factory=list)
    sigmas: List[Dict[str, float]] = dataclasses.field(default_factory=list)
    seconds: List[float] = dataclasses.field(default_factory=list)
    best_epoch: int = -1

    @property
    def num_epochs(self) -> int:
        return len(self.train_loss)


def _sum_losses(losses: Dict[str, Tensor], tasks) -> Optional[Tensor]:
    selected = [losses[task] for task in tasks if task in losses]
    if not selected:
        return None
    total = selected[0]
    for term in selected[1:]:
        total = total + term
    return total


class Trainer:
    """Fits an :class:`M2G4RTP` model on an :class:`RTPDataset`.

    Telemetry (both optional, off by default):

    * ``event_log`` — an :class:`~repro.obs.events.EventLog`; one
      ``epoch`` record (loss, val loss, sigmas, grad norm, LR, epoch
      seconds) is appended per epoch, plus a final ``fit`` record, so
      a run is inspectable mid-flight and plottable afterwards.
    * ``registry`` — a :class:`~repro.obs.metrics.MetricsRegistry`;
      ``rtp_train_*`` gauges/counters are updated per epoch, sharing
      the exposition with the service monitor and op profiler.
    """

    def __init__(self, model: M2G4RTP,
                 config: Optional[TrainerConfig] = None,
                 builder: Optional[GraphBuilder] = None,
                 event_log: Optional[EventLog] = None,
                 registry: Optional[MetricsRegistry] = None):
        self.model = model
        self.config = config or TrainerConfig()
        self.builder = builder or GraphBuilder(
            num_aoi_ids=model.config.num_aoi_ids)
        self._two_step = model.config.detach_time_inputs
        self.event_log = event_log
        self.registry = registry
        self._epoch_grad_norms: List[float] = []
        self._current_epoch = 0

    # ------------------------------------------------------------------
    def fit(self, train: RTPDataset,
            validation: Optional[RTPDataset] = None) -> TrainingHistory:
        cfg = self.config
        model = self.model
        fit_start = time.perf_counter()
        rng = np.random.default_rng(cfg.shuffle_seed)
        with span("train.build_graphs", instances=len(train)):
            graphs = self._build_graphs(list(train))
            targets = [RTPTargets.from_instance(instance) for instance in train]
            val_graphs = val_targets = None
            if validation is not None and len(validation):
                val_graphs = self._build_graphs(list(validation))
                val_targets = [RTPTargets.from_instance(i) for i in validation]
        self._on_data_ready(graphs, targets)

        def make_schedule(optimizer):
            if cfg.lr_schedule == "step":
                return StepLR(optimizer, cfg.lr_step, cfg.lr_gamma)
            if cfg.lr_schedule == "cosine":
                return CosineAnnealingLR(optimizer, cfg.epochs)
            raise ValueError(
                f"lr_schedule must be 'step' or 'cosine', got {cfg.lr_schedule!r}")

        if self._two_step:
            route_optimizer = Adam(model.route_parameters(), lr=cfg.learning_rate)
            time_optimizer = Adam(model.time_parameters(), lr=cfg.learning_rate)
            schedules = [make_schedule(route_optimizer),
                         make_schedule(time_optimizer)]
        else:
            optimizer = Adam(model.parameters(), lr=cfg.learning_rate)
            schedules = [make_schedule(optimizer)]

        history = TrainingHistory()
        best_val = np.inf
        best_state = None
        stale = 0
        sampling_rng = np.random.default_rng(cfg.shuffle_seed + 1)

        try:
            for epoch in range(cfg.epochs):
                start = time.perf_counter()
                model.train()
                self._current_epoch = epoch
                order = rng.permutation(len(graphs))
                epoch_loss = 0.0
                self._epoch_grad_norms = []
                epoch_lr = (route_optimizer if self._two_step else optimizer).lr
                # Scheduled sampling ramps linearly from 0 to its target
                # probability across the epochs (curriculum).
                if cfg.scheduled_sampling > 0.0 and cfg.epochs > 1:
                    sample_prob = cfg.scheduled_sampling * epoch / (cfg.epochs - 1)
                else:
                    sample_prob = 0.0
                with span("train.epoch", epoch=epoch):
                    if self._two_step:
                        # The two-step ablation optimises per instance (the
                        # paper's separate-optimizer setup); batch_size ignored.
                        for index in order:
                            epoch_loss += self._two_step_update(
                                graphs[index], targets[index], route_optimizer,
                                time_optimizer, sample_prob, sampling_rng)
                    else:
                        batch = max(1, cfg.batch_size)
                        for start_index in range(0, len(order), batch):
                            chunk = order[start_index:start_index + batch]
                            epoch_loss += self._update_batch(
                                chunk, graphs, targets, optimizer, sample_prob,
                                sampling_rng)
                for schedule in schedules:
                    schedule.step()
                epoch_loss /= max(len(graphs), 1)
                history.train_loss.append(epoch_loss)
                sigmas = (model.loss_weighting.sigmas()
                          if hasattr(model.loss_weighting, "sigmas") else None)
                if sigmas is not None:
                    history.sigmas.append(sigmas)
                seconds = time.perf_counter() - start
                history.seconds.append(seconds)

                val_loss = None
                if val_graphs is not None:
                    with span("train.validate", epoch=epoch,
                              instances=len(val_graphs)):
                        val_loss = self.evaluate_loss(val_graphs, val_targets)
                    history.val_loss.append(val_loss)
                self._emit_epoch_telemetry(epoch, epoch_loss, val_loss, sigmas,
                                           epoch_lr, seconds)
                if val_loss is not None:
                    if cfg.verbose:
                        print(f"epoch {epoch}: train {epoch_loss:.4f} val {val_loss:.4f}")
                    if val_loss < best_val - 1e-6:
                        best_val = val_loss
                        best_state = model.state_dict()
                        history.best_epoch = epoch
                        stale = 0
                    else:
                        stale += 1
                        if stale >= cfg.patience:
                            break
                elif cfg.verbose:
                    print(f"epoch {epoch}: train {epoch_loss:.4f}")

        finally:
            self._teardown()
        if best_state is not None:
            model.load_state_dict(best_state)
        model.eval()
        if self.event_log is not None:
            self.event_log.log(
                "fit",
                epochs=history.num_epochs,
                best_epoch=history.best_epoch,
                best_val=(None if best_val == np.inf else float(best_val)),
                total_seconds=round(time.perf_counter() - fit_start, 6),
            )
        return history

    # ------------------------------------------------------------------
    # Extension hooks — the data-parallel trainer in
    # :mod:`repro.parallel` overrides these; the sequential base class
    # keeps them trivial so the training loop itself stays shared.
    # ------------------------------------------------------------------
    def _build_graphs(self, instances) -> List[MultiLevelGraph]:
        """Turn instances into graphs (override to parallelise)."""
        return [self.builder.build(instance) for instance in instances]

    def _on_data_ready(self, graphs, targets) -> None:
        """Called once after graph building, before the first epoch."""

    def _update_batch(self, chunk, graphs, targets, optimizer: Adam,
                      sample_prob: float, rng) -> float:
        """One optimisation step over the index array ``chunk``.

        The base class gathers the chunk's graphs/targets and runs the
        sequential mini-batch update; the data-parallel trainer ships
        the indices to its worker pool instead.
        """
        return self._joint_update_batch(
            [graphs[i] for i in chunk], [targets[i] for i in chunk],
            optimizer, sample_prob, rng)

    def _teardown(self) -> None:
        """Called when :meth:`fit` exits (normally or not)."""

    # ------------------------------------------------------------------
    def _emit_epoch_telemetry(self, epoch: int, train_loss: float,
                              val_loss: Optional[float],
                              sigmas: Optional[Dict[str, float]],
                              lr: float, seconds: float) -> None:
        """Write the epoch record to the event log and the registry."""
        grad_norm = (float(np.mean(self._epoch_grad_norms))
                     if self._epoch_grad_norms else None)
        if self.event_log is not None:
            self.event_log.log(
                "epoch",
                epoch=epoch,
                train_loss=round(float(train_loss), 6),
                val_loss=(round(float(val_loss), 6)
                          if val_loss is not None else None),
                sigmas=sigmas,
                grad_norm=(round(grad_norm, 6)
                           if grad_norm is not None else None),
                lr=lr,
                seconds=round(seconds, 6),
            )
        if self.registry is not None:
            registry = self.registry
            registry.counter("rtp_train_epochs_total",
                             "Completed training epochs").inc()
            registry.gauge("rtp_train_loss",
                           "Mean training loss, latest epoch").set(train_loss)
            if val_loss is not None:
                registry.gauge("rtp_train_val_loss",
                               "Validation loss, latest epoch").set(val_loss)
            if grad_norm is not None:
                registry.gauge(
                    "rtp_train_grad_norm",
                    "Mean pre-clip gradient norm, latest epoch").set(grad_norm)
            registry.gauge("rtp_train_lr", "Learning rate in effect").set(lr)
            registry.summary("rtp_train_epoch_seconds",
                             "Wall time per epoch").observe(seconds)
            if sigmas:
                sigma_gauge = registry.gauge(
                    "rtp_train_sigma", "Per-task uncertainty weights",
                    labels=("task",))
                for task, value in sigmas.items():
                    sigma_gauge.labels(task=task).set(value)

    # ------------------------------------------------------------------
    def _joint_update_batch(self, graphs, targets, optimizer: Adam,
                            sample_prob: float = 0.0, rng=None) -> float:
        """Accumulate gradients over a mini-batch, then one Adam step.

        Per-instance losses are averaged so the effective gradient is
        the batch mean — larger ``batch_size`` trades update frequency
        for lower gradient variance.
        """
        optimizer.zero_grad()
        scale = 1.0 / len(graphs)
        total = 0.0
        for graph, target in zip(graphs, targets):
            output = self.model(graph, target, sample_prob=sample_prob,
                                rng=rng)
            (output.total_loss * scale).backward()
            total += float(output.total_loss.data)
        self._epoch_grad_norms.append(
            clip_grad_norm(optimizer.parameters, self.config.grad_clip))
        optimizer.step()
        return total

    def _two_step_update(self, graph: MultiLevelGraph, target: RTPTargets,
                         route_optimizer: Adam, time_optimizer: Adam,
                         sample_prob: float = 0.0, rng=None) -> float:
        output = self.model(graph, target, sample_prob=sample_prob, rng=rng)
        route_loss = _sum_losses(output.losses, _ROUTE_TASKS)
        time_loss = _sum_losses(output.losses, _TIME_TASKS)
        total = 0.0
        if route_loss is not None:
            route_optimizer.zero_grad()
            route_loss.backward()
            self._epoch_grad_norms.append(clip_grad_norm(
                route_optimizer.parameters, self.config.grad_clip))
            route_optimizer.step()
            total += float(route_loss.data)
        if time_loss is not None:
            time_optimizer.zero_grad()
            time_loss.backward()
            self._epoch_grad_norms.append(clip_grad_norm(
                time_optimizer.parameters, self.config.grad_clip))
            time_optimizer.step()
            total += float(time_loss.data)
        return total

    # ------------------------------------------------------------------
    def evaluate_loss(self, graphs, targets) -> float:
        """Mean teacher-forced loss over a validation set."""
        model = self.model
        was_training = model.training
        model.eval()
        try:
            with no_grad():
                losses = []
                for graph, target in zip(graphs, targets):
                    output = model(graph, target)
                    # Compare raw task losses (not sigma-weighted) so
                    # early stopping is insensitive to the weighting
                    # parameters drifting.
                    losses.append(sum(float(l.data) for l in output.losses.values()))
            return float(np.mean(losses))
        finally:
            if was_training:
                model.train()


def train_m2g4rtp(train: RTPDataset, validation: Optional[RTPDataset] = None,
                  model: Optional[M2G4RTP] = None,
                  trainer_config: Optional[TrainerConfig] = None,
                  builder: Optional[GraphBuilder] = None,
                  num_workers: int = 0,
                  parallel=None):
    """One-call convenience: build, train and return (model, history).

    ``num_workers > 0`` (or an explicit
    :class:`~repro.parallel.ParallelConfig` via ``parallel=``) opts into
    the data-parallel trainer of :mod:`repro.parallel`; the default is
    the sequential loop.
    """
    model = model or M2G4RTP()
    if num_workers > 0 or parallel is not None:
        from ..parallel import DataParallelTrainer, ParallelConfig
        if parallel is None:
            parallel = ParallelConfig(num_workers=num_workers)
        trainer: Trainer = DataParallelTrainer(
            model, trainer_config, parallel, builder)
    else:
        trainer = Trainer(model, trainer_config, builder)
    history = trainer.fit(train, validation)
    return model, history
