"""Parallel training subsystem: data pipeline and data-parallel workers.

Two cooperating pieces turn the single-process numpy training loop into
a multi-process one without changing what it computes:

* :class:`ParallelDataLoader` — a multiprocessing data pipeline that
  transforms and batches samples ahead of the consumer behind a bounded
  prefetch queue, with deterministic per-item seeding and clean
  shutdown;
* :class:`DataParallelTrainer` — a drop-in
  :class:`~repro.training.trainer.Trainer` that shards every mini-batch
  across a pool of gradient worker processes and aggregates their
  gradients with elastic, straggler-tolerant averaging (per-step
  deadlines with drop-and-rescale, worker heartbeats, automatic
  respawn of dead workers).

Configuration lives on :class:`ParallelConfig`; the CLI exposes it as
``repro-rtp train --workers N --prefetch K``.  Fault injection for the
resilience tests reuses :class:`~repro.deploy.faults.FaultInjector`.
"""

from .loader import ParallelDataLoader
from .trainer import DataParallelTrainer, ParallelConfig, train_parallel
from .worker import GradientWorkerPool, StepResult, default_start_method

__all__ = [
    "ParallelDataLoader",
    "DataParallelTrainer",
    "ParallelConfig",
    "train_parallel",
    "GradientWorkerPool",
    "StepResult",
    "default_start_method",
]
