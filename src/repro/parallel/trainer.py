"""Data-parallel training: shard the batch, all-reduce the gradients.

:class:`DataParallelTrainer` extends the sequential
:class:`~repro.training.trainer.Trainer` with a pool of gradient worker
processes.  Each optimisation step:

1. the mini-batch's instance indices are sharded round-robin across the
   workers (strided, so shard sizes differ by at most one);
2. every worker runs forward/backward over its shard, accumulating
   ``d(loss_i / batch)`` exactly like the sequential trainer does;
3. the coordinator sums the shipped gradients (an all-reduce with the
   coordinator as the reduction root), clips by global norm, and takes
   the Adam step — then lazily re-broadcasts parameters with the next
   shard a worker receives.

Because every instance contributes ``grad_i / batch`` on both paths,
the parallel step computes the *same* gradient as the sequential one up
to floating-point summation order — loss trajectories and final
parameters match within tolerance on the same seed (asserted by
``tests/test_parallel_training.py``).

Elastic aggregation (config knobs on :class:`ParallelConfig`):

* ``deadline_s`` — per-step worker deadline; shards that miss it are
  dropped and the surviving gradient sum is rescaled by
  ``expected/arrived`` (drop-and-rescale averaging);
* ``min_shards`` — the deadline never cuts below this many shards;
* dead or hung workers are respawned automatically mid-step;
* ``accumulate_steps`` — gradient accumulation: the batch is processed
  in that many sequential micro-batches per optimiser step, trading
  peak memory for latency without changing the computed gradient.

Observability: the coordinator (single writer) maintains
``rtp_train_worker_*`` metrics from worker-shipped statistics and wraps
dispatch/collect/apply in ``parallel.*`` tracing spans.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional

import numpy as np

from ..autodiff import Adam, clip_grad_norm
from ..core.model import M2G4RTP
from ..data.dataset import RTPDataset
from ..deploy.faults import FaultPlan
from ..graphs import GraphBuilder
from ..obs.events import EventLog
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import span
from ..training.trainer import Trainer, TrainerConfig, TrainingHistory
from .loader import ParallelDataLoader
from .worker import GradientWorkerPool

__all__ = ["ParallelConfig", "DataParallelTrainer", "train_parallel"]


@dataclasses.dataclass
class ParallelConfig:
    """Knobs of the parallel training subsystem."""

    num_workers: int = 2            # gradient workers (0 = sequential)
    loader_workers: int = 0         # graph-building workers (0 = inline)
    prefetch: int = 4               # loader in-flight batches
    deadline_s: Optional[float] = None   # per-step straggler deadline
    min_shards: int = 1             # deadline floor, in arrived shards
    accumulate_steps: int = 1       # micro-batches per optimiser step
    max_respawns: int = 8           # worker-death budget for one fit
    heartbeat_grace_s: float = 60.0  # hung-worker cutoff (no deadline)
    start_method: Optional[str] = None   # fork/spawn; None = platform
    #: Per-worker fault plans (tests/benchmarks): worker id -> plan.
    fault_plans: Dict[int, FaultPlan] = dataclasses.field(
        default_factory=dict)
    fault_seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if self.accumulate_steps < 1:
            raise ValueError("accumulate_steps must be >= 1")
        if self.min_shards < 1:
            raise ValueError("min_shards must be >= 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")


class DataParallelTrainer(Trainer):
    """A :class:`~repro.training.trainer.Trainer` whose gradient work is
    sharded across a pool of worker processes.

    Drop-in for the sequential trainer (same ``fit`` signature, history
    and telemetry); only the inner mini-batch update and, optionally,
    graph building are distributed.  ``parallel.num_workers == 0``
    degrades to exactly the sequential path, which is what the CLI's
    default does.
    """

    def __init__(self, model: M2G4RTP,
                 config: Optional[TrainerConfig] = None,
                 parallel: Optional[ParallelConfig] = None,
                 builder: Optional[GraphBuilder] = None,
                 event_log: Optional[EventLog] = None,
                 registry: Optional[MetricsRegistry] = None):
        super().__init__(model, config, builder, event_log, registry)
        if model.config.detach_time_inputs:
            raise ValueError(
                "the two-step ablation trains per instance with two "
                "optimisers and cannot be sharded; use the sequential "
                "Trainer for detach_time_inputs=True")
        self.parallel = parallel or ParallelConfig()
        self._pool: Optional[GradientWorkerPool] = None
        self._step_id = 0
        self._param_version = 0
        self._worker_param_version: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Trainer hooks
    # ------------------------------------------------------------------
    def _build_graphs(self, instances):
        if self.parallel.loader_workers <= 0 or len(instances) < 2:
            return super()._build_graphs(instances)
        with ParallelDataLoader(
                instances, self.builder.build,
                batch_size=max(1, len(instances)
                               // (4 * self.parallel.loader_workers) or 1),
                num_workers=self.parallel.loader_workers,
                prefetch=self.parallel.prefetch,
                start_method=self.parallel.start_method,
                registry=self.registry) as loader:
            return loader.map()

    def _on_data_ready(self, graphs, targets) -> None:
        if self.parallel.num_workers <= 0:
            return
        self._pool = GradientWorkerPool(
            self.model, graphs, targets,
            num_workers=self.parallel.num_workers,
            sample_seed=self.config.shuffle_seed + 1,
            start_method=self.parallel.start_method,
            fault_plans=self.parallel.fault_plans,
            fault_seed=self.parallel.fault_seed,
            max_respawns=self.parallel.max_respawns,
            heartbeat_grace_s=self.parallel.heartbeat_grace_s,
            registry=self.registry)
        self._worker_param_version = {
            worker_id: self._param_version
            for worker_id in range(self.parallel.num_workers)}

    def _teardown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    # ------------------------------------------------------------------
    def _update_batch(self, chunk, graphs, targets, optimizer: Adam,
                      sample_prob: float, rng) -> float:
        if self._pool is None:
            return super()._update_batch(chunk, graphs, targets, optimizer,
                                         sample_prob, rng)
        pool = self._pool
        parallel = self.parallel
        parameters = optimizer.parameters
        scale = 1.0 / len(chunk)
        micro_chunks = [m for m in np.array_split(
            np.asarray(chunk), min(parallel.accumulate_steps, len(chunk)))
            if len(m)]

        grad_totals: List[Optional[np.ndarray]] = [None] * len(parameters)
        loss_total = 0.0
        for micro in micro_chunks:
            shards = self._shard(micro, pool.num_workers)
            self._step_id += 1
            pool.drain()
            params_payload = None
            params_for: Dict[int, Optional[List[np.ndarray]]] = {}
            for worker_id in shards:
                if self._worker_param_version.get(worker_id) \
                        != self._param_version:
                    if params_payload is None:
                        params_payload = [parameter.data.copy()
                                          for parameter in parameters]
                    params_for[worker_id] = params_payload
                    self._worker_param_version[worker_id] = \
                        self._param_version
                else:
                    params_for[worker_id] = None
            step_started = time.perf_counter()
            with span("parallel.step", step=self._step_id,
                      instances=len(micro), workers=len(shards)) \
                    as step_span:
                pool.dispatch(self._step_id, shards, scale, sample_prob,
                              self._current_epoch, params_for)
                result = pool.collect(self._step_id, shards,
                                      parallel.deadline_s,
                                      parallel.min_shards)
            if self.registry is not None:
                # Exemplars link a slow step straight to its trace — the
                # span has already exited, so its trace id is passed
                # explicitly rather than auto-captured.
                self.registry.histogram(
                    "rtp_train_step_ms",
                    "Distributed step wall time (dispatch to collect)",
                    exemplars=5).observe(
                    (time.perf_counter() - step_started) * 1000.0,
                    trace_id=step_span.trace_id)
            # A respawned worker starts from current coordinator
            # parameters — its copy is up to date by construction.
            for worker_id, _ in result.errors:
                self._worker_param_version.setdefault(
                    worker_id, self._param_version)
            for worker_id in result.stragglers:
                # Straggler state is unknown (it may still apply the
                # missed broadcast); force a re-send next time.
                self._worker_param_version[worker_id] = -1
            self._record_step(result)
            if result.arrived == 0:
                continue
            rescale = result.expected / result.arrived
            loss_total += result.loss_sum * rescale
            for slot, grad in enumerate(result.grad_sums or []):
                if grad is None:
                    continue
                grad = grad * rescale if rescale != 1.0 else grad
                if grad_totals[slot] is None:
                    grad_totals[slot] = grad.copy()
                else:
                    grad_totals[slot] += grad

        if all(grad is None for grad in grad_totals):
            # Every shard of every micro-batch was lost: skip the step
            # rather than stepping Adam on a zero gradient.
            if self.registry is not None:
                self.registry.counter(
                    "rtp_train_steps_skipped_total",
                    "Optimiser steps skipped because no gradients "
                    "arrived").inc()
            return loss_total
        with span("parallel.apply"):
            for parameter, grad in zip(parameters, grad_totals):
                parameter.grad = grad
            self._epoch_grad_norms.append(
                clip_grad_norm(parameters, self.config.grad_clip))
            optimizer.step()
            self._param_version += 1
        return loss_total

    # ------------------------------------------------------------------
    @staticmethod
    def _shard(micro: np.ndarray, num_workers: int
               ) -> Dict[int, List[int]]:
        """Strided round-robin shards (sizes differ by at most one)."""
        shards = {worker_id: [int(i) for i in micro[worker_id::num_workers]]
                  for worker_id in range(num_workers)}
        return {worker_id: indices
                for worker_id, indices in shards.items() if indices}

    def _record_step(self, result) -> None:
        registry = self.registry
        if registry is None:
            return
        steps = registry.counter(
            "rtp_train_worker_steps_total",
            "Shard results contributed by each gradient worker",
            labels=("worker",))
        seconds = registry.summary(
            "rtp_train_worker_step_seconds",
            "Per-shard forward/backward wall time", labels=("worker",))
        for worker_id, elapsed in result.worker_seconds.items():
            steps.labels(worker=worker_id).inc()
            seconds.labels(worker=worker_id).observe(elapsed)
        for worker_id in result.stragglers:
            registry.counter(
                "rtp_train_worker_stragglers_total",
                "Shards dropped at the step deadline",
                labels=("worker",)).labels(worker=worker_id).inc()
        for worker_id, _ in result.errors:
            registry.counter(
                "rtp_train_worker_errors_total",
                "Shards lost to in-worker errors",
                labels=("worker",)).labels(worker=worker_id).inc()
        if self._pool is not None:
            registry.gauge(
                "rtp_train_workers_alive",
                "Live gradient worker processes"
            ).set(self._pool.alive_workers())
            ages = self._pool.heartbeat_ages()
            if ages:
                registry.gauge(
                    "rtp_train_worker_heartbeat_age_seconds",
                    "Seconds since the oldest worker heartbeat"
                ).set(max(ages.values()))


def train_parallel(train: RTPDataset,
                   validation: Optional[RTPDataset] = None,
                   model: Optional[M2G4RTP] = None,
                   trainer_config: Optional[TrainerConfig] = None,
                   parallel: Optional[ParallelConfig] = None,
                   builder: Optional[GraphBuilder] = None):
    """One-call convenience mirroring
    :func:`~repro.training.trainer.train_m2g4rtp` for the parallel path.

    Returns ``(model, history)``.
    """
    model = model or M2G4RTP()
    trainer = DataParallelTrainer(model, trainer_config, parallel, builder)
    history: TrainingHistory = trainer.fit(train, validation)
    return model, history
