"""Process-boundary layer of the parallel training subsystem.

Two kinds of child processes live here:

* **loader workers** (:func:`loader_worker_main`) — transform dataset
  items into samples for :class:`~repro.parallel.loader.ParallelDataLoader`;
* **gradient workers** (:func:`gradient_worker_main`) — run
  forward/backward over a shard of a mini-batch for
  :class:`~repro.parallel.trainer.DataParallelTrainer`, coordinated by
  :class:`GradientWorkerPool`.

Everything that crosses a process boundary is a plain picklable tuple
(see the message glossary below), and all numpy payloads are shipped as
arrays in the model's ``parameters()`` order — which is sorted by
parameter name and therefore identical in every process.

Message glossary (coordinator → gradient worker)::

    ("step", step_id, indices, scale, sample_prob, epoch, params|None,
     trace_ctx|None)
    ("stop",)

and (gradient worker → coordinator)::

    ("heartbeat", worker_id, step_id)                    # step received
    ("result", worker_id, step_id, loss_sum, count, grads, seconds,
     spans)
    ("error", worker_id, step_id, message, seconds, spans)  # shard lost

``trace_ctx`` is the coordinator's span context in wire form
(:func:`~repro.obs.propagate.capture_context`), and ``spans`` is the
list of span records the worker opened while serving the task
(:meth:`~repro.obs.propagate.worker_span_session.export`).  Spans
opened inside a worker process land in that process's collector, which
dies with it — shipping them back with the result and stitching them
under the dispatching span on collect is the only way they survive.
Both fields are empty (``None`` / ``[]``) when tracing is off, so the
steady-state wire cost is two constant-size slots per message.

Fault injection: each worker may own a seeded
:class:`~repro.deploy.faults.FaultInjector`.  ``should_crash`` kills the
process outright (``os._exit``) to exercise dead-worker respawn;
``before_call`` raises a transient error which surfaces as an
``("error", ...)`` message and costs that worker's shard for the step
(drop-and-rescale).
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.model import M2G4RTP, M2G4RTPConfig
from ..deploy.faults import FaultInjector, FaultPlan, TransientServiceError
from ..obs.propagate import capture_context, merge_worker_spans, \
    worker_span_session
from ..obs.tracing import span

__all__ = [
    "GradientWorkerPool", "StepResult", "gradient_worker_main",
    "loader_worker_main", "default_start_method",
]


def default_start_method() -> str:
    """``fork`` where the platform offers it (cheap, zero-copy data
    inheritance), ``spawn`` otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def _instance_rng(sample_seed: int, epoch: int, index: int):
    """Scheduled-sampling RNG derived per (epoch, instance).

    Seeding by instance index — not by worker or shard — keeps the
    sampling decisions identical no matter how the batch is sharded or
    how many workers run, so a parallel run is reproducible run-to-run.
    (It is *not* the sequential trainer's single shared stream; see the
    determinism caveats in the README.)
    """
    return np.random.default_rng((sample_seed, epoch, index))


# ----------------------------------------------------------------------
# Loader worker
# ----------------------------------------------------------------------
def loader_worker_main(worker_id: int, items: Sequence, transform,
                       wants_rng: bool, seed: int,
                       task_queue, result_queue) -> None:
    """Transform chunks of ``items`` until a ``("stop",)`` sentinel.

    Each item is transformed with an RNG seeded by ``(seed, index)``, so
    stochastic transforms are deterministic per item regardless of which
    worker picks the chunk up or how many workers exist.
    """
    while True:
        message = task_queue.get()
        if message[0] == "stop":
            break
        _, chunk_id, indices, trace_ctx = message
        with worker_span_session(trace_ctx) as session:
            try:
                samples = []
                with span("parallel.loader.chunk", worker=worker_id,
                          items=len(indices)):
                    for index in indices:
                        item = items[index]
                        if transform is None:
                            samples.append(item)
                        elif wants_rng:
                            samples.append(transform(
                                item,
                                np.random.default_rng((seed, index))))
                        else:
                            samples.append(transform(item))
                result_queue.put(("chunk", worker_id, chunk_id, samples,
                                  session.export()))
            except Exception as exc:  # ship the failure, keep serving
                result_queue.put(("chunk_error", worker_id, chunk_id,
                                  f"{type(exc).__name__}: {exc}",
                                  session.export()))


# ----------------------------------------------------------------------
# Gradient worker
# ----------------------------------------------------------------------
def gradient_worker_main(worker_id: int, model_config: M2G4RTPConfig,
                         initial_params: List[np.ndarray],
                         graphs: Sequence, targets: Sequence,
                         sample_seed: int, task_queue, result_queue,
                         fault_plan: Optional[FaultPlan] = None,
                         fault_seed: int = 0,
                         fault_offset: int = 0) -> None:
    """Per-shard forward/backward loop of one data-parallel worker.

    Rebuilds the model from its config, applies ``initial_params``, then
    serves ``("step", ...)`` tasks: accumulate ``d(loss * scale)`` over
    the shard's instances and ship the gradients back.  The worker holds
    the *full* ``graphs``/``targets`` lists (inherited for free under
    ``fork``) and receives only index lists per step, so steady-state
    traffic is parameters down, gradients up.
    """
    model = M2G4RTP(model_config)
    model.train()
    parameters = model.parameters()
    for parameter, value in zip(parameters, initial_params):
        parameter.data[...] = value
    injector = (FaultInjector(fault_plan, seed=fault_seed + worker_id)
                if fault_plan is not None else None)
    if injector is not None and fault_offset:
        # This is a respawned incarnation: resume the logical worker's
        # fault stream where the dead process left off.
        injector.fast_forward(fault_offset)

    while True:
        message = task_queue.get()
        if message[0] == "stop":
            break
        (_, step_id, indices, scale, sample_prob, epoch, params,
         trace_ctx) = message
        result_queue.put(("heartbeat", worker_id, step_id))
        started = time.perf_counter()
        with worker_span_session(trace_ctx) as session:
            try:
                if injector is not None:
                    if injector.should_crash():
                        # A crash is the process vanishing, not an error
                        # message: exit without flushing anything.
                        os._exit(23)
                    injector.before_call()
                if params is not None:
                    for parameter, value in zip(parameters, params):
                        parameter.data[...] = value
                for parameter in parameters:
                    parameter.zero_grad()
                loss_sum = 0.0
                with span("parallel.worker.step", worker=worker_id,
                          step=step_id, instances=len(indices)):
                    for index in indices:
                        rng = (_instance_rng(sample_seed, epoch, index)
                               if sample_prob > 0.0 else None)
                        output = model(graphs[index], targets[index],
                                       sample_prob=sample_prob, rng=rng)
                        (output.total_loss * scale).backward()
                        loss_sum += float(output.total_loss.data)
                grads = [parameter.grad for parameter in parameters]
                result_queue.put(("result", worker_id, step_id, loss_sum,
                                  len(indices), grads,
                                  time.perf_counter() - started,
                                  session.export()))
            except TransientServiceError as exc:
                result_queue.put(("error", worker_id, step_id, str(exc),
                                  time.perf_counter() - started,
                                  session.export()))
            except Exception as exc:
                result_queue.put(("error", worker_id, step_id,
                                  f"{type(exc).__name__}: {exc}",
                                  time.perf_counter() - started,
                                  session.export()))


# ----------------------------------------------------------------------
# Coordinator-side pool
# ----------------------------------------------------------------------
class StepResult:
    """Aggregated outcome of one distributed step (or micro-step)."""

    __slots__ = ("loss_sum", "arrived", "expected", "grad_sums",
                 "stragglers", "errors", "worker_seconds")

    def __init__(self):
        self.loss_sum = 0.0
        self.arrived = 0                    # instances that contributed
        self.expected = 0                   # instances dispatched
        self.grad_sums: Optional[List[Optional[np.ndarray]]] = None
        self.stragglers: List[int] = []     # worker ids cut at deadline
        self.errors: List[Tuple[int, str]] = []
        self.worker_seconds: Dict[int, float] = {}

    def merge_grads(self, grads: List[Optional[np.ndarray]]) -> None:
        if self.grad_sums is None:
            self.grad_sums = [None if g is None else g.copy() for g in grads]
            return
        for slot, grad in enumerate(grads):
            if grad is None:
                continue
            if self.grad_sums[slot] is None:
                self.grad_sums[slot] = grad.copy()
            else:
                self.grad_sums[slot] += grad


class GradientWorkerPool:
    """N persistent gradient workers plus the elastic coordination logic.

    The pool owns worker lifecycles (start, heartbeat tracking, dead- or
    hung-worker respawn) and the per-step collect loop with its deadline
    semantics:

    * ``deadline_s`` — per-step budget measured from dispatch; workers
      that have not answered when it expires are recorded as
      **stragglers**, their shards dropped and the surviving gradients
      rescaled by the coordinator (drop-and-rescale averaging);
    * ``min_shards`` — the deadline never cuts below this many arrived
      worker shards, so a fleet-wide hiccup stalls instead of stepping
      on (almost) no data;
    * a worker found dead mid-step is respawned from the coordinator's
      current parameters and its task resubmitted (unless the deadline
      already passed, in which case the respawn still happens but the
      shard is dropped for this step).

    Single-writer metrics: workers never touch a registry; the
    coordinator folds their shipped statistics into ``rtp_train_worker_*``
    instruments after each collect.
    """

    def __init__(self, model: M2G4RTP, graphs: Sequence, targets: Sequence,
                 num_workers: int, sample_seed: int = 0,
                 start_method: Optional[str] = None,
                 fault_plans: Optional[Dict[int, FaultPlan]] = None,
                 fault_seed: int = 0,
                 max_respawns: int = 8,
                 heartbeat_grace_s: float = 60.0,
                 registry=None):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1 for a worker pool")
        self.model = model
        self.graphs = graphs
        self.targets = targets
        self.num_workers = num_workers
        self.sample_seed = sample_seed
        self.fault_plans = dict(fault_plans or {})
        self.fault_seed = fault_seed
        self.max_respawns = max_respawns
        self.heartbeat_grace_s = heartbeat_grace_s
        self.registry = registry
        self.respawns = 0
        self._ctx = multiprocessing.get_context(
            start_method or default_start_method())
        self._result_queue = self._ctx.Queue()
        self._processes: List = [None] * num_workers
        self._task_queues = [self._ctx.Queue() for _ in range(num_workers)]
        self._last_heartbeat: Dict[int, float] = {}
        self._last_task: Dict[int, tuple] = {}
        self._tasks_sent: Dict[int, int] = {}
        self._closed = False
        self._parameters = model.parameters()
        for worker_id in range(num_workers):
            self._start_worker(worker_id)

    # ------------------------------------------------------------------
    def _start_worker(self, worker_id: int) -> None:
        process = self._ctx.Process(
            target=gradient_worker_main,
            args=(worker_id, self.model.config,
                  [parameter.data.copy() for parameter in self._parameters],
                  self.graphs, self.targets, self.sample_seed,
                  self._task_queues[worker_id], self._result_queue,
                  self.fault_plans.get(worker_id), self.fault_seed,
                  self._tasks_sent.get(worker_id, 0)),
            daemon=True,
            name=f"rtp-grad-worker-{worker_id}")
        process.start()
        self._processes[worker_id] = process
        self._last_heartbeat[worker_id] = time.monotonic()

    def _respawn(self, worker_id: int, resubmit: bool) -> None:
        if self.respawns >= self.max_respawns:
            raise RuntimeError(
                f"gradient worker {worker_id} died and the respawn budget "
                f"({self.max_respawns}) is exhausted")
        process = self._processes[worker_id]
        if process is not None and process.is_alive():
            process.terminate()
        if process is not None:
            process.join(timeout=5.0)
        # A fresh queue: the dead worker may have left the old one in an
        # undefined state mid-get.
        self._task_queues[worker_id] = self._ctx.Queue()
        self.respawns += 1
        self._count("rtp_train_worker_respawns_total",
                    "Gradient workers respawned after dying", worker_id)
        self._start_worker(worker_id)
        if resubmit and worker_id in self._last_task:
            # The fresh worker started from current coordinator
            # parameters, so resend the task without a params payload.
            (kind, step_id, indices, scale, sample_prob, epoch, _,
             trace_ctx) = self._last_task[worker_id]
            self._task_queues[worker_id].put(
                (kind, step_id, indices, scale, sample_prob, epoch, None,
                 trace_ctx))

    def alive_workers(self) -> int:
        return sum(1 for process in self._processes
                   if process is not None and process.is_alive())

    def heartbeat_ages(self) -> Dict[int, float]:
        """Seconds since each worker last acknowledged a step."""
        now = time.monotonic()
        return {worker_id: now - seen
                for worker_id, seen in self._last_heartbeat.items()}

    # ------------------------------------------------------------------
    def _count(self, name: str, help_text: str, worker_id: int,
               amount: float = 1.0) -> None:
        if self.registry is not None:
            self.registry.counter(name, help_text, labels=("worker",)) \
                .labels(worker=worker_id).inc(amount)

    def dispatch(self, step_id: int, shards: Dict[int, Sequence[int]],
                 scale: float, sample_prob: float, epoch: int,
                 params_for: Dict[int, Optional[List[np.ndarray]]]) -> None:
        """Send one step's shard to each worker in ``shards``.

        ``params_for[w]`` carries the current parameter arrays for
        workers whose copy is stale (``None`` for up-to-date ones).
        The caller's span context (if tracing is on) rides along so the
        workers' spans can be stitched under it at collect time.
        """
        trace_ctx = capture_context()
        for worker_id, indices in shards.items():
            task = ("step", step_id, list(map(int, indices)), scale,
                    sample_prob, epoch, params_for.get(worker_id),
                    trace_ctx)
            self._last_task[worker_id] = task
            self._tasks_sent[worker_id] = \
                self._tasks_sent.get(worker_id, 0) + 1
            self._task_queues[worker_id].put(task)

    def collect(self, step_id: int, shards: Dict[int, Sequence[int]],
                deadline_s: Optional[float], min_shards: int) -> StepResult:
        """Gather this step's shard results, elastically.

        Returns once every dispatched shard has answered, or — when
        ``deadline_s`` is set — once the deadline passes with at least
        ``min_shards`` shards in hand.  Dead workers are respawned as
        they are discovered; results for other step ids (late stragglers
        from a previous step) are discarded.
        """
        result = StepResult()
        result.expected = sum(len(indices) for indices in shards.values())
        pending = {worker_id: len(indices)
                   for worker_id, indices in shards.items() if len(indices)}
        arrived_shards = 0
        started = time.monotonic()
        while pending:
            elapsed = time.monotonic() - started
            cut_allowed = (deadline_s is not None
                           and arrived_shards + len(result.errors)
                           >= min_shards)
            if cut_allowed and elapsed >= deadline_s:
                break
            if deadline_s is not None and not cut_allowed:
                timeout = 0.05
            elif deadline_s is not None:
                timeout = max(deadline_s - elapsed, 0.001)
            else:
                timeout = 0.05
            try:
                message = self._result_queue.get(timeout=min(timeout, 0.25))
            except queue.Empty:
                message = None
            if message is not None:
                kind = message[0]
                if kind == "heartbeat":
                    _, worker_id, _ = message
                    self._last_heartbeat[worker_id] = time.monotonic()
                    continue
                if message[2] != step_id:
                    # Late answer from an earlier step: its shard was
                    # already dropped and rescaled; discard.
                    self._count("rtp_train_worker_late_results_total",
                                "Results that arrived after their step "
                                "was closed", message[1])
                    continue
                if kind == "result":
                    (_, worker_id, _, loss_sum, count, grads, seconds,
                     spans) = message
                    if worker_id in pending:
                        result.loss_sum += loss_sum
                        result.arrived += count
                        result.merge_grads(grads)
                        result.worker_seconds[worker_id] = seconds
                        arrived_shards += 1
                        del pending[worker_id]
                        self._last_heartbeat[worker_id] = time.monotonic()
                        # Stitch the worker's spans under whatever span
                        # is collecting (e.g. ``parallel.step``).
                        merge_worker_spans(spans, capture_context())
                    continue
                if kind == "error":
                    _, worker_id, _, text, seconds, spans = message
                    if worker_id in pending:
                        result.errors.append((worker_id, text))
                        result.worker_seconds[worker_id] = seconds
                        del pending[worker_id]
                        self._last_heartbeat[worker_id] = time.monotonic()
                        merge_worker_spans(spans, capture_context())
                    continue
                continue
            # No message this tick: check liveness of pending workers.
            for worker_id in list(pending):
                process = self._processes[worker_id]
                hung = (time.monotonic() - self._last_heartbeat[worker_id]
                        > self.heartbeat_grace_s)
                if process is not None and process.is_alive() and not hung:
                    continue
                past_deadline = (deadline_s is not None
                                 and time.monotonic() - started >= deadline_s)
                self._respawn(worker_id, resubmit=not past_deadline)
                if past_deadline:
                    result.stragglers.append(worker_id)
                    del pending[worker_id]
        result.stragglers.extend(pending)
        return result

    def drain(self) -> None:
        """Discard queued results (between steps after a straggler cut)."""
        while True:
            try:
                message = self._result_queue.get_nowait()
            except queue.Empty:
                return
            if message[0] == "heartbeat":
                self._last_heartbeat[message[1]] = time.monotonic()

    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop every worker: sentinel, join, terminate leftovers."""
        if self._closed:
            return
        self._closed = True
        for task_queue in self._task_queues:
            try:
                task_queue.put(("stop",))
            except (OSError, ValueError):
                pass
        for process in self._processes:
            if process is not None:
                process.join(timeout=timeout)
        for process in self._processes:
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._result_queue.close()
        for task_queue in self._task_queues:
            task_queue.close()

    def __enter__(self) -> "GradientWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
