"""Prefetching, multiprocessing data pipeline.

:class:`ParallelDataLoader` turns ``transform(items[i])`` over a
sequence into an ordered stream of batches produced by a pool of worker
processes, with a **bounded prefetch window**: at most ``prefetch``
batches are in flight at any moment, so a fast producer cannot balloon
memory ahead of a slow consumer.

Guarantees:

* **Order** — batches are yielded in submission order regardless of
  which worker finishes first (out-of-order arrivals are parked until
  their turn).
* **Determinism** — stochastic transforms receive an RNG seeded by
  ``(seed, item_index)``; the produced samples are identical for any
  ``num_workers`` (including 0) and any worker scheduling.
* **Clean shutdown** — :meth:`close` (or leaving the ``with`` block)
  sends stop sentinels, joins the workers, and terminates any that
  ignore the sentinel; abandoned iterations are drained lazily via
  generation tags rather than blocking.
* **Elasticity** — a loader worker that dies mid-chunk has its
  outstanding chunks recomputed in the coordinator process (correct,
  just slower) and is respawned for subsequent chunks.

``num_workers=0`` degrades to a synchronous in-process loop with the
same seeding, which is both the fallback for constrained environments
and the reference behaviour the parallel path must reproduce.
"""

from __future__ import annotations

import inspect
import queue
import multiprocessing
import time
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..obs.propagate import capture_context, merge_worker_spans
from ..obs.tracing import span
from .worker import default_start_method, loader_worker_main

__all__ = ["ParallelDataLoader"]


def _transform_wants_rng(transform) -> bool:
    """True when ``transform`` accepts a second (rng) argument."""
    if transform is None:
        return False
    try:
        signature = inspect.signature(transform)
    except (TypeError, ValueError):
        return False
    positional = [
        parameter for parameter in signature.parameters.values()
        if parameter.kind in (parameter.POSITIONAL_ONLY,
                              parameter.POSITIONAL_OR_KEYWORD)
    ]
    if any(parameter.kind == parameter.VAR_POSITIONAL
           for parameter in signature.parameters.values()):
        return True
    return len(positional) >= 2


class ParallelDataLoader:
    """Worker-pool loader yielding ordered batches of transformed items.

    Parameters
    ----------
    items:
        The source sequence (dataset instances, indices, …).  Must be
        picklable under ``spawn``; under ``fork`` it is inherited.
    transform:
        ``transform(item)`` or ``transform(item, rng)`` applied in the
        workers; ``None`` passes items through.
    batch_size / num_workers / prefetch / seed:
        Batching, pool size, max in-flight batches, RNG base seed.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; the loader
        (a single writer — the consumer process) records
        ``rtp_train_loader_batches_total`` and
        ``rtp_train_loader_wait_seconds``.
    """

    def __init__(self, items: Sequence, transform=None, *,
                 batch_size: int = 1, num_workers: int = 2,
                 prefetch: int = 4, seed: int = 0,
                 start_method: Optional[str] = None,
                 registry=None):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if prefetch < 1:
            raise ValueError("prefetch must be >= 1")
        self.items = items
        self.transform = transform
        self.batch_size = batch_size
        self.num_workers = num_workers
        self.prefetch = prefetch
        self.seed = seed
        self.registry = registry
        self._wants_rng = _transform_wants_rng(transform)
        self._generation = 0
        self._iterating = False
        self._closed = False
        self._processes: List = []
        self._task_queues: List = []
        self._result_queue = None
        if num_workers > 0:
            self._ctx = multiprocessing.get_context(
                start_method or default_start_method())
            self._result_queue = self._ctx.Queue()
            for worker_id in range(num_workers):
                self._task_queues.append(self._ctx.Queue())
                self._processes.append(self._start_worker(worker_id))

    # ------------------------------------------------------------------
    def _start_worker(self, worker_id: int):
        process = self._ctx.Process(
            target=loader_worker_main,
            args=(worker_id, self.items, self.transform, self._wants_rng,
                  self.seed, self._task_queues[worker_id],
                  self._result_queue),
            daemon=True,
            name=f"rtp-loader-worker-{worker_id}")
        process.start()
        return process

    def __len__(self) -> int:
        """Number of batches per pass."""
        return (len(self.items) + self.batch_size - 1) // self.batch_size

    def _transform_one(self, index: int):
        item = self.items[index]
        if self.transform is None:
            return item
        if self._wants_rng:
            return self.transform(item, np.random.default_rng(
                (self.seed, index)))
        return self.transform(item)

    # ------------------------------------------------------------------
    def iter_batches(self, order: Optional[Sequence[int]] = None
                     ) -> Iterator[list]:
        """Yield ordered batches over ``order`` (default: natural order).

        The loader is reusable — call again (e.g. once per epoch with a
        fresh shuffle) and the same persistent workers serve the pass.
        Only one iteration may be active at a time.
        """
        if self._closed:
            raise RuntimeError("loader is closed")
        if self._iterating:
            raise RuntimeError("loader already has an active iteration")
        indices = (list(range(len(self.items))) if order is None
                   else [int(i) for i in order])
        chunks = [indices[offset:offset + self.batch_size]
                  for offset in range(0, len(indices), self.batch_size)]
        if self.num_workers == 0:
            for chunk in chunks:
                self._record_batch(0.0)
                yield [self._transform_one(index) for index in chunk]
            return
        self._iterating = True
        self._generation += 1
        try:
            yield from self._iter_parallel(chunks)
        finally:
            self._iterating = False

    __iter__ = iter_batches

    def _iter_parallel(self, chunks: List[List[int]]) -> Iterator[list]:
        generation = self._generation
        next_submit = 0
        next_yield = 0
        parked: Dict[int, list] = {}
        outstanding: Dict[int, int] = {}   # chunk seq -> worker id

        def submit(sequence: int) -> None:
            worker_id = sequence % self.num_workers
            outstanding[sequence] = worker_id
            self._task_queues[worker_id].put(
                ("chunk", (generation, sequence), chunks[sequence],
                 capture_context()))

        while next_submit < len(chunks) and next_submit < self.prefetch:
            submit(next_submit)
            next_submit += 1

        while next_yield < len(chunks):
            if next_yield in parked:
                batch = parked.pop(next_yield)
                if next_submit < len(chunks):
                    submit(next_submit)
                    next_submit += 1
                next_yield += 1
                yield batch
                continue
            waited = time.perf_counter()
            try:
                message = self._result_queue.get(timeout=0.25)
            except queue.Empty:
                self._recover_dead_workers(chunks, outstanding, parked)
                continue
            wait_seconds = time.perf_counter() - waited
            kind = message[0]
            chunk_generation, sequence = message[2]
            if chunk_generation != generation:
                continue            # abandoned iteration's leftovers
            outstanding.pop(sequence, None)
            if len(message) > 4:
                # Spans the worker opened for this chunk, stitched under
                # whatever span is consuming the iterator here.
                merge_worker_spans(message[4], capture_context())
            if kind == "chunk_error":
                raise RuntimeError(
                    f"loader worker {message[1]} failed on batch "
                    f"{sequence}: {message[3]}")
            self._record_batch(wait_seconds)
            parked[sequence] = message[3]

    def _recover_dead_workers(self, chunks: List[List[int]],
                              outstanding: Dict[int, int],
                              parked: Dict[int, list]) -> None:
        """Recompute chunks owned by dead workers in-process; respawn."""
        dead = [worker_id for worker_id, process
                in enumerate(self._processes) if not process.is_alive()]
        if not dead:
            return
        for worker_id in dead:
            self._processes[worker_id].join(timeout=1.0)
            self._task_queues[worker_id] = self._ctx.Queue()
            self._processes[worker_id] = self._start_worker(worker_id)
            if self.registry is not None:
                self.registry.counter(
                    "rtp_train_loader_respawns_total",
                    "Loader workers respawned after dying").inc()
        # Chunks the dead workers will never answer: do them here.  (A
        # racing late answer is harmless — parked.setdefault ignores it,
        # and per-index seeding makes both computations identical.)
        for sequence, worker_id in list(outstanding.items()):
            if worker_id in dead:
                del outstanding[sequence]
                self._record_batch(0.0)
                parked.setdefault(sequence, [
                    self._transform_one(index)
                    for index in chunks[sequence]])

    def _record_batch(self, wait_seconds: float) -> None:
        if self.registry is None:
            return
        self.registry.counter(
            "rtp_train_loader_batches_total",
            "Batches produced by the data pipeline").inc()
        self.registry.summary(
            "rtp_train_loader_wait_seconds",
            "Consumer time blocked waiting for the next batch"
        ).observe(wait_seconds)

    # ------------------------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Stop the pool: sentinel, join, terminate stragglers."""
        if self._closed:
            return
        self._closed = True
        for task_queue in self._task_queues:
            try:
                task_queue.put(("stop",))
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=timeout)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        if self._result_queue is not None:
            self._result_queue.close()
        for task_queue in self._task_queues:
            task_queue.close()

    def __enter__(self) -> "ParallelDataLoader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def map(self, order: Optional[Sequence[int]] = None) -> list:
        """Transform everything and return one flat list (all batches)."""
        with span("parallel.loader.map", items=len(self.items)):
            samples: list = []
            for batch in self.iter_batches(order):
                samples.extend(batch)
            return samples
