"""Gradient-descent optimisers for :class:`~repro.autodiff.tensor.Tensor` parameters.

Implements the optimisers the paper's training recipes need: plain SGD
with momentum, Adam (used for all deep models here) and AdamW.  A small
:class:`StepLR` schedule and global-norm gradient clipping round out the
training substrate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base class holding a parameter list and the ``zero_grad`` loop.

    Every optimiser can round-trip its internal state (step counter,
    momentum / moment buffers) through :meth:`state_dict` /
    :meth:`load_state_dict`, so a resumed or data-parallel run continues
    *identically* to an uninterrupted one.  The state format is a plain
    dict of scalars and numpy arrays — the checkpoint layer
    (:mod:`repro.training.checkpoint`) persists it alongside the model
    weights.
    """

    #: Names of per-parameter numpy buffers (one list per name, aligned
    #: with ``self.parameters``); subclasses override.
    _slot_names: tuple = ()

    def __init__(self, parameters: Iterable[Tensor], lr: float):
        self.parameters: List[Tensor] = [p for p in parameters]
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # State round-trip
    # ------------------------------------------------------------------
    def _scalar_state(self) -> Dict[str, float]:
        """Scalar entries of the state; subclasses extend."""
        return {"lr": self.lr}

    def _load_scalar_state(self, state: Dict[str, float]) -> None:
        self.lr = float(state["lr"])

    def state_dict(self) -> Dict[str, object]:
        """Full optimiser state: scalars plus per-parameter buffers.

        Returns ``{"kind": <class name>, "scalars": {...},
        "slots": {name: [array, ...]}}`` with the arrays copied, so the
        caller can serialise or stash the dict without aliasing live
        buffers.
        """
        return {
            "kind": type(self).__name__,
            "scalars": dict(self._scalar_state()),
            "slots": {
                name: [buffer.copy() for buffer in getattr(self, name)]
                for name in self._slot_names
            },
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore state saved by :meth:`state_dict`.

        Validates the optimiser kind and every buffer shape against the
        current parameter list *before* mutating anything, so a mismatch
        leaves the optimiser untouched.
        """
        kind = state.get("kind")
        if kind != type(self).__name__:
            raise ValueError(
                f"optimizer state is for {kind!r}, not {type(self).__name__!r}")
        slots = state.get("slots", {})
        missing = sorted(set(self._slot_names) - set(slots))
        if missing:
            raise ValueError(f"optimizer state missing buffers: {missing}")
        for name in self._slot_names:
            buffers = slots[name]
            if len(buffers) != len(self.parameters):
                raise ValueError(
                    f"optimizer state has {len(buffers)} {name!r} buffers "
                    f"for {len(self.parameters)} parameters")
            for buffer, parameter in zip(buffers, self.parameters):
                if np.asarray(buffer).shape != parameter.data.shape:
                    raise ValueError(
                        f"optimizer buffer {name} shape "
                        f"{np.asarray(buffer).shape} does not match "
                        f"parameter shape {parameter.data.shape}")
        self._load_scalar_state(state["scalars"])
        for name in self._slot_names:
            setattr(self, name, [np.asarray(buffer, dtype=np.float64).copy()
                                 for buffer in slots[name]])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    _slot_names = ("_velocity",)

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            parameter.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — the optimiser used for every deep model here."""

    _slot_names = ("_m", "_v")

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def _scalar_state(self) -> Dict[str, float]:
        state = super()._scalar_state()
        state["t"] = self._t
        return state

    def _load_scalar_state(self, state: Dict[str, float]) -> None:
        super()._load_scalar_state(state)
        self._t = int(state["t"])

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def step(self) -> None:
        if self.weight_decay:
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.data -= self.lr * self.weight_decay * parameter.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


class RMSprop(Optimizer):
    """RMSprop (Tieleman & Hinton) — adaptive per-parameter step sizes."""

    _slot_names = ("_square_avg",)

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-3,
                 alpha: float = 0.99, eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.alpha = alpha
        self.eps = eps
        self.weight_decay = weight_decay
        self._square_avg = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, square_avg in zip(self.parameters, self._square_avg):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            square_avg *= self.alpha
            square_avg += (1.0 - self.alpha) * grad * grad
            parameter.data -= self.lr * grad / (np.sqrt(square_avg) + self.eps)


class StepLR:
    """Multiply the optimiser learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5):
        self.optimizer = optimizer
        self.step_size = int(step_size)
        self.gamma = float(gamma)
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


class CosineAnnealingLR:
    """Cosine learning-rate annealing from the initial LR to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int,
                 min_lr: float = 0.0):
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self._initial_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> None:
        self._epoch = min(self._epoch + 1, self.total_epochs)
        progress = self._epoch / self.total_epochs
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        self.optimizer.lr = self.min_lr + (self._initial_lr - self.min_lr) * cosine


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging divergence).
    """
    parameters = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in parameters)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for parameter in parameters:
            parameter.grad *= scale
    return total
