"""Pure-numpy reverse-mode autodiff engine.

The deep-learning substrate of the reproduction: a tape-based
:class:`Tensor`, functional operations, optimisers and a
finite-difference gradient checker.
"""

from .tensor import Tensor, no_grad, is_grad_enabled
from .ops import (
    as_tensor,
    concat,
    stack,
    where,
    maximum,
    softmax,
    log_softmax,
    masked_softmax,
    padded_gather,
    cross_entropy,
    mae_loss,
    mse_loss,
    huber_loss,
    dropout,
)
from .optim import (
    SGD, Adam, AdamW, RMSprop, StepLR, CosineAnnealingLR, Optimizer,
    clip_grad_norm,
)
from .extra_ops import (
    clip,
    l2_norm,
    logsumexp,
    min_reduce,
    minimum,
    softplus,
    tensor_pow,
)
from .gradcheck import check_gradients, numerical_gradient

__all__ = [
    "Tensor", "no_grad", "is_grad_enabled",
    "as_tensor", "concat", "stack", "where", "maximum",
    "softmax", "log_softmax", "masked_softmax", "padded_gather",
    "cross_entropy",
    "mae_loss", "mse_loss", "huber_loss", "dropout",
    "SGD", "Adam", "AdamW", "RMSprop", "StepLR", "CosineAnnealingLR",
    "Optimizer", "clip_grad_norm",
    "clip", "l2_norm", "logsumexp", "min_reduce", "minimum", "softplus",
    "tensor_pow",
    "check_gradients", "numerical_gradient",
]
