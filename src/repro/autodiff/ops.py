"""Functional operations composing or extending :class:`~repro.autodiff.tensor.Tensor`.

These are the operations that do not fit naturally as methods: variadic
joins (:func:`concat`, :func:`stack`), masked selection (:func:`where`),
numerically stable softmax family, and the loss functions used by the
models (cross-entropy over route pointers, MAE/MSE over arrival times).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from .tensor import Tensor

ArrayLike = Union[Tensor, np.ndarray, float, int]


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no-op when it already is one)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor.from_op(data, tensors, backward, "concat")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient routing."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        for i, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate(np.take(grad, i, axis=axis))

    return Tensor.from_op(data, tensors, backward, "stack")


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Differentiable ``np.where`` — ``condition`` is a plain boolean array."""
    a_t, b_t = as_tensor(a), as_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    data = np.where(condition, a_t.data, b_t.data)

    def backward(grad: np.ndarray) -> None:
        grad = np.asarray(grad)
        if a_t.requires_grad:
            a_t._accumulate(np.where(condition, grad, 0.0))
        if b_t.requires_grad:
            b_t._accumulate(np.where(condition, 0.0, grad))

    return Tensor.from_op(data, (a_t, b_t), backward, "where")


def maximum(a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise maximum; gradient goes to the larger operand (split on ties)."""
    a_t, b_t = as_tensor(a), as_tensor(b)
    return where(a_t.data >= b_t.data, a_t, b_t)


def softmax(logits: Tensor, axis: int = -1,
            mask: Optional[np.ndarray] = None) -> Tensor:
    """Numerically stable softmax.

    Parameters
    ----------
    logits:
        Raw scores.
    axis:
        Normalisation axis.
    mask:
        Optional boolean array, ``True`` where positions are *valid*.
        Invalid positions get probability exactly zero; gradients do not
        flow through them.  Slices with no valid position produce an
        all-zero output (not NaN), matching :func:`masked_softmax`.
    """
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    if mask is not None:
        mask_arr = np.asarray(mask, dtype=bool)
        exp = exp * Tensor(mask_arr.astype(np.float64))
        # +1 in the denominator of empty slices only: 0/1 = 0 there,
        # and adding 0.0 leaves every non-empty slice bit-identical.
        empty = (~mask_arr).all(axis=axis, keepdims=True)
        return exp / (exp.sum(axis=axis, keepdims=True)
                      + Tensor(empty.astype(np.float64)))
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1,
                mask: Optional[np.ndarray] = None) -> Tensor:
    """Numerically stable log-softmax with optional validity mask.

    Masked (invalid) positions receive a large negative constant before
    normalisation so that they contribute (numerically) nothing to the
    partition function while keeping the computation differentiable.
    """
    if mask is not None:
        penalty = np.where(np.asarray(mask, dtype=bool), 0.0, -1e30)
        logits = logits + Tensor(penalty)
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    log_z = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_z


def masked_softmax(logits: Tensor, mask: np.ndarray, axis: int = -1) -> Tensor:
    """Padding-safe masked softmax.

    Unlike :func:`softmax`, this op tolerates slices whose mask is
    entirely ``False`` (padding rows of a batched graph): such slices
    produce an all-zero output instead of ``nan``.  Masked positions get
    probability exactly zero and receive exactly zero gradient, and the
    shift point is the *masked* maximum so that arbitrary (finite)
    garbage in padding positions can never overflow ``exp``.
    """
    mask_arr = np.broadcast_to(np.asarray(mask, dtype=bool), logits.shape)
    mask_f = mask_arr.astype(np.float64)
    with np.errstate(invalid="ignore"):
        row_max = np.where(mask_arr, logits.data, -np.inf).max(
            axis=axis, keepdims=True)
    row_max = np.where(np.isfinite(row_max), row_max, 0.0)
    shifted = logits - Tensor(row_max)
    # Clamp masked positions to zero *before* exp: their (finite but
    # arbitrary) values must not overflow, and where() routes them zero
    # gradient.
    shifted = where(mask_arr, shifted, Tensor(np.zeros(logits.shape)))
    exp = shifted.exp() * Tensor(mask_f)
    denominator = exp.sum(axis=axis, keepdims=True)
    # Fully-masked slices: denominator is 0; add 1 there so 0/1 = 0.
    empty = (~mask_arr).all(axis=axis, keepdims=True)
    denominator = denominator + Tensor(empty.astype(np.float64))
    return exp / denominator


def padded_gather(values: Tensor, indices: np.ndarray,
                  valid: Optional[np.ndarray] = None) -> Tensor:
    """Batched row gather with a validity mask for padding entries.

    ``values`` is ``(B, N, ...)``; ``indices`` is an integer array
    ``(B, ...)`` of row indices into axis 1.  Returns
    ``values[b, indices[b, ...]]`` per batch element.  Where ``valid``
    (same shape as ``indices``) is ``False`` the index is ignored: the
    output is exactly zero and *no* gradient flows back into ``values``
    — padded gather steps are inert.
    """
    indices = np.asarray(indices, dtype=np.int64)
    batch = np.arange(values.shape[0]).reshape(
        (-1,) + (1,) * (indices.ndim - 1))
    if valid is None:
        return values[batch, indices]
    valid = np.asarray(valid, dtype=bool)
    safe = np.where(valid, indices, 0)
    gathered = values[batch, safe]
    keep = valid.astype(np.float64).reshape(
        valid.shape + (1,) * (gathered.ndim - valid.ndim))
    return gathered * Tensor(keep)


def cross_entropy(logits: Tensor, target: int,
                  mask: Optional[np.ndarray] = None) -> Tensor:
    """Cross-entropy of a single decoding step.

    ``logits`` is a 1-D tensor of scores over candidates, ``target`` the
    index of the true next node, ``mask`` marks feasible candidates.
    """
    log_probs = log_softmax(logits, axis=-1, mask=mask)
    return -log_probs[int(target)]


def mae_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean absolute error against a constant target array (Eq. 39/40)."""
    diff = prediction - Tensor(np.asarray(target, dtype=np.float64))
    return diff.abs().mean()


def mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error against a constant target array."""
    diff = prediction - Tensor(np.asarray(target, dtype=np.float64))
    return (diff * diff).mean()


def huber_loss(prediction: Tensor, target: np.ndarray, delta: float = 1.0) -> Tensor:
    """Huber loss — quadratic near zero, linear in the tails."""
    diff = prediction - Tensor(np.asarray(target, dtype=np.float64))
    abs_diff = diff.abs()
    quadratic = diff * diff * 0.5
    linear = abs_diff * delta - 0.5 * delta * delta
    return where(abs_diff.data <= delta, quadratic, linear).mean()


def dropout(x: Tensor, rate: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or ``rate == 0``."""
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * Tensor(mask)
