"""Finite-difference gradient verification.

Used by the test suite to certify every differentiable operation and
every layer: analytic gradients from the tape are compared against
central finite differences of the forward function.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(fn: Callable[[], Tensor], parameter: Tensor,
                       eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn()`` w.r.t. ``parameter``."""
    grad = np.zeros_like(parameter.data)
    flat = parameter.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn().item()
        flat[i] = original - eps
        down = fn().item()
        flat[i] = original
        grad_flat[i] = (up - down) / (2.0 * eps)
    return grad


def check_gradients(fn: Callable[[], Tensor], parameters: Sequence[Tensor],
                    eps: float = 1e-6, atol: float = 1e-4,
                    rtol: float = 1e-3) -> None:
    """Assert analytic gradients of ``fn`` match finite differences.

    ``fn`` must be a deterministic closure returning a scalar Tensor that
    depends on every tensor in ``parameters``.

    The loss and every analytic gradient must be finite — degenerate
    inputs (fully-masked softmax rows, length-1 sequences, single-node
    graphs) are expected to produce exact zeros, never NaN or inf, and a
    non-finite gradient is reported as such instead of surfacing as a
    cryptic tolerance failure.

    Raises
    ------
    AssertionError
        If any parameter's analytic gradient is missing, non-finite, or
        deviates from finite differences beyond tolerance.
    """
    for parameter in parameters:
        parameter.zero_grad()
    loss = fn()
    if not np.isfinite(loss.data).all():
        raise AssertionError(f"loss is non-finite: {loss.data}")
    loss.backward()
    for index, parameter in enumerate(parameters):
        analytic = parameter.grad
        if analytic is None:
            raise AssertionError(f"parameter {index} received no gradient")
        if not np.isfinite(analytic).all():
            raise AssertionError(
                f"parameter {index} has a non-finite analytic gradient "
                f"(degenerate inputs must produce zeros, not NaN/inf):\n"
                f"{analytic}")
        numeric = numerical_gradient(fn, parameter, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradient mismatch for parameter {index}: "
                f"max abs deviation {worst:.3e}\nanalytic={analytic}\nnumeric={numeric}"
            )
