"""Additional differentiable operations.

Less-core ops kept out of :mod:`tensor`/:mod:`ops` to keep those files
focused: clipping, logsumexp, norms, min, and elementwise tensor-power.
All are used by the analysis/extension code and fully grad-checked in
the test suite.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .tensor import Tensor
from .ops import as_tensor, where


def clip(x: Tensor, low: float, high: float) -> Tensor:
    """Clamp values to ``[low, high]``; gradient is zero outside."""
    if low > high:
        raise ValueError(f"low {low} must not exceed high {high}")
    x = as_tensor(x)
    inside = (x.data >= low) & (x.data <= high)
    data = np.clip(x.data, low, high)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(np.asarray(grad) * inside)

    return Tensor.from_op(data, (x,), backward, "clip")


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable ``log(sum(exp(x)))`` along ``axis``."""
    x = as_tensor(x)
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    result = (x - shift).exp().sum(axis=axis, keepdims=True).log() + shift
    if keepdims:
        return result
    # Drop the reduced axis.
    shape = list(result.shape)
    del shape[axis % x.ndim if x.ndim else 0]
    return result.reshape(*shape) if shape else result.reshape(())


def l2_norm(x: Tensor, eps: float = 1e-12) -> Tensor:
    """Euclidean norm of the flattened tensor (smoothed at zero)."""
    x = as_tensor(x)
    return ((x * x).sum() + eps) ** 0.5


def minimum(a, b) -> Tensor:
    """Elementwise minimum; gradient goes to the smaller operand."""
    a_t, b_t = as_tensor(a), as_tensor(b)
    return where(a_t.data <= b_t.data, a_t, b_t)


def min_reduce(x: Tensor, axis: Optional[int] = None,
               keepdims: bool = False) -> Tensor:
    """Min reduction via the max machinery (gradient splits on ties)."""
    x = as_tensor(x)
    return -((-x).max(axis=axis, keepdims=keepdims))


def tensor_pow(base: Tensor, exponent: Tensor) -> Tensor:
    """Elementwise ``base ** exponent`` with gradients to both operands.

    Requires ``base > 0`` (the general branch is undefined otherwise).
    """
    base_t, exponent_t = as_tensor(base), as_tensor(exponent)
    if np.any(base_t.data <= 0):
        raise ValueError("tensor_pow requires strictly positive base")
    return (base_t.log() * exponent_t).exp()


def softplus(x: Tensor) -> Tensor:
    """``log(1 + exp(x))``, computed stably."""
    x = as_tensor(x)
    # softplus(x) = max(x, 0) + log1p(exp(-|x|)) — both terms stable.
    positive = clip(x, 0.0, np.inf)
    return positive + ((-x.abs()).exp() + 1.0).log()
