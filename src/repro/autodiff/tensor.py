"""Reverse-mode automatic differentiation on numpy arrays.

This module provides the :class:`Tensor` class, the computational
substrate for every neural model in this repository.  A ``Tensor`` wraps
a ``numpy.ndarray`` and records the operations applied to it so that
:meth:`Tensor.backward` can propagate gradients to every tensor with
``requires_grad=True``.

The design follows the classic define-by-run tape:

* every operation returns a new ``Tensor`` holding references to its
  parent tensors and a closure that accumulates gradients into them;
* :meth:`Tensor.backward` topologically sorts the graph and runs the
  closures in reverse order;
* broadcasting is supported everywhere through :func:`_unbroadcast`.

All arithmetic is performed in ``float64`` so that the finite-difference
gradient checks in the test suite are meaningful.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = [True]


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction.

    Used during evaluation and greedy decoding, where gradients are not
    needed and tape bookkeeping would waste time and memory.
    """
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd tape."""
    return _GRAD_ENABLED[-1]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape``.

    Numpy broadcasting may have expanded an operand along leading axes or
    along axes of size one; the corresponding gradient must be summed
    back down to the operand's original shape.
    """
    if grad.shape == shape:
        return grad
    # Sum away extra leading dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


class Tensor:
    """A numpy array with reverse-mode autograd support.

    Parameters
    ----------
    data:
        Anything convertible to a float64 ``numpy.ndarray``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad`
        during :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        self.data = np.asarray(
            data.data if isinstance(data, Tensor) else data, dtype=np.float64
        )
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()
        self._op: str = ""

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def from_op(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str = "",
    ) -> "Tensor":
        """Build the result tensor of an operation.

        The tape edge is only recorded when grad mode is on and at least
        one parent requires a gradient.
        """
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
            out._op = op
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(f"item() requires a size-1 tensor, got shape {self.shape}")
        return float(self.data.reshape(()))

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a view, not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the tape."""
        return Tensor(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_tag})"

    # ------------------------------------------------------------------
    # Gradient accumulation
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to 1 for scalar tensors; required
            for non-scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() on non-scalar tensor requires an explicit grad")
            grad = np.ones_like(self.data)

        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other_t.requires_grad:
                other_t._accumulate(grad)

        return Tensor.from_op(data, (self, other_t), backward, "add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor.from_op(-self.data, (self,), backward, "neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other_t.requires_grad:
                other_t._accumulate(-grad)

        return Tensor.from_op(data, (self, other_t), backward, "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(grad * self.data)

        return Tensor.from_op(data, (self, other_t), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other_t.data)
            if other_t.requires_grad:
                other_t._accumulate(-grad * self.data / (other_t.data ** 2))

        return Tensor.from_op(data, (self, other_t), backward, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor.from_op(data, (self,), backward, "pow")

    # ------------------------------------------------------------------
    # Matrix multiply
    # ------------------------------------------------------------------
    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data
        a, b = self.data, other_t.data

        def backward(grad: np.ndarray) -> None:
            grad = np.asarray(grad)
            if self.requires_grad:
                if a.ndim == 1 and b.ndim == 1:
                    grad_a = grad * b
                elif b.ndim == 1:
                    # (..., d) @ (d,) -> (...,): expand grad over d.
                    grad_a = grad[..., None] * b
                else:
                    # Covers a.ndim == 1 too; _accumulate unbroadcasts.
                    grad_a = grad @ np.swapaxes(b, -1, -2)
                self._accumulate(grad_a)
            if other_t.requires_grad:
                if a.ndim == 1 and b.ndim == 1:
                    grad_b = grad * a
                elif a.ndim == 1:
                    # (d,) @ (..., d, m) -> (..., m).
                    grad_b = a[:, None] * grad[..., None, :]
                elif b.ndim == 1:
                    # (..., d) @ (d,) -> (...): sum over every batch axis.
                    grad_b = (a * grad[..., None]).reshape(-1, a.shape[-1]).sum(axis=0)
                else:
                    grad_b = np.swapaxes(a, -1, -2) @ grad
                other_t._accumulate(grad_b)

        return Tensor.from_op(data, (self, other_t), backward, "matmul")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
            keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape))

        return Tensor.from_op(data, (self,), backward, "sum")

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(mask * g)

        return Tensor.from_op(data, (self,), backward, "max")

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor.from_op(data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor.from_op(data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor.from_op(data, (self,), backward, "abs")

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data ** 2))

        return Tensor.from_op(data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor.from_op(data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor.from_op(data, (self,), backward, "relu")

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = np.where(self.data > 0, 1.0, negative_slope)
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor.from_op(data, (self,), backward, "leaky_relu")

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.asarray(grad).reshape(original))

        return Tensor.from_op(data, (self,), backward, "reshape")

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, *axes: int) -> "Tensor":
        axes_arg = axes if axes else None
        data = self.data.transpose(axes_arg)
        if axes_arg is None:
            inverse = None
        else:
            inverse = np.argsort(axes_arg)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            self._accumulate(g.transpose(inverse) if inverse is not None else g.transpose())

        return Tensor.from_op(data, (self,), backward, "transpose")

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            np.add.at(full, index, np.asarray(grad))
            self._accumulate(full)

        return Tensor.from_op(data, (self,), backward, "getitem")
