"""Registry-driven rollout control for the sharded serving tier.

:class:`ShardDeploymentController` is the sharded sibling of
:class:`~repro.deploy.DeploymentController`: versions come out of the
same integrity-checked :class:`~repro.deploy.ModelRegistry`, rollout
verdicts use the same :class:`~repro.deploy.RolloutPolicy` /
:class:`~repro.deploy.RolloutDecision` vocabulary, and a promote still
persists ACTIVE in the registry — but traffic moves through a
:class:`~repro.serving_shard.ShardRouter`, so every action is a
*broadcast* that each shard applies behind its in-flight work:

* :meth:`swap` — load a version from the registry, broadcast its
  weights to every shard, activate it in the registry once all shards
  acked.  In-flight requests drain on the old version (FIFO queues);
  nothing is dropped.
* :meth:`start_canary` / :meth:`promote` / :meth:`rollback` — the
  router splits traffic by the policy's canary fraction; promote makes
  the candidate the primary lane everywhere *and* the version future
  respawns boot with; rollback drains the candidate lane per shard and
  reverts routing without touching the registry.
"""

from __future__ import annotations

from typing import List, Optional

from ..deploy.controller import RolloutDecision, RolloutPolicy
from ..deploy.registry import ModelRegistry
from .router import ShardRouter


class ShardDeploymentController:
    """Drives hot swaps and canary rollouts across a shard router."""

    def __init__(self, registry: ModelRegistry, router: ShardRouter,
                 policy: Optional[RolloutPolicy] = None):
        self.registry = registry
        self.router = router
        self.policy = policy or RolloutPolicy()
        self.candidate_version: Optional[str] = None
        self.decisions: List[RolloutDecision] = []

    # ------------------------------------------------------------------
    @property
    def active_version(self) -> str:
        """The version every shard's primary lane is serving."""
        return self.router.version

    def swap(self, ref: str) -> str:
        """Hot-swap all shards to ``ref``; activates it in the registry.

        The registry ACTIVE pointer moves only after every live shard
        has acknowledged the new weights, so a crash mid-swap leaves
        the registry pointing at a version the fleet actually serves.
        """
        if self.candidate_version is not None:
            raise RuntimeError(
                "cannot swap the primary while a candidate is in flight")
        model, manifest = self.registry.load(ref)
        if manifest.version == self.router.version:
            return manifest.version
        self.router.swap_to(manifest.version, model)
        self.registry.activate(manifest.version)
        return manifest.version

    # ------------------------------------------------------------------
    # Regime-matched routing (model zoo)
    # ------------------------------------------------------------------
    def install_regime(self, regime: str, ref: str) -> str:
        """Serve ``regime`` traffic from ``ref`` on every shard.

        The lane installs behind in-flight work like a canary; requests
        in other regimes (and this one, whenever its version is already
        the fleet primary) keep serving from the primary lane.
        """
        model, manifest = self.registry.load(ref)
        self.router.install_regime(regime, manifest.version, model)
        return manifest.version

    def uninstall_regime(self, regime: str) -> bool:
        """Drop one regime lane fleet-wide."""
        return self.router.clear_regime(regime)

    def regime_versions(self):
        """Installed regime → version mapping (introspection)."""
        return self.router.regime_versions()

    # ------------------------------------------------------------------
    def start_canary(self, ref: str,
                     fraction: Optional[float] = None) -> str:
        """Install ``ref`` as the canary lane on every shard."""
        if self.candidate_version is not None:
            raise RuntimeError("a canary rollout is already in progress")
        model, manifest = self.registry.load(ref)
        self.router.start_canary(
            manifest.version, model,
            self.policy.canary_fraction if fraction is None else fraction)
        self.candidate_version = manifest.version
        return manifest.version

    def promote(self, reason: str = "manual") -> RolloutDecision:
        """Promote the canary to primary fleet-wide and persist ACTIVE."""
        if self.candidate_version is None:
            raise RuntimeError("no candidate to promote")
        decision = self._decision("promote", reason)
        self.router.stop_canary(promote=True)
        self.registry.activate(self.candidate_version)
        self.candidate_version = None
        return decision

    def rollback(self, reason: str = "manual") -> RolloutDecision:
        """Drain and drop the canary lane; the primary keeps serving."""
        if self.candidate_version is None:
            raise RuntimeError("no candidate to roll back")
        decision = self._decision("rollback", reason)
        self.router.stop_canary(promote=False)
        self.candidate_version = None
        return decision

    def on_drift_alarm(self, alarm) -> Optional[RolloutDecision]:
        """Roll back a canary on a quality-drift alarm (else no-op).

        Same contract as
        :meth:`~repro.deploy.DeploymentController.on_drift_alarm`: a
        drifting quality stream during a canary drops the candidate
        fleet-wide; outside a canary there is nothing to roll back.
        """
        if self.candidate_version is None:
            return None
        return self.rollback(reason=(
            f"drift: {alarm.metric} {alarm.detector} statistic "
            f"{alarm.statistic:.3f} > {alarm.threshold:.3f}"))

    # ------------------------------------------------------------------
    def _decision(self, action: str, reason: str) -> RolloutDecision:
        stats = self.router.shard_stats()
        candidate_requests = sum(entry["requests"] for entry in stats)
        latencies = [entry["p99_ms"] for entry in stats
                     if entry["requests"] > 0]
        p99 = max(latencies) if latencies else 0.0
        decision = RolloutDecision(
            action=action, version=self.candidate_version or "",
            reason=reason, candidate_requests=candidate_requests,
            candidate_degraded_rate=0.0, candidate_latency_ms=p99,
            primary_latency_ms=p99)
        self.decisions.append(decision)
        return decision
