"""Sharded multi-process serving tier.

A request router (:class:`ShardRouter`) fans traffic over N serving
shards — worker processes (or inline runtimes under a virtual clock),
each running the full batched engine with its own micro-batcher,
kernel workspace and graph cache.  Placement is consistent by courier
identity, admission is bounded per shard with load shedding to the
degraded fallback path, dead shards respawn from current weights, and
hot model swap / canary rollouts broadcast serialized state dicts that
drain behind in-flight work.  :class:`ShardDeploymentController` wires
those lifecycle actions to the model registry.
"""

from .deployment import ShardDeploymentController
from .router import (SHARD_LATENCY_BUCKETS, SHARD_LATENCY_EXEMPLARS,
                     ShardConfig, ShardRouter, ShardTicket)
from .runtime import (CRASH_EXIT_CODE, ShardRuntime, SleepLatencyService,
                      build_model, shard_worker_main)

__all__ = [
    "CRASH_EXIT_CODE",
    "SHARD_LATENCY_BUCKETS",
    "SHARD_LATENCY_EXEMPLARS",
    "ShardConfig",
    "ShardDeploymentController",
    "ShardRouter",
    "ShardRuntime",
    "ShardTicket",
    "SleepLatencyService",
    "build_model",
    "shard_worker_main",
]
