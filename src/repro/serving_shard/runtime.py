"""Per-shard serving engine: one batched model stack per shard.

A :class:`ShardRuntime` is everything one serving shard owns — rebuilt
from plain data (model config dict + state-dict arrays) so the same
class backs both deployment modes of the
:class:`~repro.serving_shard.ShardRouter`:

* **process mode** — :func:`shard_worker_main` constructs the runtime
  *inside* the worker process from the spec message, so nothing built
  in the router process (model, caches, buffer pools) is ever shared
  through ``fork``;
* **inline mode** — the router holds N runtimes in-process (the
  deterministic virtual-clock path of the load scenarios); each enters
  its own :func:`~repro.kernels.workspace_scope` around request work
  so the fused kernels draw from per-shard scratch pools even on a
  shared thread.

Per shard, the stack is the full single-process serving story:
:class:`~repro.service.RTPService` (own :class:`~repro.service.GraphCache`)
under a :class:`~repro.service.MicroBatcher` (drained request messages
flush as one padded batched forward), wrapped by
:class:`~repro.deploy.ResilientRTPService` (deadline/breaker/fallback,
fixed ``model_version`` stamp per installed version).  Hot model swap
and canary install/stop arrive as queue messages; FIFO ordering is
what makes a swap *drain* — every request enqueued before the swap
message is answered by the old version, every one after by the new,
and no request is ever dropped.
"""

from __future__ import annotations

import os
import queue
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import M2G4RTP, M2G4RTPConfig
from ..core.fallback import FallbackPredictor
from ..deploy.resilience import ResilienceConfig, ResilientRTPService
from ..kernels import Workspace, workspace_scope
from ..obs import tracing
from ..obs.propagate import worker_span_session
from ..service import MicroBatcher, RTPService

#: Exit code a worker uses for injected crashes (mirrors repro.parallel).
CRASH_EXIT_CODE = 23

#: Seconds a worker waits for a message before emitting a heartbeat.
DEFAULT_HEARTBEAT_S = 0.25


def build_model(model_config: Dict[str, object],
                state: Dict[str, np.ndarray]) -> M2G4RTP:
    """Rebuild an eval-mode model from its config dict + state dict.

    This is the "weights distributed once per version" half of the
    serving tier: the router serialises ``dataclasses.asdict(config)``
    and ``model.state_dict()`` exactly once per version and broadcasts
    them; every shard rebuilds locally.
    """
    model = M2G4RTP(M2G4RTPConfig(**model_config))
    model.load_state_dict(state)
    model.eval()
    return model


class _BatcherFrontend:
    """Service facade routing every call through a :class:`MicroBatcher`.

    ``handle_batch`` submits all members then flushes once, so a
    drained multi-request message batch becomes a single padded
    forward through :meth:`RTPService.handle_batch`.
    """

    def __init__(self, batcher: MicroBatcher):
        self.batcher = batcher

    def handle(self, request):
        ticket = self.batcher.submit(request)
        self.batcher.flush()
        return ticket.result()

    def handle_batch(self, requests: Sequence) -> List:
        tickets = [self.batcher.submit(request) for request in requests]
        self.batcher.flush()
        return [ticket.result() for ticket in tickets]


class SleepLatencyService:
    """Wall-clock modeled-latency shim around an inner service.

    The real tiny model's forward is a few CPU-bound milliseconds, so
    on a small host N worker processes cannot beat one process on
    compute alone.  Real serving cost is dominated by I/O-shaped time
    (feature fetches, map services); this shim models it as a seeded
    lognormal *sleep*, which overlaps across processes — the wall-mode
    soak bench measures the sharded tier's actual concurrency win.
    One cost is charged per call (batched or not), mirroring
    :class:`~repro.load.clock.ModeledLatencyService`; unlike that
    class this one is built *inside* the worker from plain spec data
    (``sleep_latency_ms``), so it crosses the fork as numbers, not
    closures.
    """

    def __init__(self, inner, base_ms: float, seed: int = 0,
                 sigma: float = 0.25, sleeper=time.sleep):
        self.inner = inner
        self.base_ms = float(base_ms)
        self.sigma = float(sigma)
        self.sleeper = sleeper
        self.rng = np.random.default_rng(seed)

    def _charge(self) -> None:
        jitter = float(self.rng.lognormal(mean=0.0, sigma=self.sigma))
        self.sleeper(self.base_ms * jitter / 1000.0)

    def handle(self, request):
        self._charge()
        return self.inner.handle(request)

    def handle_batch(self, requests: Sequence) -> List:
        self._charge()
        return self.inner.handle_batch(list(requests))

    def __getattr__(self, name):
        return getattr(self.inner, name)


class _Lane:
    """One installed model version: service + batcher + resilient wrap."""

    def __init__(self, version: str, model: M2G4RTP, *,
                 cache_size: int, max_batch_size: int,
                 resilience: ResilienceConfig,
                 fallback: FallbackPredictor,
                 clock: Callable[[], float],
                 service_wrapper: Optional[Callable] = None):
        self.version = version
        self.service = RTPService(model, cache_size=cache_size)
        inner = (service_wrapper(self.service) if service_wrapper is not None
                 else self.service)
        self.batcher = MicroBatcher(inner, max_batch_size=max_batch_size,
                                    max_wait_ms=0.0, clock=clock)
        self.resilient = ResilientRTPService(
            _BatcherFrontend(self.batcher), fallback=fallback,
            config=resilience, batcher=self.batcher, version=version,
            clock=clock)


class ShardRuntime:
    """The complete serving stack of one shard.

    Parameters mirror what fits in a picklable spec message: the model
    arrives as ``(model_config, state)`` plain data, never as a live
    object.  ``service_wrapper`` (inline mode only — closures do not
    cross process boundaries) wraps the inner service per lane, which
    is how the load scenarios install fault injection and
    modeled-latency shims per shard.
    """

    def __init__(self, shard_id: int, model_config: Dict[str, object],
                 state: Dict[str, np.ndarray], version: str, *,
                 resilience: Optional[ResilienceConfig] = None,
                 cache_size: int = 32,
                 max_batch_size: int = 8,
                 clock: Callable[[], float] = time.perf_counter,
                 service_wrapper: Optional[Callable] = None,
                 sleep_latency_ms: float = 0.0):
        self.shard_id = int(shard_id)
        self.clock = clock
        self.cache_size = cache_size
        self.max_batch_size = max_batch_size
        self.resilience = resilience or ResilienceConfig()
        if service_wrapper is None and sleep_latency_ms > 0.0:
            # Spec-data path for process workers: the shim is built here,
            # post-fork, from plain numbers (see SleepLatencyService).
            service_wrapper = (
                lambda inner: SleepLatencyService(
                    inner, sleep_latency_ms, seed=1000 + self.shard_id))
        self.service_wrapper = service_wrapper
        self.fallback = FallbackPredictor()
        #: Per-shard scratch pool for the fused kernels; entered via
        #: workspace_scope around every request so two inline shards
        #: never alias buffers.
        self.workspace = Workspace()
        self.alive = True
        self.requests = 0
        self.swaps = 0
        self.primary = self._make_lane(model_config, state, version)
        self.candidate: Optional[_Lane] = None
        #: Regime key -> specialist lane (model-zoo routing).  Requests
        #: tagged ``regime:<key>`` serve from the matching lane with
        #: fallback to primary when the key is uninstalled.
        self.regimes: Dict[str, _Lane] = {}

    # ------------------------------------------------------------------
    def _make_lane(self, model_config: Dict[str, object],
                   state: Dict[str, np.ndarray], version: str) -> _Lane:
        return _Lane(version, build_model(model_config, state),
                     cache_size=self.cache_size,
                     max_batch_size=self.max_batch_size,
                     resilience=self.resilience, fallback=self.fallback,
                     clock=self.clock,
                     service_wrapper=self.service_wrapper)

    def _lane(self, name: str) -> _Lane:
        if name == "candidate" and self.candidate is not None:
            return self.candidate
        if name.startswith("regime:"):
            lane = self.regimes.get(name[len("regime:"):])
            if lane is not None:
                return lane
        return self.primary

    def _resolve_lane(self, requested: str) -> str:
        """Canonical lane name a request message actually serves from."""
        if requested == "candidate" and self.candidate is not None:
            return "candidate"
        if (requested.startswith("regime:")
                and requested[len("regime:"):] in self.regimes):
            return requested
        return "primary"

    # ------------------------------------------------------------------
    # Message protocol (plain picklable tuples, repro.parallel style)
    # ------------------------------------------------------------------
    def process(self, message: Tuple) -> List[Tuple]:
        """Handle one control or request message; returns replies."""
        kind = message[0]
        if kind == "request":
            return self.process_requests([message])
        if kind == "swap":
            _, swap_id, version, model_config, state = message
            self.primary = self._make_lane(model_config, state, version)
            self.swaps += 1
            return [("swapped", self.shard_id, swap_id, version)]
        if kind == "canary_start":
            _, version, model_config, state = message
            self.candidate = self._make_lane(model_config, state, version)
            return [("canary_ready", self.shard_id, version)]
        if kind == "canary_stop":
            _, promote = message
            stopped = self.candidate.version if self.candidate else ""
            if promote and self.candidate is not None:
                self.primary = self.candidate
                self.swaps += 1
            self.candidate = None
            return [("canary_stopped", self.shard_id, stopped,
                     self.primary.version)]
        if kind == "regime_install":
            _, regime, version, model_config, state = message
            self.regimes[regime] = self._make_lane(
                model_config, state, version)
            return [("regime_ready", self.shard_id, regime, version)]
        if kind == "regime_clear":
            _, regime = message
            self.regimes.pop(regime, None)
            return [("regime_cleared", self.shard_id, regime)]
        if kind == "ping":
            return [("pong", self.shard_id, message[1], self.stats())]
        if kind == "crash":  # fault injection for respawn tests
            os._exit(CRASH_EXIT_CODE)
        raise ValueError(f"shard {self.shard_id}: unknown message "
                         f"kind {kind!r}")

    def process_requests(self, messages: Sequence[Tuple]) -> List[Tuple]:
        """Serve a drained batch of request messages.

        Messages are grouped by lane (primary vs canary candidate) and
        each group flushes as one micro-batch; reply order matches
        message order.  Worker-side spans are captured under a session
        keyed by the first message that shipped a trace context and
        returned with that message's reply (one flush serves many
        traces; the router stitches the shipped tree under its own
        dispatch span).
        """
        ctx_index = next((i for i, m in enumerate(messages)
                          if m[4] is not None), 0)
        session = worker_span_session(messages[ctx_index][4])
        with session, workspace_scope(self.workspace):
            with tracing.span("shard.serve", shard=self.shard_id,
                              batch=len(messages)):
                responses: Dict[int, object] = {}
                groups: Dict[str, List[int]] = {}
                for index, message in enumerate(messages):
                    lane = self._resolve_lane(message[3])
                    groups.setdefault(lane, []).append(index)
                for lane_name, indices in groups.items():
                    if not indices:
                        continue
                    answers = self._lane(lane_name).resilient.handle_batch(
                        [messages[i][2] for i in indices])
                    for index, answer in zip(indices, answers):
                        responses[index] = answer
            spans = session.export()
        self.requests += len(messages)
        replies = []
        for index, message in enumerate(messages):
            shipped = spans if index == ctx_index else []
            replies.append(("response", self.shard_id, message[1],
                            responses[index], shipped))
        return replies

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Plain-data snapshot of the shard's internal accounting."""
        cache = self.primary.service.cache
        return {
            "shard": self.shard_id,
            "pid": os.getpid(),
            "version": self.primary.version,
            "candidate": (self.candidate.version
                          if self.candidate is not None else None),
            "regimes": {regime: lane.version
                        for regime, lane in sorted(self.regimes.items())},
            "requests": self.requests,
            "swaps": self.swaps,
            "batches_flushed": self.primary.batcher.batches_flushed,
            "requests_flushed": self.primary.batcher.requests_flushed,
            "cache_hits": cache.hits if cache is not None else 0,
            "cache_misses": cache.misses if cache is not None else 0,
            "resilient": self.primary.resilient.snapshot(),
        }


def shard_worker_main(shard_id: int, spec: Dict[str, object],
                      task_queue, result_queue) -> None:
    """Entry point of one shard worker process.

    Builds the runtime from the plain-data ``spec`` (model config,
    state arrays, knobs) *after* the fork, announces readiness, then
    loops: drain up to ``max_batch_size`` consecutive request messages
    per wake-up (they flush as one padded batch), answer control
    messages in arrival order, emit a heartbeat when idle.  ``stop``
    exits the loop cleanly.
    """
    runtime = ShardRuntime(
        shard_id, spec["model_config"], spec["state"], spec["version"],
        resilience=spec.get("resilience"),
        cache_size=spec.get("cache_size", 32),
        max_batch_size=spec.get("max_batch_size", 8),
        sleep_latency_ms=spec.get("sleep_latency_ms", 0.0))
    heartbeat_s = spec.get("heartbeat_s", DEFAULT_HEARTBEAT_S)
    result_queue.put(("ready", shard_id, os.getpid()))
    held: Optional[Tuple] = None
    while True:
        if held is not None:
            message, held = held, None
        else:
            try:
                message = task_queue.get(timeout=heartbeat_s)
            except queue.Empty:
                result_queue.put(("heartbeat", shard_id, time.monotonic()))
                continue
        if message[0] == "stop":
            result_queue.put(("stopped", shard_id))
            return
        if message[0] == "request":
            batch = [message]
            while len(batch) < runtime.max_batch_size:
                try:
                    nxt = task_queue.get_nowait()
                except queue.Empty:
                    break
                if nxt[0] == "request":
                    batch.append(nxt)
                else:
                    held = nxt  # control messages keep FIFO order
                    break
            replies = runtime.process_requests(batch)
        else:
            replies = runtime.process(message)
        for reply in replies:
            result_queue.put(reply)
