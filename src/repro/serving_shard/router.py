"""Request router over N serving shards with admission control.

The :class:`ShardRouter` is the front door of the multi-process
serving tier:

* **consistent placement** — requests hash by courier id (SHA-256, so
  placement is stable across processes and Python hash seeds) onto a
  fixed shard: a courier's repeat queries always land on the shard
  whose :class:`~repro.service.GraphCache` already holds their graph;
* **admission control** — per-shard depth (in-flight dispatches plus
  an optional external backlog probe, e.g. the open-loop driver's) is
  bounded; beyond ``max_queue_depth`` the request is shed to a
  degraded answer through the shared
  :func:`~repro.deploy.resilience.degraded_response` fallback path —
  load never grows a queue without bound;
* **health + respawn** — worker processes emit heartbeats; a dead
  shard is respawned from the *current* primary weights (and canary,
  if one is active) with its outstanding requests resubmitted,
  mirroring the heartbeat/respawn discipline of
  :mod:`repro.parallel.worker`;
* **hot swap / canary** — new versions are broadcast once as
  serialized state dicts; FIFO per-shard queues make swap and rollback
  *drains* (in-flight work completes on the old version, nothing is
  dropped);
* **observability** — per-shard ``rtp_shard_*`` series (requests,
  shed, queue depth/peak, respawns, swaps, latency histogram with
  exemplars) in the shared registry, and worker-process spans shipped
  back via :mod:`repro.obs.propagate` and stitched under the router's
  dispatch span.

Two deployment modes share all of this logic:

* ``inline=True`` — shards are in-process :class:`ShardRuntime`
  objects called synchronously.  Single-threaded and deterministic;
  the load scenarios use it under a virtual clock, where killing a
  shard, respawning it and every shed decision replay bit-for-bit.
* ``inline=False`` — shards are real worker processes fed through
  queues, with a collector thread resolving responses; ``submit``
  returns a ticket so callers can pipeline requests across shards (the
  soak benchmark's sustained-QPS mode).
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.fallback import FallbackPredictor
from ..deploy.resilience import ResilienceConfig, degraded_response
from ..obs import tracing
from ..obs.metrics import MetricsRegistry
from ..obs.propagate import capture_context, merge_worker_spans
from .runtime import ShardRuntime, shard_worker_main

#: Latency buckets for the per-shard histogram (ms); wide enough that
#: queue collapse still lands in a finite bucket.
SHARD_LATENCY_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                         500.0, 1000.0, 2000.0, 5000.0, float("inf"))

#: Tail exemplars kept per shard latency cell.
SHARD_LATENCY_EXEMPLARS = 8


@dataclasses.dataclass
class ShardConfig:
    """Deployment knobs of the sharded tier."""

    num_shards: int = 2
    max_queue_depth: int = 32      # per-shard admission bound
    max_batch_size: int = 8        # worker-side micro-batch bound
    cache_size: int = 32           # per-shard graph-cache entries
    heartbeat_s: float = 0.25      # worker idle-heartbeat period
    health_timeout_s: float = 10.0  # control-ack / liveness budget
    max_respawns: int = 3          # per-shard respawn budget
    seed: int = 0                  # canary traffic-split RNG seed
    #: When > 0, every worker wraps its service in a
    #: :class:`~repro.serving_shard.runtime.SleepLatencyService` with
    #: this base cost — the spec-data (picklable) way to model
    #: I/O-shaped serving time in process mode, used by the wall-clock
    #: soak bench.
    sleep_latency_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be non-negative")


class ShardTicket:
    """Pending answer for one routed request (process mode)."""

    __slots__ = ("req_id", "shard", "request", "lane", "trace_ctx",
                 "submitted", "done_at", "response", "spans", "event")

    def __init__(self, req_id: int, shard: int, request, lane: str,
                 trace_ctx, submitted: float):
        self.req_id = req_id
        self.shard = shard
        self.request = request
        self.lane = lane
        self.trace_ctx = trace_ctx
        self.submitted = submitted
        self.done_at: Optional[float] = None
        self.response = None
        self.spans: List[Dict] = []
        self.event = threading.Event()

    @property
    def done(self) -> bool:
        return self.event.is_set()


class _ShardHandle:
    """Process-mode bookkeeping for one worker."""

    __slots__ = ("process", "task_queue", "last_seen", "ready")

    def __init__(self):
        self.process = None
        self.task_queue = None
        self.last_seen = 0.0
        self.ready = threading.Event()


class _ShardTally:
    """Router-side per-shard accounting behind the artifact block."""

    __slots__ = ("requests", "shed", "respawns", "swaps", "queue_peak",
                 "latencies_ms")

    def __init__(self):
        self.requests = 0
        self.shed = 0
        self.respawns = 0
        self.swaps = 0
        self.queue_peak = 0
        self.latencies_ms: List[float] = []


class ShardRouter:
    """Fan requests over N shards; see module docstring for semantics.

    Parameters
    ----------
    model:
        The initial serving model; its config and state dict are
        serialized once and broadcast — live model objects never cross
        into workers.
    backlog_probe:
        Optional object with a ``pending`` attribute (the open-loop
        driver's :class:`~repro.load.BacklogProbe`) folded into the
        admission depth, so shedding responds to scheduled-but-unissued
        arrivals as well as dispatched in-flight work.
    service_wrapper:
        Inline mode only: ``service_wrapper(shard_id)`` returns a
        callable wrapping that shard's inner service (fault injection,
        modeled latency).  Not picklable, hence not available for
        worker processes.
    on_respawn / on_shed:
        Optional callbacks ``(shard_id) -> None`` fired when a dead
        shard is respawned / a request is shed; the load scenarios
        record pinned events through these.
    """

    def __init__(self, model, *, version: str = "v001",
                 config: Optional[ShardConfig] = None,
                 resilience: Optional[ResilienceConfig] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 inline: bool = False,
                 clock: Callable[[], float] = time.perf_counter,
                 service_wrapper: Optional[Callable] = None,
                 backlog_probe=None,
                 on_respawn: Optional[Callable[[int], None]] = None,
                 on_shed: Optional[Callable[[int], None]] = None,
                 regime_of: Optional[Callable] = None):
        self.config = config or ShardConfig()
        self.resilience = resilience or ResilienceConfig()
        self.inline = inline
        self.clock = clock
        self.backlog_probe = backlog_probe
        self.on_respawn = on_respawn
        self.on_shed = on_shed
        self.fallback = FallbackPredictor()
        self.version = version
        self.model_config = dataclasses.asdict(model.config)
        self.state = model.state_dict()
        self._candidate: Optional[Dict[str, object]] = None  # canary spec
        self._canary_fraction = 0.0
        #: Regime key -> serialized model spec (model-zoo routing);
        #: replayed onto respawned shards like the canary spec.
        self._regimes: Dict[str, Dict[str, object]] = {}
        if regime_of is None:
            from ..online.zoo import regime_of_request as regime_of
        self.regime_of = regime_of
        self._feedback = None
        self._rng = np.random.default_rng(self.config.seed)
        self._req_counter = 0
        self._lock = threading.Lock()
        self._tallies = [_ShardTally()
                         for _ in range(self.config.num_shards)]
        self._in_flight = [0] * self.config.num_shards
        self._init_metrics(metrics)

        if inline:
            if service_wrapper is not None:
                self._wrappers = [service_wrapper(i)
                                  for i in range(self.config.num_shards)]
            else:
                self._wrappers = [None] * self.config.num_shards
            self.runtimes = [self._make_runtime(i)
                             for i in range(self.config.num_shards)]
        else:
            import multiprocessing as mp
            self._mp = mp.get_context("fork")
            self._result_queue = self._mp.Queue()
            self._handles = [_ShardHandle()
                             for _ in range(self.config.num_shards)]
            self._tickets: Dict[int, ShardTicket] = {}
            self._control_events: Dict[tuple, threading.Event] = {}
            self._pong_payloads: Dict[int, Dict] = {}
            self._stopping = False
            for shard in range(self.config.num_shards):
                self._start_worker(shard)
            self._collector = threading.Thread(
                target=self._collect_loop, name="shard-router-collector",
                daemon=True)
            self._collector.start()
            for shard, handle in enumerate(self._handles):
                if not handle.ready.wait(self.config.health_timeout_s):
                    raise RuntimeError(
                        f"shard {shard} failed to become ready")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _init_metrics(self, metrics: Optional[MetricsRegistry]) -> None:
        self.metrics = metrics
        if metrics is None:
            return
        self._m_requests = metrics.counter(
            "rtp_shard_requests_total", "Requests routed per shard",
            labels=("shard",))
        self._m_shed = metrics.counter(
            "rtp_shard_shed_total", "Requests shed at shard admission",
            labels=("shard",))
        self._m_respawns = metrics.counter(
            "rtp_shard_respawns_total", "Dead-shard respawns",
            labels=("shard",))
        self._m_swaps = metrics.counter(
            "rtp_shard_swaps_total", "Model swaps applied per shard",
            labels=("shard",))
        self._m_depth = metrics.gauge(
            "rtp_shard_queue_depth", "Admission depth at last placement",
            labels=("shard",))
        self._m_peak = metrics.gauge(
            "rtp_shard_queue_peak", "Peak admission depth seen",
            labels=("shard",))
        self._m_latency = metrics.histogram(
            "rtp_shard_latency_ms",
            "Dispatch-to-answer latency per shard",
            labels=("shard",), buckets=SHARD_LATENCY_BUCKETS,
            exemplars=SHARD_LATENCY_EXEMPLARS)

    def _make_runtime(self, shard: int) -> ShardRuntime:
        runtime = ShardRuntime(
            shard, self.model_config, self.state, self.version,
            resilience=self.resilience,
            cache_size=self.config.cache_size,
            max_batch_size=self.config.max_batch_size,
            clock=self.clock, service_wrapper=self._wrappers[shard],
            sleep_latency_ms=self.config.sleep_latency_ms)
        if self._candidate is not None:
            runtime.process(("canary_start", self._candidate["version"],
                             self._candidate["model_config"],
                             self._candidate["state"]))
        for regime, spec in self._regimes.items():
            runtime.process(("regime_install", regime, spec["version"],
                             spec["model_config"], spec["state"]))
        return runtime

    def _spec(self) -> Dict[str, object]:
        return {
            "model_config": self.model_config, "state": self.state,
            "version": self.version, "resilience": self.resilience,
            "cache_size": self.config.cache_size,
            "max_batch_size": self.config.max_batch_size,
            "heartbeat_s": self.config.heartbeat_s,
            "sleep_latency_ms": self.config.sleep_latency_ms,
        }

    def _start_worker(self, shard: int) -> None:
        handle = self._handles[shard]
        handle.task_queue = self._mp.Queue()
        handle.ready = threading.Event()
        handle.process = self._mp.Process(
            target=shard_worker_main,
            args=(shard, self._spec(), handle.task_queue,
                  self._result_queue),
            name=f"rtp-shard-{shard}", daemon=True)
        handle.process.start()
        handle.last_seen = time.monotonic()
        if self._candidate is not None:
            handle.task_queue.put(
                ("canary_start", self._candidate["version"],
                 self._candidate["model_config"], self._candidate["state"]))
        for regime, spec in self._regimes.items():
            handle.task_queue.put(
                ("regime_install", regime, spec["version"],
                 spec["model_config"], spec["state"]))

    # ------------------------------------------------------------------
    # Placement and admission
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.config.num_shards

    def place(self, request) -> int:
        """Stable request→shard placement by courier identity."""
        courier_id = int(request.courier.courier_id)
        digest = hashlib.sha256(
            courier_id.to_bytes(8, "little", signed=True)).digest()
        return int.from_bytes(digest[:8], "big") % self.num_shards

    def _depth(self, shard: int) -> int:
        depth = self._in_flight[shard]
        if self.backlog_probe is not None:
            depth += int(self.backlog_probe.pending)
        return depth

    def _pick_lane(self, request) -> str:
        """Canary split first (a live experiment owns its traffic
        share), then regime-matched routing, then the primary."""
        if (self._candidate is not None
                and float(self._rng.random()) < self._canary_fraction):
            return "candidate"
        if self._regimes:
            regime = self.regime_of(request)
            spec = self._regimes.get(regime)
            if spec is not None and spec["version"] != self.version:
                return f"regime:{regime}"
        return "primary"

    def _note_depth(self, shard: int, depth: int) -> None:
        tally = self._tallies[shard]
        tally.queue_peak = max(tally.queue_peak, depth)
        if self.metrics is not None:
            self._m_depth.labels(shard=str(shard)).set(depth)
            self._m_peak.labels(shard=str(shard)).set(tally.queue_peak)

    def _shed(self, shard: int, request):
        with self._lock:
            self._tallies[shard].shed += 1
        if self.metrics is not None:
            self._m_shed.labels(shard=str(shard)).inc()
        if self.on_shed is not None:
            self.on_shed(shard)
        return degraded_response(self.fallback, request, "shed",
                                 version=self.version)

    def _record_answer(self, shard: int, latency_ms: float,
                       trace_id: Optional[str] = None) -> None:
        with self._lock:
            tally = self._tallies[shard]
            tally.requests += 1
            tally.latencies_ms.append(latency_ms)
        if self.metrics is not None:
            self._m_requests.labels(shard=str(shard)).inc()
            self._m_latency.labels(shard=str(shard)).observe(
                latency_ms, trace_id=trace_id)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def handle(self, request):
        """Answer one request synchronously (sheds instead of queueing)."""
        shard = self.place(request)
        with tracing.span("shard.route", shard=shard) as route_span:
            depth = self._depth(shard)
            self._note_depth(shard, depth)
            if depth >= self.config.max_queue_depth:
                return self._shed(shard, request)
            lane = self._pick_lane(request)
            if self.inline:
                return self._dispatch_inline(shard, request, lane,
                                             route_span)
            ticket = self._submit(shard, request, lane)
            return self._wait(ticket)

    def attach_feedback(self, sink) -> None:
        """Register a completed-route sink (e.g. ``OnlineLoop``).

        Same contract as
        :meth:`~repro.deploy.ResilientRTPService.attach_feedback`:
        ``sink.offer(...)`` must be bounded and non-blocking.
        """
        self._feedback = sink

    def complete_route(self, request, response, actual_route,
                       actual_arrival_minutes) -> bool:
        """Report a route's late ground truth to the feedback sink."""
        if self._feedback is None:
            return False
        return bool(self._feedback.offer(
            request, response, actual_route, actual_arrival_minutes))

    def submit(self, request) -> ShardTicket:
        """Pipelined submission (process mode): returns a ticket.

        Shed and degraded-by-death answers come back as already-done
        tickets, so callers treat every submission uniformly.
        """
        if self.inline:
            raise RuntimeError("submit() requires process mode; "
                               "inline routers are synchronous")
        shard = self.place(request)
        depth = self._depth(shard)
        self._note_depth(shard, depth)
        if depth >= self.config.max_queue_depth:
            response = self._shed(shard, request)
            ticket = ShardTicket(-1, shard, request, "primary", None,
                                 self.clock())
            ticket.response = response
            ticket.done_at = self.clock()
            ticket.event.set()
            return ticket
        return self._submit(shard, request, self._pick_lane(request))

    # -- inline ---------------------------------------------------------
    def _dispatch_inline(self, shard: int, request, lane: str, route_span):
        runtime = self.runtimes[shard]
        if not runtime.alive:
            self._respawn_inline(shard)
            runtime = self.runtimes[shard]
        self._in_flight[shard] += 1
        started = self.clock()
        try:
            ctx = capture_context()
            reply = runtime.process(
                ("request", self._next_req_id(), request, lane, ctx))[0]
        finally:
            self._in_flight[shard] -= 1
        response, spans = reply[3], reply[4]
        merge_worker_spans(spans, ctx)
        self._record_answer(shard, (self.clock() - started) * 1000.0,
                            trace_id=route_span.trace_id)
        return response

    def _respawn_inline(self, shard: int) -> None:
        self._bump_respawn(shard)
        self.runtimes[shard] = self._make_runtime(shard)

    def _bump_respawn(self, shard: int) -> None:
        tally = self._tallies[shard]
        if tally.respawns >= self.config.max_respawns:
            raise RuntimeError(
                f"shard {shard} exceeded its respawn budget "
                f"({self.config.max_respawns})")
        tally.respawns += 1
        if self.metrics is not None:
            self._m_respawns.labels(shard=str(shard)).inc()
        if self.on_respawn is not None:
            self.on_respawn(shard)

    def _next_req_id(self) -> int:
        with self._lock:
            self._req_counter += 1
            return self._req_counter

    # -- process mode ---------------------------------------------------
    def _submit(self, shard: int, request, lane: str) -> ShardTicket:
        handle = self._handles[shard]
        if not handle.process.is_alive():
            self._respawn_process(shard)
        ticket = ShardTicket(self._next_req_id(), shard, request, lane,
                             capture_context(), self.clock())
        with self._lock:
            self._tickets[ticket.req_id] = ticket
            self._in_flight[shard] += 1
        handle.task_queue.put(("request", ticket.req_id, request, lane,
                               ticket.trace_ctx))
        return ticket

    def _wait(self, ticket: ShardTicket):
        """Block until a ticket resolves; respawn its shard if it dies."""
        deadline = time.monotonic() + self.config.health_timeout_s
        while not ticket.event.wait(timeout=0.05):
            handle = self._handles[ticket.shard]
            if not handle.process.is_alive():
                self._respawn_process(ticket.shard)
            if time.monotonic() > deadline:
                with self._lock:
                    self._tickets.pop(ticket.req_id, None)
                    self._in_flight[ticket.shard] = max(
                        0, self._in_flight[ticket.shard] - 1)
                return degraded_response(
                    self.fallback, ticket.request, "error",
                    version=self.version)
        merge_worker_spans(ticket.spans, ticket.trace_ctx)
        return ticket.response

    def wait_all(self, tickets: List[ShardTicket]) -> List:
        """Resolve a batch of tickets (pipelined callers)."""
        return [self._wait(ticket) for ticket in tickets]

    def _respawn_process(self, shard: int) -> None:
        with self._lock:
            handle = self._handles[shard]
            if handle.process.is_alive():   # another thread got here first
                return
            self._bump_respawn(shard)
            outstanding = [t for t in self._tickets.values()
                           if t.shard == shard and not t.done]
            self._in_flight[shard] = len(outstanding)
        handle.process.join(timeout=1.0)
        self._start_worker(shard)
        if not handle.ready.wait(self.config.health_timeout_s):
            raise RuntimeError(f"respawned shard {shard} never became ready")
        for ticket in outstanding:   # resubmit, nothing is dropped
            handle.task_queue.put(("request", ticket.req_id, ticket.request,
                                   ticket.lane, ticket.trace_ctx))

    def _collect_loop(self) -> None:
        import queue as queue_mod
        while not self._stopping:
            try:
                message = self._result_queue.get(timeout=0.1)
            except queue_mod.Empty:
                continue
            kind = message[0]
            if kind == "response":
                _, shard, req_id, response, spans = message
                with self._lock:
                    ticket = self._tickets.pop(req_id, None)
                    if ticket is not None:
                        self._in_flight[shard] = max(
                            0, self._in_flight[shard] - 1)
                if ticket is None:
                    continue   # late duplicate after a respawn resubmit
                ticket.response = response
                ticket.spans = spans
                ticket.done_at = self.clock()
                latency_ms = (ticket.done_at - ticket.submitted) * 1000.0
                self._record_answer(shard, latency_ms)
                ticket.event.set()
                self._handles[shard].last_seen = time.monotonic()
            elif kind == "ready":
                _, shard, _pid = message
                self._handles[shard].last_seen = time.monotonic()
                self._handles[shard].ready.set()
            elif kind == "heartbeat":
                self._handles[message[1]].last_seen = time.monotonic()
            elif kind == "pong":
                _, shard, _ping_id, payload = message
                self._pong_payloads[shard] = payload
                event = self._control_events.get(("pong", shard))
                if event is not None:
                    event.set()
            elif kind in ("swapped", "canary_ready", "canary_stopped",
                          "regime_ready", "regime_cleared", "stopped"):
                shard = message[1]
                self._handles[shard].last_seen = time.monotonic()
                event = self._control_events.get((kind, shard))
                if event is not None:
                    event.set()

    def _broadcast(self, message: tuple, ack_kind: str) -> None:
        events = {}
        for shard, handle in enumerate(self._handles):
            if not handle.process.is_alive():
                self._respawn_process(shard)  # fresh spec already applied
                continue
            event = threading.Event()
            self._control_events[(ack_kind, shard)] = event
            events[shard] = event
            handle.task_queue.put(message)
        for shard, event in events.items():
            if not event.wait(self.config.health_timeout_s):
                if not self._handles[shard].process.is_alive():
                    self._respawn_process(shard)
                else:
                    raise RuntimeError(
                        f"shard {shard} did not ack {ack_kind} in time")
            self._control_events.pop((ack_kind, shard), None)

    # ------------------------------------------------------------------
    # Lifecycle: swap, canary, kill, shutdown
    # ------------------------------------------------------------------
    def swap_to(self, version: str, model) -> None:
        """Hot-swap every shard's primary to ``model`` (drains FIFO)."""
        self.model_config = dataclasses.asdict(model.config)
        self.state = model.state_dict()
        self.version = version
        swap_id = self._next_req_id()
        if self.inline:
            for runtime in self.runtimes:
                if runtime.alive:
                    runtime.process(("swap", swap_id, version,
                                     self.model_config, self.state))
        else:
            self._broadcast(("swap", swap_id, version, self.model_config,
                             self.state), "swapped")
        self._count_swaps()

    def _count_swaps(self) -> None:
        for shard in range(self.num_shards):
            self._tallies[shard].swaps += 1
            if self.metrics is not None:
                self._m_swaps.labels(shard=str(shard)).inc()

    def start_canary(self, version: str, model, fraction: float) -> None:
        """Install ``model`` as the canary lane on every shard."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self._candidate = {
            "version": version,
            "model_config": dataclasses.asdict(model.config),
            "state": model.state_dict(),
        }
        message = ("canary_start", version,
                   self._candidate["model_config"],
                   self._candidate["state"])
        if self.inline:
            for runtime in self.runtimes:
                if runtime.alive:
                    runtime.process(message)
        else:
            self._broadcast(message, "canary_ready")
        self._canary_fraction = fraction   # route only after all acks

    def stop_canary(self, promote: bool = False) -> None:
        """End the canary: drop the candidate, or promote it in place.

        The stop message queues behind any in-flight requests, so each
        shard drains its canary work before switching — a rollback
        never drops an answered-by-candidate request on the floor.
        """
        if self._candidate is None:
            raise RuntimeError("no canary is active")
        self._canary_fraction = 0.0   # stop routing before draining
        message = ("canary_stop", promote)
        if self.inline:
            for runtime in self.runtimes:
                if runtime.alive:
                    runtime.process(message)
        else:
            self._broadcast(message, "canary_stopped")
        if promote:
            self.version = self._candidate["version"]
            self.model_config = self._candidate["model_config"]
            self.state = self._candidate["state"]
            self._count_swaps()
        self._candidate = None

    @property
    def canary_active(self) -> bool:
        return self._candidate is not None

    # ------------------------------------------------------------------
    # Regime-matched routing (model zoo)
    # ------------------------------------------------------------------
    def install_regime(self, regime: str, version: str, model) -> None:
        """Install ``model`` as the dedicated lane for one regime.

        Requests whose :attr:`regime_of` key matches serve from this
        lane on every shard; everything else (and the regime itself, if
        its version later becomes the primary) falls back to the
        primary.  Respawned shards re-install the lane from the spec,
        exactly like the canary."""
        spec = {
            "version": version,
            "model_config": dataclasses.asdict(model.config),
            "state": model.state_dict(),
        }
        message = ("regime_install", regime, version,
                   spec["model_config"], spec["state"])
        if self.inline:
            for runtime in self.runtimes:
                if runtime.alive:
                    runtime.process(message)
        else:
            self._broadcast(message, "regime_ready")
        self._regimes[regime] = spec   # route only after all acks

    def clear_regime(self, regime: str) -> bool:
        """Drop one regime lane everywhere; ``False`` if not installed."""
        if regime not in self._regimes:
            return False
        self._regimes.pop(regime, None)  # stop routing before draining
        message = ("regime_clear", regime)
        if self.inline:
            for runtime in self.runtimes:
                if runtime.alive:
                    runtime.process(message)
        else:
            self._broadcast(message, "regime_cleared")
        return True

    def regime_versions(self) -> Dict[str, str]:
        """Installed regime → version mapping (introspection)."""
        return {regime: str(spec["version"])
                for regime, spec in self._regimes.items()}

    def kill_shard(self, shard: int) -> None:
        """Kill one shard (tests / kill scenarios); respawn is lazy."""
        if self.inline:
            self.runtimes[shard].alive = False
        else:
            self._handles[shard].process.terminate()
            self._handles[shard].process.join(timeout=2.0)

    def alive_shards(self) -> List[int]:
        if self.inline:
            return [i for i, r in enumerate(self.runtimes) if r.alive]
        return [i for i, h in enumerate(self._handles)
                if h.process.is_alive()]

    def heartbeat_ages(self) -> List[float]:
        """Seconds since each shard was last heard from (process mode)."""
        if self.inline:
            return [0.0] * self.num_shards
        now = time.monotonic()
        return [now - h.last_seen for h in self._handles]

    def shutdown(self) -> None:
        if self.inline:
            return
        self._stopping = True
        for handle in self._handles:
            if handle.process.is_alive():
                handle.task_queue.put(("stop",))
        for handle in self._handles:
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
        self._collector.join(timeout=2.0)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def breakers(self) -> List[object]:
        """Inline lanes' circuit breakers (for scenario breaker watch)."""
        if not self.inline:
            return []
        found = []
        for runtime in self.runtimes:
            found.append(runtime.primary.resilient.breaker)
            if runtime.candidate is not None:
                found.append(runtime.candidate.resilient.breaker)
            for lane in runtime.regimes.values():
                found.append(lane.resilient.breaker)
        return found

    def shard_stats(self) -> List[Dict[str, object]]:
        """Router-side per-shard accounting (the artifact block)."""
        stats = []
        with self._lock:
            for shard, tally in enumerate(self._tallies):
                latencies = np.asarray(tally.latencies_ms, dtype=float)
                stats.append({
                    "shard": shard,
                    "requests": tally.requests,
                    "shed": tally.shed,
                    "respawns": tally.respawns,
                    "swaps": tally.swaps,
                    "queue_peak": tally.queue_peak,
                    "p99_ms": (float(np.percentile(latencies, 99))
                               if latencies.size else 0.0),
                })
        return stats

    def worker_stats(self) -> List[Dict[str, object]]:
        """Worker-side stats snapshots (ping/pong in process mode)."""
        if self.inline:
            return [runtime.stats() for runtime in self.runtimes
                    if runtime.alive]
        ping_id = self._next_req_id()
        events = {}
        for shard, handle in enumerate(self._handles):
            if not handle.process.is_alive():
                continue
            event = threading.Event()
            self._control_events[("pong", shard)] = event
            events[shard] = event
            handle.task_queue.put(("ping", ping_id))
        payloads = []
        for shard, event in events.items():
            if event.wait(self.config.health_timeout_s):
                payloads.append(self._pong_payloads[shard])
            self._control_events.pop(("pong", shard), None)
        return payloads
