"""The orchestrator that closes the data loop.

``serve → quality → drift → retrain → registry → canary``:

1. the serving path feeds completed routes into the
   :class:`~repro.online.buffer.ExperienceBuffer` (:meth:`OnlineLoop.offer`);
2. the :class:`~repro.obs.quality.QualityMonitor`'s drift alarms land in
   the :class:`~repro.online.policy.RetrainPolicy`
   (:meth:`OnlineLoop.attach`);
3. :meth:`OnlineLoop.tick` — called between requests or on a timer —
   drains the buffer and asks the policy whether to retrain;
4. a triggered retrain shadow-trains a student from the **currently
   active** parent via :class:`~repro.online.trainer.OnlineTrainer`,
   judges it with the
   :class:`~repro.online.policy.AntiRegressionGate` on a held-out
   slice, and registers it in the
   :class:`~repro.deploy.ModelRegistry` with lineage metadata (parent
   version, window span, trigger) whether or not it passed;
5. a gate-passing candidate is handed to the deployment controller
   (:class:`~repro.deploy.DeploymentController` or
   :class:`~repro.serving_shard.ShardDeploymentController`) as a
   canary; the controller's own verdict — including the quality-gauge
   comparison added for this loop — auto-promotes or auto-rolls-back.

Everything is deterministic under an injected clock: events carry
counts and versions, never wall timestamps.
"""

from __future__ import annotations

import dataclasses
import json
import pickle
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..obs.metrics import MetricsRegistry
from ..obs.tracing import span
from .buffer import Experience, ExperienceBuffer
from .policy import AntiRegressionGate, RetrainPolicy, RetrainTrigger
from .trainer import OnlineTrainer
from .zoo import ModelZoo, majority_regime

STATE_FILE = "loop_state.json"
BUFFER_FILE = "buffer.pkl"
HOLDOUT_FILE = "holdout.pkl"


@dataclasses.dataclass
class OnlineLoopConfig:
    """Orchestration knobs of :class:`OnlineLoop`."""

    train_window: int = 32          # experiences per fine-tune
    holdout_every: int = 4          # every k-th window sample is held out
    frozen_holdout_size: int = 8    # first-ingested clean slice kept aside
    canary_fraction: Optional[float] = None  # None -> controller default
    #: Trailing window-slice length voted over to detect the *current*
    #: regime for zoo re-activation; 0 disables regime switching.
    regime_window: int = 12
    #: Persist loop state (and the buffer/holdout snapshots) on every
    #: emitted event, so a kill at any event boundary restarts from
    #: :meth:`OnlineLoop.restore` without losing the in-flight retrain.
    durable: bool = False

    def __post_init__(self) -> None:
        if self.train_window < 2:
            raise ValueError("train_window must be >= 2")
        if self.holdout_every < 2:
            raise ValueError("holdout_every must be >= 2")
        if self.regime_window < 0:
            raise ValueError("regime_window must be non-negative")


class OnlineLoop:
    """Wires buffer, policy, trainer, gate, registry and controller."""

    def __init__(self, registry, controller, buffer: ExperienceBuffer,
                 trainer: OnlineTrainer, policy: RetrainPolicy,
                 gate: Optional[AntiRegressionGate] = None,
                 config: Optional[OnlineLoopConfig] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 clock: Optional[Callable[[], float]] = None,
                 on_event: Optional[Callable[[str, str], None]] = None,
                 zoo: Optional[ModelZoo] = None):
        self.registry = registry
        self.controller = controller
        self.buffer = buffer
        self.trainer = trainer
        self.policy = policy
        self.gate = gate or AntiRegressionGate()
        self.config = config or OnlineLoopConfig()
        self.metrics = metrics
        self.clock = clock
        self.on_event = on_event
        self.zoo = zoo if zoo is not None else ModelZoo(registry)
        if clock is not None and getattr(policy, "clock", None) is None:
            # Satellite of the same loop: the policy's cooldown must
            # read the scenario clock, not the wall.
            policy.clock = clock
        self.retrains = 0
        self.reactivations = 0
        self.candidates: List[Dict[str, object]] = []
        self.frozen_holdout: List[Experience] = []
        self._last_trigger: Optional[RetrainTrigger] = None
        self._baseline_regime_tagged = False
        self._zoo_scanned = False
        if metrics is not None:
            self._m_retrains = metrics.counter(
                "rtp_online_retrains_total",
                "Fine-tune jobs started by the online loop",
                labels=("trigger",))
            self._m_candidates = metrics.counter(
                "rtp_online_candidates_total",
                "Fine-tuned candidates by gate/rollout outcome",
                labels=("outcome",))
            self._m_gate_ratio = metrics.gauge(
                "rtp_online_gate_mae_ratio",
                "student/parent held-out ETA MAE of the latest candidate")
            self._m_clean_ratio = metrics.gauge(
                "rtp_online_gate_clean_mae_ratio",
                "student/parent frozen clean-holdout ETA MAE of the "
                "latest candidate")
            self._m_reactivations = metrics.counter(
                "rtp_online_zoo_reactivations_total",
                "Regime returns served from the model zoo (no retrain)",
                labels=("regime",))

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return float(self.clock()) if self.clock is not None else 0.0

    def _event(self, event: str, detail: str) -> None:
        # Persist-then-notify: when the loop is durable, a kill at any
        # event boundary finds state on disk that already includes the
        # work that produced the event.
        if self.config.durable:
            self._persist_state()
        if self.on_event is not None:
            self.on_event(event, detail)

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------
    def attach(self, monitor) -> None:
        """Subscribe to a :class:`QualityMonitor`'s drift alarms.

        A durable loop persists its state right after noting the alarm,
        so a crash at the alarm boundary restarts with the pending
        quorum intact (the monitor itself restarts cold and may never
        re-alarm on an already-shifted stream).
        """
        def _note(alarm) -> None:
            self.policy.note_alarm(alarm)
            if self.config.durable:
                self._persist_state()

        monitor.on_alarm(_note)

    def offer(self, request, response, actual_route,
              actual_arrival_minutes) -> bool:
        """Feed one completed route from the serving path.

        Degraded responses are skipped — the fallback's answer says
        nothing about the model — and the bounded buffer may drop the
        route under backpressure (counted, never blocking serving).
        """
        if getattr(response, "degraded", False):
            return False
        labels = {
            "weather": str(request.weather),
            "courier": str(request.courier.courier_id),
            "model_version": str(
                getattr(response, "model_version", "") or ""),
        }
        return self.buffer.offer(request, actual_route,
                                 actual_arrival_minutes, labels=labels)

    # ------------------------------------------------------------------
    # The loop body
    # ------------------------------------------------------------------
    def tick(self) -> Optional[Dict[str, object]]:
        """Drain feedback, maybe swap or retrain; returns the record."""
        drained = self.buffer.drain()
        if self.config.frozen_holdout_size > 0:
            for experience in drained:
                if len(self.frozen_holdout) \
                        >= self.config.frozen_holdout_size:
                    break
                self.frozen_holdout.append(experience)
            if (not self._baseline_regime_tagged
                    and len(self.frozen_holdout)
                    >= self.config.frozen_holdout_size):
                self._tag_baseline_regime()
        if self._maybe_reactivate() is not None:
            return None
        trigger = self.policy.should_retrain(
            self._now(), window_size=len(self.buffer),
            total_ingested=self.buffer.ingested)
        if trigger is None:
            return None
        return self._retrain(trigger)

    # ------------------------------------------------------------------
    # Regime zoo
    # ------------------------------------------------------------------
    def _tag_baseline_regime(self) -> None:
        """Stamp the serving parent with the clean slice's regime, so a
        later regime *return* can re-activate it from the zoo."""
        self._baseline_regime_tagged = True
        regime = majority_regime(self.frozen_holdout)
        if regime is None or not hasattr(self.registry, "tag_regime"):
            return
        active = self.controller.active_version
        try:
            if not (self.registry.manifest(active).regime or ""):
                self.registry.tag_regime(active, regime)
        except Exception:
            return
        self.zoo.refresh()
        self._zoo_scanned = True

    def _candidate_in_flight(self) -> bool:
        return (getattr(self.controller, "candidate", None) is not None
                or getattr(self.controller, "candidate_version", None)
                is not None)

    def _maybe_reactivate(self) -> Optional[str]:
        """Serve a *returning* regime from the zoo instead of retraining.

        Votes over the trailing ``regime_window`` slice of the live
        window; when a strict majority disagrees with the active
        version's regime tag and the zoo holds a gate-approved version
        for it, the controller hot-swaps to that version — no
        fine-tune, no forgetting, and the drift alarms the regime
        change raised are cleared as served.
        """
        cfg = self.config
        if cfg.regime_window <= 0:
            return None
        if not self._zoo_scanned:
            self.zoo.refresh()
            self._zoo_scanned = True
        if len(self.zoo) == 0:
            return None
        if not hasattr(self.controller, "swap"):
            return None
        if self._candidate_in_flight():
            return None
        window = self.buffer.window()
        if len(window) < cfg.regime_window:
            return None
        current = majority_regime(window[-cfg.regime_window:])
        if current is None:
            return None
        active = self.controller.active_version
        try:
            active_regime = self.registry.manifest(active).regime or ""
        except Exception:
            return None
        if not active_regime or current == active_regime:
            return None
        version = self.zoo.version_for(current)
        if version is None or version == active:
            return None
        self.controller.swap(version)
        self.reactivations += 1
        self.policy.note_regime_swap()
        if self.metrics is not None:
            self._m_reactivations.labels(regime=current).inc()
        self._event(
            "online_zoo_reactivated",
            f"regime {current} returned: {version} re-activated from "
            f"the zoo (was {active} [{active_regime}], no retrain)")
        self._persist_state()
        return version

    def _split(self) -> (List[Experience], List[Experience]):
        """Deterministic train/holdout split of the training set."""
        experiences = self.buffer.training_set(
            limit=self.config.train_window)
        train: List[Experience] = []
        holdout: List[Experience] = []
        for index, experience in enumerate(experiences):
            if index % self.config.holdout_every \
                    == self.config.holdout_every - 1:
                holdout.append(experience)
            else:
                train.append(experience)
        if not holdout and train:
            holdout.append(train.pop())
        return train, holdout

    def _retrain(self, trigger: RetrainTrigger) -> Dict[str, object]:
        parent = self.controller.active_version
        job_id = f"ft{self.retrains:03d}"
        self.retrains += 1
        span_lo, span_hi = self.buffer.window_span()
        self._event(
            "online_retrain_started",
            f"job {job_id} from {parent} on {trigger.kind}: "
            f"{trigger.reason}")
        if self.metrics is not None:
            self._m_retrains.labels(trigger=trigger.kind).inc()
        train, holdout = self._split()
        holdout_seqs = {e.seq for e in self.frozen_holdout}
        # Pre-shift rehearsal pool: the reservoir tail, minus anything
        # the frozen clean holdout will judge on (never train on the
        # exam) and anything already in the training window.
        window_seqs = {e.seq for e in train} | {e.seq for e in holdout}
        replay_pool = [e for e in self.buffer.reservoir()
                       if e.seq not in holdout_seqs
                       and e.seq not in window_seqs]
        with span("online.retrain", job=job_id, parent=parent,
                  trigger=trigger.kind):
            result = self.trainer.fine_tune(
                parent, [e.instance for e in train], job_id=job_id,
                replay=[e.instance for e in replay_pool])
            parent_model, _ = self.registry.load(parent)
            gate = self.gate.evaluate(
                parent_model, result.model,
                [e.instance for e in holdout],
                trigger_kind=trigger.kind,
                clean_holdout=[e.instance for e in self.frozen_holdout])
        regime = majority_regime(train) or ""
        lineage = {
            "parent": parent,
            "trigger": trigger.kind,
            "trigger_reason": trigger.reason,
            "window_span": [span_lo, span_hi],
            "train_samples": len(train),
            "holdout_samples": len(holdout),
            "replay_samples": result.replay_samples,
            "clean_holdout_samples": gate.clean_holdout_size,
            "regime": regime,
            "job": job_id,
            "gate_passed": gate.passed,
        }
        marker = f"online-{job_id}-of-{parent}"
        manifest = self._find_registered(marker)
        if manifest is None:
            manifest = self.registry.register(
                result.model,
                created_at=marker,
                metrics={
                    "fine_tune_loss": (result.losses[-1]
                                       if result.losses else float("nan")),
                    "gate_parent_mae": gate.parent_mae,
                    "gate_student_mae": gate.student_mae,
                    "gate_mae_ratio": gate.mae_ratio,
                    "gate_clean_parent_mae": gate.clean_parent_mae,
                    "gate_clean_student_mae": gate.clean_student_mae,
                    "gate_clean_mae_ratio": gate.clean_mae_ratio,
                },
                notes=json.dumps(lineage, sort_keys=True),
                regime=regime)
        self.zoo.refresh()
        self._zoo_scanned = True
        self._event(
            "online_candidate_registered",
            f"{manifest.version} (parent {parent}, {trigger.kind}, "
            f"window [{span_lo}, {span_hi}], {len(train)} train / "
            f"{len(holdout)} holdout)")
        if self.metrics is not None:
            self._m_gate_ratio.set(
                gate.mae_ratio if gate.mae_ratio != float("inf") else -1.0)
            if gate.clean_holdout_size:
                self._m_clean_ratio.set(
                    gate.clean_mae_ratio
                    if gate.clean_mae_ratio != float("inf") else -1.0)
        record: Dict[str, object] = {
            "job": job_id, "version": manifest.version, "parent": parent,
            "trigger": trigger.kind, "regime": regime,
            "replay_samples": result.replay_samples,
            "gate": dataclasses.asdict(gate),
            "canaried": False,
        }
        if gate.passed:
            version = self.controller.start_canary(
                manifest.version, self.config.canary_fraction)
            record["canaried"] = True
            self._event(
                "online_canary_started",
                f"gate passed ({gate.reason}); candidate {version} "
                f"canarying")
            if self.metrics is not None:
                self._m_candidates.labels(outcome="canaried").inc()
        else:
            self._event(
                "online_candidate_rejected",
                f"{manifest.version} blocked by anti-regression gate: "
                f"{gate.reason}")
            if self.metrics is not None:
                self._m_candidates.labels(outcome="rejected").inc()
        self.policy.note_retrained(self._now(), self.buffer.ingested)
        self._last_trigger = trigger
        self.candidates.append(record)
        self._persist_state()
        return record

    def _find_registered(self, marker: str):
        """Find a version this loop already registered under ``marker``.

        Registration is keyed on the deterministic ``created_at``
        marker so a retrain replayed after a kill/restart *reuses* the
        version it registered before dying instead of minting a
        duplicate.
        """
        try:
            for version in self.registry.versions():
                manifest = self.registry.manifest(version)
                if manifest.created_at == marker:
                    return manifest
        except Exception:
            return None
        return None

    # ------------------------------------------------------------------
    # Inspection / durability
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """Machine-readable loop state (the CLI renders this)."""
        return {
            "active_version": self.controller.active_version,
            "buffer": self.buffer.stats(),
            "retrains": self.retrains,
            "reactivations": self.reactivations,
            "pending_alarms": self.policy.pending_alarms,
            "frozen_holdout": len(self.frozen_holdout),
            "baseline_regime_tagged": self._baseline_regime_tagged,
            "zoo": self.zoo.mapping(),
            "policy": self.policy.state_dict()
            if hasattr(self.policy, "state_dict") else {},
            "candidates": list(self.candidates),
        }

    def persist(self) -> None:
        """Write the current :meth:`status` to the workdir state file."""
        self._persist_state()

    def _persist_state(self) -> None:
        path = self.trainer.workdir / STATE_FILE
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.status(), handle, sort_keys=True, indent=2)
        if self.config.durable:
            self.snapshot()

    def snapshot(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Persist the buffer (and frozen holdout) for restart durability."""
        target = Path(path) if path is not None \
            else self.trainer.workdir / BUFFER_FILE
        result = self.buffer.snapshot(target)
        if path is None:
            with open(self.trainer.workdir / HOLDOUT_FILE, "wb") as handle:
                pickle.dump(self.frozen_holdout, handle)
        return result

    def restore(self) -> bool:
        """Rehydrate from a previous incarnation's workdir.

        Reads ``loop_state.json`` plus the buffer/holdout snapshots a
        durable loop wrote at every event boundary.  A retrain that was
        started but whose record never landed in ``candidates`` (the
        process died mid-flight) is re-run under its **original** job
        id, so the trainer resumes its checkpoint and the registration
        marker dedupes — the replayed arc promotes exactly once.
        """
        state = load_loop_state(self.trainer.workdir)
        if state is None:
            return False
        self.candidates = list(state.get("candidates", []))
        self.retrains = len(self.candidates)
        self.reactivations = int(state.get("reactivations", 0))
        self._baseline_regime_tagged = bool(
            state.get("baseline_regime_tagged", False))
        policy_state = state.get("policy")
        if isinstance(policy_state, dict) and policy_state \
                and hasattr(self.policy, "load_state_dict"):
            self.policy.load_state_dict(policy_state)
        buffer_path = self.trainer.workdir / BUFFER_FILE
        if buffer_path.exists():
            self.buffer.restore(buffer_path)
        holdout_path = self.trainer.workdir / HOLDOUT_FILE
        if holdout_path.exists():
            with open(holdout_path, "rb") as handle:
                self.frozen_holdout = pickle.load(handle)
        try:
            self.zoo.refresh()
            self._zoo_scanned = True
        except Exception:
            pass
        return True


def load_loop_state(workdir: Union[str, Path]) -> Optional[Dict[str, object]]:
    """Read the state file a loop persisted in ``workdir`` (or None)."""
    path = Path(workdir) / STATE_FILE
    if not path.exists():
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
