"""The orchestrator that closes the data loop.

``serve → quality → drift → retrain → registry → canary``:

1. the serving path feeds completed routes into the
   :class:`~repro.online.buffer.ExperienceBuffer` (:meth:`OnlineLoop.offer`);
2. the :class:`~repro.obs.quality.QualityMonitor`'s drift alarms land in
   the :class:`~repro.online.policy.RetrainPolicy`
   (:meth:`OnlineLoop.attach`);
3. :meth:`OnlineLoop.tick` — called between requests or on a timer —
   drains the buffer and asks the policy whether to retrain;
4. a triggered retrain shadow-trains a student from the **currently
   active** parent via :class:`~repro.online.trainer.OnlineTrainer`,
   judges it with the
   :class:`~repro.online.policy.AntiRegressionGate` on a held-out
   slice, and registers it in the
   :class:`~repro.deploy.ModelRegistry` with lineage metadata (parent
   version, window span, trigger) whether or not it passed;
5. a gate-passing candidate is handed to the deployment controller
   (:class:`~repro.deploy.DeploymentController` or
   :class:`~repro.serving_shard.ShardDeploymentController`) as a
   canary; the controller's own verdict — including the quality-gauge
   comparison added for this loop — auto-promotes or auto-rolls-back.

Everything is deterministic under an injected clock: events carry
counts and versions, never wall timestamps.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..obs.metrics import MetricsRegistry
from ..obs.tracing import span
from .buffer import Experience, ExperienceBuffer
from .policy import AntiRegressionGate, RetrainPolicy, RetrainTrigger
from .trainer import OnlineTrainer

STATE_FILE = "loop_state.json"


@dataclasses.dataclass
class OnlineLoopConfig:
    """Orchestration knobs of :class:`OnlineLoop`."""

    train_window: int = 32          # experiences per fine-tune
    holdout_every: int = 4          # every k-th window sample is held out
    frozen_holdout_size: int = 8    # first-ingested clean slice kept aside
    canary_fraction: Optional[float] = None  # None -> controller default

    def __post_init__(self) -> None:
        if self.train_window < 2:
            raise ValueError("train_window must be >= 2")
        if self.holdout_every < 2:
            raise ValueError("holdout_every must be >= 2")


class OnlineLoop:
    """Wires buffer, policy, trainer, gate, registry and controller."""

    def __init__(self, registry, controller, buffer: ExperienceBuffer,
                 trainer: OnlineTrainer, policy: RetrainPolicy,
                 gate: Optional[AntiRegressionGate] = None,
                 config: Optional[OnlineLoopConfig] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 clock: Optional[Callable[[], float]] = None,
                 on_event: Optional[Callable[[str, str], None]] = None):
        self.registry = registry
        self.controller = controller
        self.buffer = buffer
        self.trainer = trainer
        self.policy = policy
        self.gate = gate or AntiRegressionGate()
        self.config = config or OnlineLoopConfig()
        self.metrics = metrics
        self.clock = clock
        self.on_event = on_event
        self.retrains = 0
        self.candidates: List[Dict[str, object]] = []
        self.frozen_holdout: List[Experience] = []
        self._last_trigger: Optional[RetrainTrigger] = None
        if metrics is not None:
            self._m_retrains = metrics.counter(
                "rtp_online_retrains_total",
                "Fine-tune jobs started by the online loop",
                labels=("trigger",))
            self._m_candidates = metrics.counter(
                "rtp_online_candidates_total",
                "Fine-tuned candidates by gate/rollout outcome",
                labels=("outcome",))
            self._m_gate_ratio = metrics.gauge(
                "rtp_online_gate_mae_ratio",
                "student/parent held-out ETA MAE of the latest candidate")

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return float(self.clock()) if self.clock is not None else 0.0

    def _event(self, event: str, detail: str) -> None:
        if self.on_event is not None:
            self.on_event(event, detail)

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------
    def attach(self, monitor) -> None:
        """Subscribe to a :class:`QualityMonitor`'s drift alarms."""
        monitor.on_alarm(self.policy.note_alarm)

    def offer(self, request, response, actual_route,
              actual_arrival_minutes) -> bool:
        """Feed one completed route from the serving path.

        Degraded responses are skipped — the fallback's answer says
        nothing about the model — and the bounded buffer may drop the
        route under backpressure (counted, never blocking serving).
        """
        if getattr(response, "degraded", False):
            return False
        labels = {
            "weather": str(request.weather),
            "courier": str(request.courier.courier_id),
            "model_version": str(
                getattr(response, "model_version", "") or ""),
        }
        return self.buffer.offer(request, actual_route,
                                 actual_arrival_minutes, labels=labels)

    # ------------------------------------------------------------------
    # The loop body
    # ------------------------------------------------------------------
    def tick(self) -> Optional[Dict[str, object]]:
        """Drain feedback, maybe retrain; returns the retrain record."""
        drained = self.buffer.drain()
        if self.config.frozen_holdout_size > 0:
            for experience in drained:
                if len(self.frozen_holdout) \
                        >= self.config.frozen_holdout_size:
                    break
                self.frozen_holdout.append(experience)
        trigger = self.policy.should_retrain(
            self._now(), window_size=len(self.buffer),
            total_ingested=self.buffer.ingested)
        if trigger is None:
            return None
        return self._retrain(trigger)

    def _split(self) -> (List[Experience], List[Experience]):
        """Deterministic train/holdout split of the training set."""
        experiences = self.buffer.training_set(
            limit=self.config.train_window)
        train: List[Experience] = []
        holdout: List[Experience] = []
        for index, experience in enumerate(experiences):
            if index % self.config.holdout_every \
                    == self.config.holdout_every - 1:
                holdout.append(experience)
            else:
                train.append(experience)
        if not holdout and train:
            holdout.append(train.pop())
        return train, holdout

    def _retrain(self, trigger: RetrainTrigger) -> Dict[str, object]:
        parent = self.controller.active_version
        job_id = f"ft{self.retrains:03d}"
        self.retrains += 1
        span_lo, span_hi = self.buffer.window_span()
        self._event(
            "online_retrain_started",
            f"job {job_id} from {parent} on {trigger.kind}: "
            f"{trigger.reason}")
        if self.metrics is not None:
            self._m_retrains.labels(trigger=trigger.kind).inc()
        train, holdout = self._split()
        with span("online.retrain", job=job_id, parent=parent,
                  trigger=trigger.kind):
            result = self.trainer.fine_tune(
                parent, [e.instance for e in train], job_id=job_id)
            parent_model, _ = self.registry.load(parent)
            gate = self.gate.evaluate(
                parent_model, result.model,
                [e.instance for e in holdout],
                trigger_kind=trigger.kind)
        lineage = {
            "parent": parent,
            "trigger": trigger.kind,
            "trigger_reason": trigger.reason,
            "window_span": [span_lo, span_hi],
            "train_samples": len(train),
            "holdout_samples": len(holdout),
            "job": job_id,
            "gate_passed": gate.passed,
        }
        manifest = self.registry.register(
            result.model,
            created_at=f"online-{job_id}-of-{parent}",
            metrics={
                "fine_tune_loss": (result.losses[-1]
                                   if result.losses else float("nan")),
                "gate_parent_mae": gate.parent_mae,
                "gate_student_mae": gate.student_mae,
                "gate_mae_ratio": gate.mae_ratio,
            },
            notes=json.dumps(lineage, sort_keys=True))
        self._event(
            "online_candidate_registered",
            f"{manifest.version} (parent {parent}, {trigger.kind}, "
            f"window [{span_lo}, {span_hi}], {len(train)} train / "
            f"{len(holdout)} holdout)")
        if self.metrics is not None:
            self._m_gate_ratio.set(
                gate.mae_ratio if gate.mae_ratio != float("inf") else -1.0)
        record: Dict[str, object] = {
            "job": job_id, "version": manifest.version, "parent": parent,
            "trigger": trigger.kind, "gate": dataclasses.asdict(gate),
            "canaried": False,
        }
        if gate.passed:
            version = self.controller.start_canary(
                manifest.version, self.config.canary_fraction)
            record["canaried"] = True
            self._event(
                "online_canary_started",
                f"gate passed ({gate.reason}); candidate {version} "
                f"canarying")
            if self.metrics is not None:
                self._m_candidates.labels(outcome="canaried").inc()
        else:
            self._event(
                "online_candidate_rejected",
                f"{manifest.version} blocked by anti-regression gate: "
                f"{gate.reason}")
            if self.metrics is not None:
                self._m_candidates.labels(outcome="rejected").inc()
        self.policy.note_retrained(self._now(), self.buffer.ingested)
        self._last_trigger = trigger
        self.candidates.append(record)
        self._persist_state()
        return record

    # ------------------------------------------------------------------
    # Inspection / durability
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """Machine-readable loop state (the CLI renders this)."""
        return {
            "active_version": self.controller.active_version,
            "buffer": self.buffer.stats(),
            "retrains": self.retrains,
            "pending_alarms": self.policy.pending_alarms,
            "frozen_holdout": len(self.frozen_holdout),
            "candidates": list(self.candidates),
        }

    def persist(self) -> None:
        """Write the current :meth:`status` to the workdir state file."""
        self._persist_state()

    def _persist_state(self) -> None:
        path = self.trainer.workdir / STATE_FILE
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.status(), handle, sort_keys=True, indent=2)

    def snapshot(self, path: Optional[Union[str, Path]] = None) -> Path:
        """Persist the buffer next to the job files (restart durability)."""
        target = Path(path) if path is not None \
            else self.trainer.workdir / "buffer.pkl"
        return self.buffer.snapshot(target)


def load_loop_state(workdir: Union[str, Path]) -> Optional[Dict[str, object]]:
    """Read the state file a loop persisted in ``workdir`` (or None)."""
    path = Path(workdir) / STATE_FILE
    if not path.exists():
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
