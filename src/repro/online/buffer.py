"""Experience ingestion: completed routes back into training samples.

The serving path emits ``(request, response)`` pairs; minutes later the
courier actually finishes the route and the platform knows the real
visit order and arrival times.  :class:`ExperienceBuffer` is the point
where that late ground truth re-enters the training world:

* :meth:`offer` accepts feedback from the serving thread into a
  **bounded** ingestion queue (:class:`~repro.obs.quality.FlightRecorder`
  discipline: when retraining lags serving the queue never grows
  unbounded — new routes are dropped and counted in
  ``rtp_online_dropped_routes_total``);
* :meth:`drain` folds queued feedback into a **sliding window** of the
  most recent experiences plus a seeded **reservoir tail** that keeps a
  uniform sample of everything the window evicted, so a fine-tune sees
  mostly-fresh data without completely forgetting the past;
* each accepted record is converted into a full
  :class:`~repro.data.entities.RTPInstance` — the same structure the
  offline loader produces — so the graph-building pipeline, the
  trainer and the evaluation metrics all apply unchanged.

Reservoir decisions are derived from ``(seed, eviction_index)`` via
``np.random.SeedSequence``, not from a stateful RNG, so a buffer
restored from :meth:`snapshot` continues the exact decision stream of
the buffer that wrote it.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import tempfile
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..data.entities import RTPInstance
from ..obs.metrics import MetricsRegistry
from ..service.request import RTPRequest


def instance_from_feedback(request: RTPRequest,
                           actual_route: Sequence[int],
                           actual_arrival_minutes: Sequence[float],
                           day: int = 0) -> RTPInstance:
    """Rebuild a labelled :class:`RTPInstance` from served feedback.

    ``actual_route`` is the true visit order (indices into
    ``request.locations``); ``actual_arrival_minutes`` is indexed by
    *location* (the same convention as ``RTPInstance.arrival_times``).
    AOI-level labels are derived exactly as the simulator derives them:
    an AOI is entered when its first location is visited.
    """
    route = np.asarray(actual_route, dtype=np.int64)
    arrivals = np.asarray(actual_arrival_minutes, dtype=np.float64)
    aoi_of_location = request.aoi_index_of_location()
    aoi_route: List[int] = []
    aoi_arrivals = np.zeros(len(request.aois), dtype=np.float64)
    seen = set()
    for location_index in route:
        aoi_index = int(aoi_of_location[location_index])
        if aoi_index not in seen:
            seen.add(aoi_index)
            aoi_route.append(aoi_index)
            aoi_arrivals[aoi_index] = arrivals[location_index]
    return RTPInstance(
        courier=request.courier,
        request_time=request.request_time,
        courier_position=request.courier_position,
        locations=list(request.locations),
        aois=list(request.aois),
        route=route,
        arrival_times=arrivals,
        aoi_route=np.asarray(aoi_route, dtype=np.int64),
        aoi_arrival_times=aoi_arrivals,
        weather=request.weather,
        weekday=request.weekday,
        day=day,
    )


@dataclasses.dataclass
class Experience:
    """One completed route, reconstructed as a training sample."""

    instance: RTPInstance
    labels: Dict[str, str]
    seq: int          # global ingestion sequence number
    at: float         # clock reading when accepted


class ExperienceBuffer:
    """Bounded sliding window + reservoir tail of completed routes.

    Parameters
    ----------
    capacity:
        Size of the recency window (most recent accepted experiences).
    reservoir:
        Size of the uniform sample kept over window-evicted
        experiences (the long tail a fine-tune mixes in so adaptation
        does not become catastrophic forgetting).
    max_pending:
        Bound on the ingestion queue between :meth:`offer` (serving
        thread) and :meth:`drain` (training loop).  Offers beyond the
        bound are dropped and counted — serving latency is never
        allowed to depend on retraining keeping up.
    """

    def __init__(self, capacity: int = 64, reservoir: int = 16,
                 max_pending: int = 256, seed: int = 0,
                 metrics: Optional[MetricsRegistry] = None,
                 clock=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if reservoir < 0:
            raise ValueError("reservoir must be non-negative")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.capacity = int(capacity)
        self.reservoir_capacity = int(reservoir)
        self.max_pending = int(max_pending)
        self.seed = int(seed)
        self.clock = clock
        self._pending: Deque[Experience] = deque()
        self._window: Deque[Experience] = deque(maxlen=self.capacity)
        self._reservoir: List[Experience] = []
        self.ingested = 0       # accepted into the pending queue, ever
        self.dropped = 0        # rejected by the pending bound, ever
        self.evicted = 0        # pushed out of the window, ever
        self._metrics = metrics
        if metrics is not None:
            self._m_ingested = metrics.counter(
                "rtp_online_ingested_total",
                "Completed routes accepted into the experience buffer")
            self._m_dropped = metrics.counter(
                "rtp_online_dropped_routes_total",
                "Completed routes dropped because the ingestion queue "
                "was full (retraining lagged serving)")
            self._m_window = metrics.gauge(
                "rtp_online_buffer_size",
                "Experiences currently in the sliding window")
            self._m_reservoir = metrics.gauge(
                "rtp_online_reservoir_size",
                "Experiences currently in the reservoir tail")

    # ------------------------------------------------------------------
    # Serving-side ingestion
    # ------------------------------------------------------------------
    def offer(self, request: RTPRequest, actual_route: Sequence[int],
              actual_arrival_minutes: Sequence[float],
              labels: Optional[Dict[str, str]] = None) -> bool:
        """Queue one completed route; ``False`` if the bound dropped it."""
        if len(self._pending) >= self.max_pending:
            self.dropped += 1
            if self._metrics is not None:
                self._m_dropped.inc()
            return False
        instance = instance_from_feedback(
            request, actual_route, actual_arrival_minutes)
        experience = Experience(
            instance=instance, labels=dict(labels or {}),
            seq=self.ingested,
            at=float(self.clock()) if self.clock is not None else 0.0)
        self._pending.append(experience)
        self.ingested += 1
        if self._metrics is not None:
            self._m_ingested.inc()
        return True

    # ------------------------------------------------------------------
    # Training-side consumption
    # ------------------------------------------------------------------
    def drain(self) -> List[Experience]:
        """Fold queued feedback into the window; returns what was folded."""
        accepted: List[Experience] = []
        while self._pending:
            experience = self._pending.popleft()
            if len(self._window) == self.capacity:
                self._absorb_into_reservoir(self._window[0])
            self._window.append(experience)
            accepted.append(experience)
        if self._metrics is not None:
            self._m_window.set(len(self._window))
            self._m_reservoir.set(len(self._reservoir))
        return accepted

    def _absorb_into_reservoir(self, experience: Experience) -> None:
        """Algorithm-R reservoir over the eviction stream, statelessly
        seeded per item so a snapshot/restore replays identically."""
        self.evicted += 1
        if self.reservoir_capacity == 0:
            return
        if len(self._reservoir) < self.reservoir_capacity:
            self._reservoir.append(experience)
            return
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, self.evicted]))
        slot = int(rng.integers(0, self.evicted))
        if slot < self.reservoir_capacity:
            self._reservoir[slot] = experience

    # ------------------------------------------------------------------
    def window(self) -> List[Experience]:
        """Recency window, oldest first."""
        return list(self._window)

    def reservoir(self) -> List[Experience]:
        """The reservoir tail (uniform over evicted experiences)."""
        return list(self._reservoir)

    def training_set(self, limit: Optional[int] = None) -> List[Experience]:
        """Reservoir tail + recency window, oldest first.

        ``limit`` keeps the most recent experiences (the window end),
        trimming the tail first — recency is what a drift-triggered
        fine-tune is for.
        """
        combined = self._reservoir + list(self._window)
        if limit is not None and len(combined) > limit:
            combined = combined[-limit:]
        return combined

    def __len__(self) -> int:
        return len(self._window)

    @property
    def pending(self) -> int:
        return len(self._pending)

    def window_span(self) -> Tuple[int, int]:
        """(first, last) ingestion sequence numbers in the window."""
        if not self._window:
            return (-1, -1)
        return (self._window[0].seq, self._window[-1].seq)

    def stats(self) -> Dict[str, int]:
        return {
            "ingested": self.ingested,
            "dropped": self.dropped,
            "evicted": self.evicted,
            "pending": len(self._pending),
            "window": len(self._window),
            "reservoir": len(self._reservoir),
        }

    # ------------------------------------------------------------------
    # Durability (kill/restart mid-fine-tune)
    # ------------------------------------------------------------------
    def snapshot(self, path: Union[str, Path]) -> Path:
        """Atomically persist the full buffer state to ``path``."""
        path = Path(path)
        state = {
            "capacity": self.capacity,
            "reservoir_capacity": self.reservoir_capacity,
            "max_pending": self.max_pending,
            "seed": self.seed,
            "ingested": self.ingested,
            "dropped": self.dropped,
            "evicted": self.evicted,
            "pending": list(self._pending),
            "window": list(self._window),
            "reservoir": list(self._reservoir),
        }
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=path.parent)
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(state, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def restore(self, path: Union[str, Path]) -> None:
        """Load a snapshot written by :meth:`snapshot` into this buffer."""
        with open(path, "rb") as handle:
            state = pickle.load(handle)
        self.capacity = int(state["capacity"])
        self.reservoir_capacity = int(state["reservoir_capacity"])
        self.max_pending = int(state["max_pending"])
        self.seed = int(state["seed"])
        self.ingested = int(state["ingested"])
        self.dropped = int(state["dropped"])
        self.evicted = int(state["evicted"])
        self._pending = deque(state["pending"])
        self._window = deque(state["window"], maxlen=self.capacity)
        self._reservoir = list(state["reservoir"])
        if self._metrics is not None:
            self._m_window.set(len(self._window))
            self._m_reservoir.set(len(self._reservoir))
