"""When to retrain, and whether the result is allowed to ship.

:class:`RetrainPolicy` turns three raw signals — drift alarms from the
:class:`~repro.obs.quality.QualityMonitor`, the experience counter, and
the clock — into at most one :class:`RetrainTrigger` at a time, with
the damping a production loop needs:

* **cooldown** — after any retrain, no trigger fires for
  ``cooldown_s`` (virtual or wall seconds);
* **hysteresis** — a drift trigger needs ``alarm_quorum`` alarms since
  the last retrain *and* ``min_new_samples`` fresh experiences, so a
  flapping detector cannot cause a retrain storm and a retrain always
  has new data to learn from;
* **watermarks / schedule** — sample-count and elapsed-time triggers
  for drift-free operation, evaluated only when drift is quiet.

:class:`AntiRegressionGate` is the ship/no-ship decision on a finished
fine-tune.  The student must *beat* the frozen parent on a held-out
slice of recent traffic (``drift_improvement_ratio`` when the trigger
was a drift alarm — adapting is the whole point — or merely not regress
past ``max_mae_ratio`` for watermark/schedule retrains), and its
predictions must stay finite.  A fine-tune fed corrupted ground truth
drifts toward the corruption's mean but stalls against its irreducible
noise, so on a held-out slice of the same stream it never clears the
improvement bar a genuinely learnable shift clears easily — the gate
rejects it and the candidate never reaches a canary.
"""

from __future__ import annotations

import dataclasses
import math
import types
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..data.entities import RTPInstance
from ..service.request import RTPRequest
from ..service.rtp_service import RTPService


@dataclasses.dataclass
class RetrainTrigger:
    """Why a retrain is starting now."""

    kind: str        # "drift" | "watermark" | "schedule"
    reason: str
    alarms: int = 0  # drift alarms folded into this trigger


@dataclasses.dataclass
class RetrainPolicyConfig:
    """Damping and trigger thresholds for :class:`RetrainPolicy`."""

    min_window: int = 16            # experiences needed before any retrain
    cooldown_s: float = 60.0        # quiet period after a retrain
    min_new_samples: int = 8        # fresh experiences required per retrain
    alarm_quorum: int = 1           # drift alarms needed to arm the trigger
    #: Experiences that must arrive *after* the alarm quorum is reached
    #: before the drift trigger fires.  An alarm marks the onset of a
    #: shift, so the window is still mostly pre-shift data at that
    #: moment; waiting lets post-shift experiences displace it and the
    #: fine-tune actually learn the new regime.
    post_alarm_samples: int = 0
    sample_watermark: Optional[int] = None   # retrain every N experiences
    schedule_interval_s: Optional[float] = None  # retrain every T seconds

    def __post_init__(self) -> None:
        if self.min_window < 1:
            raise ValueError("min_window must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        if self.alarm_quorum < 1:
            raise ValueError("alarm_quorum must be >= 1")
        if self.post_alarm_samples < 0:
            raise ValueError("post_alarm_samples must be non-negative")


class RetrainPolicy:
    """Decides *when* the online loop fine-tunes (never *what ships*).

    ``clock`` is the scenario's time source (a :class:`VirtualClock`
    under deterministic replay, ``time.monotonic``-like otherwise).
    Cooldown and schedule arithmetic read it whenever a call site does
    not pass ``now`` explicitly, so the same scenario produces the same
    trigger sequence at any host speed.
    """

    def __init__(self, config: Optional[RetrainPolicyConfig] = None,
                 clock: Optional[Callable[[], float]] = None):
        self.config = config or RetrainPolicyConfig()
        self.clock = clock
        self._pending_alarms: List[object] = []
        self._last_retrain_at: Optional[float] = None
        self._samples_at_last_retrain = 0
        self._alarm_armed_at: Optional[int] = None
        self._retrains = 0

    def _time(self, now: Optional[float]) -> float:
        if now is not None:
            return float(now)
        if self.clock is not None:
            return float(self.clock())
        return 0.0

    # ------------------------------------------------------------------
    def note_alarm(self, alarm) -> None:
        """Record one drift alarm (idempotent damping happens later)."""
        self._pending_alarms.append(alarm)

    def note_retrained(self, now: Optional[float] = None,
                       total_ingested: int = 0) -> None:
        """A retrain ran: start the cooldown and clear pending alarms."""
        self._retrains += 1
        self._last_retrain_at = self._time(now)
        self._samples_at_last_retrain = int(total_ingested)
        self._pending_alarms.clear()
        self._alarm_armed_at = None

    def note_regime_swap(self) -> None:
        """A zoo re-activation absorbed the regime change without a
        retrain: the drift pressure those alarms signalled is served, so
        clear them rather than let a stale quorum trigger a pointless
        fine-tune on the next tick."""
        self._pending_alarms.clear()
        self._alarm_armed_at = None

    @property
    def pending_alarms(self) -> int:
        return len(self._pending_alarms)

    @property
    def retrains(self) -> int:
        return self._retrains

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Durable damping state (for :meth:`OnlineLoop.restore`)."""
        return {
            "retrains": self._retrains,
            "last_retrain_at": self._last_retrain_at,
            "samples_at_last_retrain": self._samples_at_last_retrain,
            "alarm_armed_at": self._alarm_armed_at,
            "pending_alarms": [
                {"detector": str(getattr(a, "detector", "?")),
                 "metric": str(getattr(a, "metric", "?"))}
                for a in self._pending_alarms],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self._retrains = int(state.get("retrains", 0))
        last = state.get("last_retrain_at")
        self._last_retrain_at = None if last is None else float(last)
        self._samples_at_last_retrain = int(
            state.get("samples_at_last_retrain", 0))
        armed = state.get("alarm_armed_at")
        self._alarm_armed_at = None if armed is None else int(armed)
        self._pending_alarms = [
            types.SimpleNamespace(detector=a.get("detector", "?"),
                                  metric=a.get("metric", "?"))
            for a in state.get("pending_alarms", [])]

    # ------------------------------------------------------------------
    def should_retrain(self, now: Optional[float] = None, *,
                       window_size: int,
                       total_ingested: int) -> Optional[RetrainTrigger]:
        """The single decision point; at most one trigger per call."""
        cfg = self.config
        now = self._time(now)
        if window_size < cfg.min_window:
            return None
        if (self._last_retrain_at is not None
                and now - self._last_retrain_at < cfg.cooldown_s):
            return None
        new_samples = total_ingested - self._samples_at_last_retrain
        if self._last_retrain_at is not None \
                and new_samples < cfg.min_new_samples:
            return None
        if len(self._pending_alarms) >= cfg.alarm_quorum:
            if self._alarm_armed_at is None:
                self._alarm_armed_at = int(total_ingested)
            if (total_ingested - self._alarm_armed_at
                    < cfg.post_alarm_samples):
                return None
            alarm = self._pending_alarms[-1]
            return RetrainTrigger(
                kind="drift",
                reason=(f"{len(self._pending_alarms)} drift alarm(s), "
                        f"latest {getattr(alarm, 'detector', '?')} on "
                        f"{getattr(alarm, 'metric', '?')}"),
                alarms=len(self._pending_alarms))
        if (cfg.sample_watermark is not None
                and new_samples >= cfg.sample_watermark):
            return RetrainTrigger(
                kind="watermark",
                reason=f"{new_samples} new experiences >= watermark "
                       f"{cfg.sample_watermark}")
        if (cfg.schedule_interval_s is not None
                and (self._last_retrain_at is None
                     or now - self._last_retrain_at
                     >= cfg.schedule_interval_s)):
            return RetrainTrigger(
                kind="schedule",
                reason=f"schedule interval "
                       f"{cfg.schedule_interval_s:.0f}s elapsed")
        return None


# ----------------------------------------------------------------------
# Ship/no-ship gate
# ----------------------------------------------------------------------
@dataclasses.dataclass
class GateConfig:
    """Thresholds of :class:`AntiRegressionGate`."""

    #: Drift-triggered students must beat the parent by this factor on
    #: the held-out recent slice — adapting to the shift is the point.
    #: 0.5 is empirical: a coherent ETA shift is almost fully learnable
    #: (measured ratio ~0.13), while a fine-tune fed corrupted labels
    #: can only drift toward the corruption's mean and stalls against
    #: its irreducible noise (measured ratio ~0.88) — the threshold
    #: sits between with wide margin on both sides.
    drift_improvement_ratio: float = 0.5
    #: Watermark/schedule students only need to not regress.
    max_mae_ratio: float = 1.02
    #: Forgetting budget for the mixture holdout: when the gate is also
    #: handed a frozen *clean* (pre-shift) slice, the student's MAE on
    #: it may not exceed the parent's by more than this factor.  A
    #: candidate that wins the drift regime but craters the old one is
    #: registered-but-rejected.  ``None`` disables the clean check.
    max_clean_regression_ratio: Optional[float] = 1.5

    def __post_init__(self) -> None:
        if not 0.0 < self.drift_improvement_ratio <= 1.0:
            raise ValueError("drift_improvement_ratio must be in (0, 1]")
        if self.max_mae_ratio < 1.0:
            raise ValueError("max_mae_ratio must be >= 1")
        if (self.max_clean_regression_ratio is not None
                and self.max_clean_regression_ratio < 1.0):
            raise ValueError("max_clean_regression_ratio must be >= 1")


@dataclasses.dataclass
class GateResult:
    """Outcome of one gate evaluation (persisted in the manifest)."""

    passed: bool
    reason: str
    parent_mae: float
    student_mae: float
    mae_ratio: float        # student / parent (inf when parent is 0)
    holdout_size: int
    threshold: float
    # Mixture-holdout leg: the frozen clean slice.  NaN/0 when the gate
    # ran without one (back-compat with pre-mixture candidates).
    clean_parent_mae: float = float("nan")
    clean_student_mae: float = float("nan")
    clean_mae_ratio: float = float("nan")
    clean_holdout_size: int = 0
    clean_threshold: float = 0.0


def _eta_mae(model, instances: Sequence[RTPInstance]) -> float:
    """Windowed ETA MAE of ``model`` over labelled instances (minutes)."""
    service = RTPService(model, cache_size=max(8, len(instances)))
    errors: List[float] = []
    for instance in instances:
        try:
            response = service.handle(RTPRequest.from_instance(instance))
        except Exception:
            # A sufficiently damaged student can break route decoding
            # outright (degenerate pointer logits); that is a failed
            # gate, not a crashed loop.
            return float("inf")
        predicted = np.asarray(response.eta_minutes, dtype=float)
        if not np.all(np.isfinite(predicted)):
            return float("inf")
        errors.append(float(np.mean(np.abs(
            predicted - np.asarray(instance.arrival_times, dtype=float)))))
    return float(np.mean(errors)) if errors else float("inf")


class AntiRegressionGate:
    """Evaluates a student against its frozen parent before anything ships."""

    def __init__(self, config: Optional[GateConfig] = None):
        self.config = config or GateConfig()

    def evaluate(self, parent_model, student_model,
                 holdout: Sequence[RTPInstance],
                 trigger_kind: str = "drift",
                 clean_holdout: Optional[Sequence[RTPInstance]] = None,
                 ) -> GateResult:
        """Compare parent vs student on a mixture of held-out slices.

        ``holdout`` (the recent live window, excluded from the
        fine-tune) measures adaptation; ``clean_holdout`` (a slice
        frozen before any shift) measures what the adaptation cost the
        old regime.  Both were excluded from the fine-tune, so the
        comparison measures generalisation to each distribution, not
        memorised training labels.  The student must clear *both* bars:
        beat the parent on the recent slice and stay within
        ``max_clean_regression_ratio`` of it on the clean slice.
        """
        if not holdout:
            return GateResult(
                passed=False, reason="empty holdout slice",
                parent_mae=float("nan"), student_mae=float("nan"),
                mae_ratio=float("inf"), holdout_size=0,
                threshold=0.0)
        parent_mae = _eta_mae(parent_model, holdout)
        student_mae = _eta_mae(student_model, holdout)
        threshold = (self.config.drift_improvement_ratio
                     if trigger_kind == "drift"
                     else self.config.max_mae_ratio)
        clean_budget = self.config.max_clean_regression_ratio
        clean_parent = clean_student = clean_ratio = float("nan")
        clean_size = 0
        clean_threshold = 0.0
        if clean_holdout and clean_budget is not None:
            clean_size = len(clean_holdout)
            clean_threshold = float(clean_budget)
            clean_parent = _eta_mae(parent_model, clean_holdout)
            clean_student = _eta_mae(student_model, clean_holdout)
            clean_ratio = (clean_student / clean_parent
                           if clean_parent > 0 else float("inf"))

        def result(passed: bool, reason: str,
                   ratio: float) -> GateResult:
            return GateResult(
                passed=passed, reason=reason,
                parent_mae=parent_mae, student_mae=student_mae,
                mae_ratio=ratio, holdout_size=len(holdout),
                threshold=threshold,
                clean_parent_mae=clean_parent,
                clean_student_mae=clean_student,
                clean_mae_ratio=clean_ratio,
                clean_holdout_size=clean_size,
                clean_threshold=clean_threshold)

        if not math.isfinite(student_mae):
            return result(
                False, "student produced non-finite ETA predictions",
                float("inf"))
        ratio = (student_mae / parent_mae if parent_mae > 0
                 else float("inf"))
        if ratio > threshold:
            return result(
                False,
                f"student mae {student_mae:.1f} vs parent "
                f"{parent_mae:.1f} on {len(holdout)} held-out routes "
                f"(ratio {ratio:.3f} > {threshold:.2f})",
                ratio)
        if clean_size and not (clean_ratio <= clean_threshold):
            return result(
                False,
                f"forgetting: clean-holdout mae {clean_student:.1f} vs "
                f"parent {clean_parent:.1f} on {clean_size} frozen "
                f"routes (ratio {clean_ratio:.3f} > budget "
                f"{clean_threshold:.2f}) despite shifted ratio "
                f"{ratio:.3f} <= {threshold:.2f}",
                ratio)
        mixture = (f"; clean-holdout ratio {clean_ratio:.3f} <= "
                   f"budget {clean_threshold:.2f} on {clean_size} "
                   f"frozen routes" if clean_size else "")
        return result(
            True,
            f"student mae {student_mae:.1f} vs parent "
            f"{parent_mae:.1f} on {len(holdout)} held-out "
            f"routes (ratio {ratio:.3f} <= {threshold:.2f}){mixture}",
            ratio)
