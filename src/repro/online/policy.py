"""When to retrain, and whether the result is allowed to ship.

:class:`RetrainPolicy` turns three raw signals — drift alarms from the
:class:`~repro.obs.quality.QualityMonitor`, the experience counter, and
the clock — into at most one :class:`RetrainTrigger` at a time, with
the damping a production loop needs:

* **cooldown** — after any retrain, no trigger fires for
  ``cooldown_s`` (virtual or wall seconds);
* **hysteresis** — a drift trigger needs ``alarm_quorum`` alarms since
  the last retrain *and* ``min_new_samples`` fresh experiences, so a
  flapping detector cannot cause a retrain storm and a retrain always
  has new data to learn from;
* **watermarks / schedule** — sample-count and elapsed-time triggers
  for drift-free operation, evaluated only when drift is quiet.

:class:`AntiRegressionGate` is the ship/no-ship decision on a finished
fine-tune.  The student must *beat* the frozen parent on a held-out
slice of recent traffic (``drift_improvement_ratio`` when the trigger
was a drift alarm — adapting is the whole point — or merely not regress
past ``max_mae_ratio`` for watermark/schedule retrains), and its
predictions must stay finite.  A fine-tune fed corrupted ground truth
drifts toward the corruption's mean but stalls against its irreducible
noise, so on a held-out slice of the same stream it never clears the
improvement bar a genuinely learnable shift clears easily — the gate
rejects it and the candidate never reaches a canary.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

import numpy as np

from ..data.entities import RTPInstance
from ..service.request import RTPRequest
from ..service.rtp_service import RTPService


@dataclasses.dataclass
class RetrainTrigger:
    """Why a retrain is starting now."""

    kind: str        # "drift" | "watermark" | "schedule"
    reason: str
    alarms: int = 0  # drift alarms folded into this trigger


@dataclasses.dataclass
class RetrainPolicyConfig:
    """Damping and trigger thresholds for :class:`RetrainPolicy`."""

    min_window: int = 16            # experiences needed before any retrain
    cooldown_s: float = 60.0        # quiet period after a retrain
    min_new_samples: int = 8        # fresh experiences required per retrain
    alarm_quorum: int = 1           # drift alarms needed to arm the trigger
    #: Experiences that must arrive *after* the alarm quorum is reached
    #: before the drift trigger fires.  An alarm marks the onset of a
    #: shift, so the window is still mostly pre-shift data at that
    #: moment; waiting lets post-shift experiences displace it and the
    #: fine-tune actually learn the new regime.
    post_alarm_samples: int = 0
    sample_watermark: Optional[int] = None   # retrain every N experiences
    schedule_interval_s: Optional[float] = None  # retrain every T seconds

    def __post_init__(self) -> None:
        if self.min_window < 1:
            raise ValueError("min_window must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        if self.alarm_quorum < 1:
            raise ValueError("alarm_quorum must be >= 1")
        if self.post_alarm_samples < 0:
            raise ValueError("post_alarm_samples must be non-negative")


class RetrainPolicy:
    """Decides *when* the online loop fine-tunes (never *what ships*)."""

    def __init__(self, config: Optional[RetrainPolicyConfig] = None):
        self.config = config or RetrainPolicyConfig()
        self._pending_alarms: List[object] = []
        self._last_retrain_at: Optional[float] = None
        self._samples_at_last_retrain = 0
        self._alarm_armed_at: Optional[int] = None
        self._retrains = 0

    # ------------------------------------------------------------------
    def note_alarm(self, alarm) -> None:
        """Record one drift alarm (idempotent damping happens later)."""
        self._pending_alarms.append(alarm)

    def note_retrained(self, now: float, total_ingested: int) -> None:
        """A retrain ran: start the cooldown and clear pending alarms."""
        self._retrains += 1
        self._last_retrain_at = float(now)
        self._samples_at_last_retrain = int(total_ingested)
        self._pending_alarms.clear()
        self._alarm_armed_at = None

    @property
    def pending_alarms(self) -> int:
        return len(self._pending_alarms)

    @property
    def retrains(self) -> int:
        return self._retrains

    # ------------------------------------------------------------------
    def should_retrain(self, now: float, *, window_size: int,
                       total_ingested: int) -> Optional[RetrainTrigger]:
        """The single decision point; at most one trigger per call."""
        cfg = self.config
        if window_size < cfg.min_window:
            return None
        if (self._last_retrain_at is not None
                and now - self._last_retrain_at < cfg.cooldown_s):
            return None
        new_samples = total_ingested - self._samples_at_last_retrain
        if self._last_retrain_at is not None \
                and new_samples < cfg.min_new_samples:
            return None
        if len(self._pending_alarms) >= cfg.alarm_quorum:
            if self._alarm_armed_at is None:
                self._alarm_armed_at = int(total_ingested)
            if (total_ingested - self._alarm_armed_at
                    < cfg.post_alarm_samples):
                return None
            alarm = self._pending_alarms[-1]
            return RetrainTrigger(
                kind="drift",
                reason=(f"{len(self._pending_alarms)} drift alarm(s), "
                        f"latest {getattr(alarm, 'detector', '?')} on "
                        f"{getattr(alarm, 'metric', '?')}"),
                alarms=len(self._pending_alarms))
        if (cfg.sample_watermark is not None
                and new_samples >= cfg.sample_watermark):
            return RetrainTrigger(
                kind="watermark",
                reason=f"{new_samples} new experiences >= watermark "
                       f"{cfg.sample_watermark}")
        if (cfg.schedule_interval_s is not None
                and (self._last_retrain_at is None
                     or now - self._last_retrain_at
                     >= cfg.schedule_interval_s)):
            return RetrainTrigger(
                kind="schedule",
                reason=f"schedule interval "
                       f"{cfg.schedule_interval_s:.0f}s elapsed")
        return None


# ----------------------------------------------------------------------
# Ship/no-ship gate
# ----------------------------------------------------------------------
@dataclasses.dataclass
class GateConfig:
    """Thresholds of :class:`AntiRegressionGate`."""

    #: Drift-triggered students must beat the parent by this factor on
    #: the held-out recent slice — adapting to the shift is the point.
    #: 0.5 is empirical: a coherent ETA shift is almost fully learnable
    #: (measured ratio ~0.13), while a fine-tune fed corrupted labels
    #: can only drift toward the corruption's mean and stalls against
    #: its irreducible noise (measured ratio ~0.88) — the threshold
    #: sits between with wide margin on both sides.
    drift_improvement_ratio: float = 0.5
    #: Watermark/schedule students only need to not regress.
    max_mae_ratio: float = 1.02

    def __post_init__(self) -> None:
        if not 0.0 < self.drift_improvement_ratio <= 1.0:
            raise ValueError("drift_improvement_ratio must be in (0, 1]")
        if self.max_mae_ratio < 1.0:
            raise ValueError("max_mae_ratio must be >= 1")


@dataclasses.dataclass
class GateResult:
    """Outcome of one gate evaluation (persisted in the manifest)."""

    passed: bool
    reason: str
    parent_mae: float
    student_mae: float
    mae_ratio: float        # student / parent (inf when parent is 0)
    holdout_size: int
    threshold: float


def _eta_mae(model, instances: Sequence[RTPInstance]) -> float:
    """Windowed ETA MAE of ``model`` over labelled instances (minutes)."""
    service = RTPService(model, cache_size=max(8, len(instances)))
    errors: List[float] = []
    for instance in instances:
        try:
            response = service.handle(RTPRequest.from_instance(instance))
        except Exception:
            # A sufficiently damaged student can break route decoding
            # outright (degenerate pointer logits); that is a failed
            # gate, not a crashed loop.
            return float("inf")
        predicted = np.asarray(response.eta_minutes, dtype=float)
        if not np.all(np.isfinite(predicted)):
            return float("inf")
        errors.append(float(np.mean(np.abs(
            predicted - np.asarray(instance.arrival_times, dtype=float)))))
    return float(np.mean(errors)) if errors else float("inf")


class AntiRegressionGate:
    """Evaluates a student against its frozen parent before anything ships."""

    def __init__(self, config: Optional[GateConfig] = None):
        self.config = config or GateConfig()

    def evaluate(self, parent_model, student_model,
                 holdout: Sequence[RTPInstance],
                 trigger_kind: str = "drift") -> GateResult:
        """Compare parent vs student on a held-out slice of experiences.

        ``holdout`` was excluded from the fine-tune, so the comparison
        measures generalisation to the live distribution, not memorised
        training labels.
        """
        if not holdout:
            return GateResult(
                passed=False, reason="empty holdout slice",
                parent_mae=float("nan"), student_mae=float("nan"),
                mae_ratio=float("inf"), holdout_size=0,
                threshold=0.0)
        parent_mae = _eta_mae(parent_model, holdout)
        student_mae = _eta_mae(student_model, holdout)
        threshold = (self.config.drift_improvement_ratio
                     if trigger_kind == "drift"
                     else self.config.max_mae_ratio)
        if not math.isfinite(student_mae):
            return GateResult(
                passed=False,
                reason="student produced non-finite ETA predictions",
                parent_mae=parent_mae, student_mae=student_mae,
                mae_ratio=float("inf"), holdout_size=len(holdout),
                threshold=threshold)
        ratio = (student_mae / parent_mae if parent_mae > 0
                 else float("inf"))
        if ratio <= threshold:
            return GateResult(
                passed=True,
                reason=(f"student mae {student_mae:.1f} vs parent "
                        f"{parent_mae:.1f} on {len(holdout)} held-out "
                        f"routes (ratio {ratio:.3f} <= {threshold:.2f})"),
                parent_mae=parent_mae, student_mae=student_mae,
                mae_ratio=ratio, holdout_size=len(holdout),
                threshold=threshold)
        return GateResult(
            passed=False,
            reason=(f"student mae {student_mae:.1f} vs parent "
                    f"{parent_mae:.1f} on {len(holdout)} held-out routes "
                    f"(ratio {ratio:.3f} > {threshold:.2f})"),
            parent_mae=parent_mae, student_mae=student_mae,
            mae_ratio=ratio, holdout_size=len(holdout),
            threshold=threshold)
