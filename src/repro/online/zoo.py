"""Per-regime model zoo: remember specialists instead of retraining.

A continually-adapting student wins the *current* regime at the cost of
the old one (PR 9 measured clean-holdout MAE 533 vs the frozen parent's
94).  The survey literature's answer — MRGRP conditions couriers on
relational weather/region context; DeepETA keeps cohort-specific heads
— is to treat regimes as first-class: keep one model per regime and
*switch*, so a regime returning (the storm clears) re-activates the
version that already knows it instead of paying another fine-tune and
another round of forgetting.

The zoo is an index over :class:`~repro.deploy.ModelRegistry`
manifests, not a second store: any version whose manifest carries a
``regime`` tag — stamped at registration by the online loop (lineage
``gate_passed`` required) or explicitly via
:meth:`~repro.deploy.ModelRegistry.tag_regime` — is eligible, newest
sequence per regime wins.  Regime keys come from the labels the
:class:`~repro.online.buffer.ExperienceBuffer` already carries: the
weather code is binned into ``weather:calm`` (codes 0–1) versus
``weather:storm`` (codes 2–3), matching the coarse service-time /
ETA-delay coupling in the load harness (codes 2–3 are the ones that
move ETAs by tens of minutes).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

STORM_WEATHER_MIN = 2   # weather codes >= this count as "storm"


def weather_regime(weather: int) -> str:
    """Bin a simulator weather code (0-3) into a coarse regime key."""
    return ("weather:storm" if int(weather) >= STORM_WEATHER_MIN
            else "weather:calm")


def regime_of_request(request) -> str:
    """Regime key of one live request (for routing)."""
    return weather_regime(getattr(request, "weather", 0))


def majority_regime(experiences: Sequence) -> Optional[str]:
    """Strict-majority regime over experiences' weather labels.

    Returns ``None`` when no regime holds a strict majority (mixed
    traffic) — callers treat that as "don't switch".
    """
    if not experiences:
        return None
    counts: Dict[str, int] = {}
    for experience in experiences:
        weather = experience.labels.get("weather", "0")
        try:
            key = weather_regime(int(weather))
        except (TypeError, ValueError):
            continue
        counts[key] = counts.get(key, 0) + 1
    if not counts:
        return None
    regime, votes = max(counts.items(), key=lambda item: item[1])
    if votes * 2 <= len(experiences):
        return None
    return regime


def _gate_passed(notes: str) -> bool:
    """Whether lineage notes say the anti-regression gate passed.

    Versions with no lineage (seed parents, explicit ``tag_regime``
    stamps) are trusted — only a *recorded* gate failure disqualifies.
    """
    if not notes:
        return True
    try:
        lineage = json.loads(notes)
    except (TypeError, ValueError):
        return True
    if not isinstance(lineage, dict):
        return True
    return bool(lineage.get("gate_passed", True))


class ModelZoo:
    """Regime → best registered version, indexed from manifests."""

    def __init__(self, registry):
        self.registry = registry
        self._entries: Dict[str, str] = {}
        self._sequences: Dict[str, int] = {}

    def refresh(self) -> Dict[str, str]:
        """Re-scan the registry; returns the regime → version mapping."""
        entries: Dict[str, str] = {}
        sequences: Dict[str, int] = {}
        for version in self.registry.versions():
            manifest = self.registry.manifest(version)
            regime = getattr(manifest, "regime", "") or ""
            if not regime or not _gate_passed(manifest.notes):
                continue
            if sequences.get(regime, -1) < manifest.sequence:
                sequences[regime] = manifest.sequence
                entries[regime] = manifest.version
        self._entries = entries
        self._sequences = sequences
        return dict(entries)

    def version_for(self, regime: Optional[str]) -> Optional[str]:
        """Best version for ``regime``, or None if the zoo has none."""
        if not regime:
            return None
        return self._entries.get(regime)

    def mapping(self) -> Dict[str, str]:
        """Current regime → version snapshot (refresh first)."""
        return dict(self._entries)

    def regimes(self) -> List[str]:
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
