"""Online continual learning: live routes → retrain → gated rollout.

The subsystem that closes the data loop (PR 9).  Completed routes flow
from the serving tier into an :class:`ExperienceBuffer`; a
:class:`RetrainPolicy` converts drift alarms, sample watermarks and
schedules into retrain triggers; an :class:`OnlineTrainer` fine-tunes a
copy of the active model over the experience window with bit-reproducible
checkpoint/optimizer resume; an :class:`AntiRegressionGate` decides
whether the student may ship; and :class:`OnlineLoop` orchestrates the
whole ``serve → quality → drift → retrain → registry → canary`` cycle.
"""

from .buffer import Experience, ExperienceBuffer, instance_from_feedback
from .loop import OnlineLoop, OnlineLoopConfig, load_loop_state
from .policy import (AntiRegressionGate, GateConfig, GateResult,
                     RetrainPolicy, RetrainPolicyConfig, RetrainTrigger)
from .trainer import FineTuneResult, OnlineTrainer, OnlineTrainerConfig

__all__ = [
    "AntiRegressionGate",
    "Experience",
    "ExperienceBuffer",
    "FineTuneResult",
    "GateConfig",
    "GateResult",
    "OnlineLoop",
    "OnlineLoopConfig",
    "OnlineTrainer",
    "OnlineTrainerConfig",
    "RetrainPolicy",
    "RetrainPolicyConfig",
    "RetrainTrigger",
    "instance_from_feedback",
    "load_loop_state",
]
