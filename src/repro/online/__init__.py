"""Online continual learning: live routes → retrain → gated rollout.

The subsystem that closes the data loop (PR 9).  Completed routes flow
from the serving tier into an :class:`ExperienceBuffer`; a
:class:`RetrainPolicy` converts drift alarms, sample watermarks and
schedules into retrain triggers; an :class:`OnlineTrainer` fine-tunes a
copy of the active model over the experience window with bit-reproducible
checkpoint/optimizer resume; an :class:`AntiRegressionGate` decides
whether the student may ship; and :class:`OnlineLoop` orchestrates the
whole ``serve → quality → drift → retrain → registry → canary`` cycle.

PR 10 makes the loop forgetting-aware: the gate scores a *mixture*
holdout (frozen clean slice + recent shifted window) under a
``max_clean_regression_ratio`` budget, fine-tunes interleave a seeded
replay sample from the reservoir, and a :class:`ModelZoo` keyed on the
buffer's weather regime labels re-activates a remembered specialist
when a regime returns instead of retraining.
"""

from .buffer import Experience, ExperienceBuffer, instance_from_feedback
from .loop import OnlineLoop, OnlineLoopConfig, load_loop_state
from .policy import (AntiRegressionGate, GateConfig, GateResult,
                     RetrainPolicy, RetrainPolicyConfig, RetrainTrigger)
from .trainer import FineTuneResult, OnlineTrainer, OnlineTrainerConfig
from .zoo import (ModelZoo, majority_regime, regime_of_request,
                  weather_regime)

__all__ = [
    "AntiRegressionGate",
    "Experience",
    "ExperienceBuffer",
    "FineTuneResult",
    "GateConfig",
    "GateResult",
    "ModelZoo",
    "OnlineLoop",
    "OnlineLoopConfig",
    "OnlineTrainer",
    "OnlineTrainerConfig",
    "RetrainPolicy",
    "RetrainPolicyConfig",
    "RetrainTrigger",
    "instance_from_feedback",
    "load_loop_state",
    "majority_regime",
    "regime_of_request",
    "weather_regime",
]
