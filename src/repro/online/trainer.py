"""Incremental fine-tuning jobs over the experience window.

:class:`OnlineTrainer` owns the epoch loop of a fine-tune so it can
checkpoint *inside* a job: after every epoch the model **and** the Adam
state round-trip through
:func:`~repro.training.checkpoint.save_checkpoint` /
:func:`~repro.training.checkpoint.load_checkpoint` (the ``__optim__/``
archive keys from PR 4), next to an atomically-written progress record.
A job killed after epoch *k* and re-run with the same ``job_id``
resumes at epoch *k + 1* and finishes **bitwise identical** to an
uninterrupted run: the shuffle RNG replays the permutations of the
completed epochs before continuing, and the optimizer moments come back
exactly as saved.

Graph building and the per-batch update are delegated to
:class:`~repro.parallel.DataParallelTrainer` hooks, so
``num_workers > 0`` shards the fine-tune across the same gradient
worker pool offline training uses, with identical numerics.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..autodiff import Adam
from ..core.model import M2G4RTP, RTPTargets
from ..data.entities import RTPInstance
from ..graphs import GraphBuilder
from ..obs.events import EventLog
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import span
from ..parallel import DataParallelTrainer, ParallelConfig
from ..training.checkpoint import load_checkpoint, save_checkpoint
from ..training.trainer import TrainerConfig


@dataclasses.dataclass
class OnlineTrainerConfig:
    """Hyper-parameters of one fine-tune job.

    Deliberately hotter than offline training (`learning_rate`) and
    short (`epochs`): the job chases a recent distribution shift over a
    small window, under traffic, and the anti-regression gate — not the
    loss curve — decides whether the result ships.  The defaults are
    the empirically stable point: ``learning_rate`` above ~0.05 makes
    short fine-tunes on shifted windows diverge to NaN.
    """

    epochs: int = 4
    learning_rate: float = 0.02
    batch_size: int = 4
    grad_clip: float = 5.0
    shuffle_seed: int = 11
    num_workers: int = 0            # gradient workers (0 = sequential)
    #: Fraction of the live window's size to top up with pre-shift
    #: reservoir experiences (experience replay): ``fine_tune`` draws a
    #: seeded sample of ``round(replay_fraction * len(instances))``
    #: items from the ``replay`` pool and interleaves them into every
    #: epoch's permutation, so adaptation rehearses the old regime
    #: instead of overwriting it.  0 disables replay.
    replay_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not 0.0 <= self.replay_fraction <= 1.0:
            raise ValueError("replay_fraction must be in [0, 1]")


@dataclasses.dataclass
class FineTuneResult:
    """What a finished (or paused) fine-tune job hands back."""

    model: M2G4RTP
    job_id: str
    parent: str
    epochs_done: int
    completed: bool
    losses: List[float]
    checkpoint_path: Path
    replay_samples: int = 0     # reservoir experiences interleaved


class OnlineTrainer:
    """Runs resumable fine-tune jobs from registry parents.

    Parameters
    ----------
    registry:
        The :class:`~repro.deploy.ModelRegistry` parents are loaded
        from (integrity-checked, same as serving).
    workdir:
        Where per-job checkpoints and progress records live; a job is
        resumable for as long as its files survive here.
    """

    def __init__(self, registry, workdir: Union[str, Path],
                 config: Optional[OnlineTrainerConfig] = None,
                 builder: Optional[GraphBuilder] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 event_log: Optional[EventLog] = None):
        self.registry = registry
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.config = config or OnlineTrainerConfig()
        self.builder = builder
        self.metrics = metrics
        self.event_log = event_log
        if metrics is not None:
            self._m_epochs = metrics.counter(
                "rtp_online_retrain_epochs_total",
                "Fine-tune epochs completed by the online trainer")
            self._m_loss = metrics.gauge(
                "rtp_online_fine_tune_loss",
                "Mean training loss of the latest fine-tune epoch")

    # ------------------------------------------------------------------
    def _paths(self, job_id: str) -> Dict[str, Path]:
        return {
            "checkpoint": self.workdir / f"{job_id}.npz",
            "progress": self.workdir / f"{job_id}.json",
        }

    def _write_progress(self, path: Path, record: Dict) -> None:
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=path.parent)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def fine_tune(self, parent: str, instances: Sequence[RTPInstance],
                  job_id: str,
                  stop_after_epoch: Optional[int] = None,
                  replay: Optional[Sequence[RTPInstance]] = None,
                  ) -> FineTuneResult:
        """Fine-tune a copy of registry version ``parent`` on ``instances``.

        If ``workdir`` holds a matching unfinished job (same ``job_id``
        and parent), training **resumes** from its checkpoint instead of
        starting over.  ``stop_after_epoch`` pauses the job after that
        many total epochs (``completed=False``) — the kill/restart
        tests use it to cut a job mid-flight deterministically.

        ``replay`` is a pool of pre-shift experiences (typically the
        :class:`ExperienceBuffer` reservoir); ``replay_fraction`` of the
        live window's size is sampled from it **once, at job start, from
        a fixed seed** and appended to the training set, so every
        epoch's permutation interleaves old-regime rehearsal with the
        shifted window — and a killed/restarted job draws the identical
        replay sample and stays bitwise resumable.
        """
        if not instances:
            raise ValueError("fine_tune needs at least one instance")
        cfg = self.config
        paths = self._paths(job_id)
        model, _ = self.registry.load(parent)
        replay_pool = list(replay or [])
        replay_count = 0
        if replay_pool and cfg.replay_fraction > 0.0:
            replay_count = min(
                len(replay_pool),
                int(round(cfg.replay_fraction * len(instances))))
        if replay_count:
            replay_rng = np.random.default_rng(cfg.shuffle_seed + 2)
            picks = replay_rng.choice(
                len(replay_pool), size=replay_count, replace=False)
            instances = list(instances) + [replay_pool[int(i)]
                                           for i in picks]
        trainer = DataParallelTrainer(
            model,
            TrainerConfig(epochs=cfg.epochs, learning_rate=cfg.learning_rate,
                          grad_clip=cfg.grad_clip, batch_size=cfg.batch_size,
                          shuffle_seed=cfg.shuffle_seed),
            ParallelConfig(num_workers=cfg.num_workers),
            self.builder, registry=self.metrics)

        start_epoch = 0
        losses: List[float] = []
        if paths["progress"].exists():
            with open(paths["progress"], "r", encoding="utf-8") as handle:
                progress = json.load(handle)
            if progress.get("job") == job_id \
                    and progress.get("parent") == parent \
                    and not progress.get("completed", False):
                start_epoch = int(progress["epochs_done"])
                losses = [float(v) for v in progress["losses"]]

        with span("online.fine_tune", job=job_id, parent=parent,
                  instances=len(instances), replay=replay_count,
                  resume_epoch=start_epoch):
            graphs = trainer._build_graphs(list(instances))
            targets = [RTPTargets.from_instance(i) for i in instances]
            trainer._on_data_ready(graphs, targets)
            optimizer = Adam(model.parameters(), lr=cfg.learning_rate)
            if start_epoch > 0:
                load_checkpoint(model, paths["checkpoint"],
                                optimizer=optimizer)
            shuffle_rng = np.random.default_rng(cfg.shuffle_seed)
            sampling_rng = np.random.default_rng(cfg.shuffle_seed + 1)
            epochs_done = start_epoch
            try:
                model.train()
                for epoch in range(cfg.epochs):
                    # The permutation stream is drawn for *every* epoch
                    # so a resumed job sees the same epoch orders an
                    # uninterrupted one would.
                    order = shuffle_rng.permutation(len(graphs))
                    if epoch < start_epoch:
                        continue
                    epoch_loss = 0.0
                    with span("online.epoch", job=job_id, epoch=epoch):
                        for start_index in range(0, len(order),
                                                 cfg.batch_size):
                            chunk = order[start_index:start_index
                                          + cfg.batch_size]
                            epoch_loss += trainer._update_batch(
                                chunk, graphs, targets, optimizer, 0.0,
                                sampling_rng)
                    epoch_loss /= max(len(graphs), 1)
                    losses.append(float(epoch_loss))
                    epochs_done = epoch + 1
                    save_checkpoint(model, paths["checkpoint"],
                                    optimizer=optimizer)
                    self._write_progress(paths["progress"], {
                        "job": job_id, "parent": parent,
                        "epochs_done": epochs_done,
                        "completed": epochs_done >= cfg.epochs,
                        "losses": losses,
                        "replay_samples": replay_count,
                    })
                    if self.metrics is not None:
                        self._m_epochs.inc()
                        self._m_loss.set(float(epoch_loss))
                    if self.event_log is not None:
                        self.event_log.log(
                            "online_epoch", job=job_id, epoch=epoch,
                            loss=round(float(epoch_loss), 6))
                    if stop_after_epoch is not None \
                            and epochs_done >= stop_after_epoch:
                        break
            finally:
                trainer._teardown()
            model.eval()
        return FineTuneResult(
            model=model, job_id=job_id, parent=parent,
            epochs_done=epochs_done,
            completed=epochs_done >= cfg.epochs,
            losses=losses, checkpoint_path=paths["checkpoint"],
            replay_samples=replay_count)
