"""Experiment runner: spec -> trained methods -> metric grid -> report.

Results round-trip through JSON so a long run can be rendered, diffed
against the paper or re-plotted without retraining.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..baselines import (
    DeepBaselineConfig,
    DeepETA,
    DeepRoute,
    DistanceGreedy,
    FDNET,
    Graph2Route,
    OSquare,
    ShortestRouteTSP,
    TimeGreedy,
)
from ..core import M2G4RTP, M2G4RTPConfig, make_variant
from ..data.dataset import RTPDataset
from ..data.generator import SyntheticWorld
from ..eval import baseline_predictor, evaluate_method, model_predictor
from ..training import Trainer, TrainerConfig
from .spec import ExperimentSpec, get_spec


@dataclasses.dataclass
class ExperimentResult:
    """Metric grid of one finished experiment."""

    spec_name: str
    description: str
    # method -> bucket -> metric -> value
    metrics: Dict[str, Dict[str, Dict[str, float]]]
    seconds: float

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), indent=2)

    @staticmethod
    def from_json(text: str) -> "ExperimentResult":
        payload = json.loads(text)
        return ExperimentResult(**payload)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @staticmethod
    def load(path: Union[str, Path]) -> "ExperimentResult":
        return ExperimentResult.from_json(Path(path).read_text())

    # ------------------------------------------------------------------
    def render_markdown(self, kind: str = "route",
                        bucket: str = "all") -> str:
        """A GitHub-markdown table of one metric block."""
        if kind == "route":
            keys = [("hr_at_3", "HR@3"), ("krc", "KRC"), ("lsd", "LSD")]
        elif kind == "time":
            keys = [("rmse", "RMSE"), ("mae", "MAE"), ("acc_at_20", "acc@20")]
        else:
            raise ValueError(f"kind must be 'route' or 'time', got {kind!r}")
        header = "| Method | " + " | ".join(label for _, label in keys) + " |"
        rule = "|---" * (len(keys) + 1) + "|"
        rows = []
        for method, buckets in self.metrics.items():
            if bucket not in buckets:
                continue
            cells = " | ".join(f"{buckets[bucket][key]:.2f}"
                               for key, _ in keys)
            rows.append(f"| {method} | {cells} |")
        return "\n".join([header, rule] + rows)

    def best(self, metric: str, bucket: str = "all",
             higher_is_better: bool = True) -> str:
        """Name of the winning method on one metric."""
        scored = {
            method: buckets[bucket][metric]
            for method, buckets in self.metrics.items() if bucket in buckets
        }
        if not scored:
            raise KeyError(f"no methods evaluated on bucket {bucket!r}")
        chooser = max if higher_is_better else min
        return chooser(scored, key=scored.get)


def _fit_method(method: str, spec: ExperimentSpec, train: RTPDataset,
                validation: RTPDataset):
    budget = spec.budget
    deep_config = DeepBaselineConfig(
        epochs=budget.deep_epochs, time_epochs=budget.deep_time_epochs,
        learning_rate=budget.learning_rate)
    if method == "Distance-Greedy":
        model = DistanceGreedy()
    elif method == "Time-Greedy":
        model = TimeGreedy()
    elif method == "OR-Tools":
        model = ShortestRouteTSP()
    elif method == "OSquare":
        model = OSquare(n_estimators=budget.osquare_estimators)
    elif method == "DeepRoute":
        model = DeepRoute(deep_config)
    elif method == "DeepETA":
        model = DeepETA(deep_config)
    elif method == "FDNET":
        model = FDNET(deep_config)
    elif method == "Graph2Route":
        model = Graph2Route(deep_config)
    elif method == "M2G4RTP":
        m2g = M2G4RTP(M2G4RTPConfig(seed=11))
        Trainer(m2g, TrainerConfig(
            epochs=budget.m2g_epochs, patience=budget.patience,
            learning_rate=budget.learning_rate)).fit(train, validation)
        return model_predictor(m2g)
    else:
        raise ValueError(f"unknown method {method!r}")
    model.fit(train, validation)
    return baseline_predictor(model)


def _fit_variant(variant: str, spec: ExperimentSpec, train: RTPDataset,
                 validation: RTPDataset):
    model = M2G4RTP(make_variant(variant, M2G4RTPConfig(seed=11)))
    Trainer(model, TrainerConfig(
        epochs=spec.budget.m2g_epochs, patience=spec.budget.patience,
        learning_rate=spec.budget.learning_rate)).fit(train, validation)
    return model_predictor(model)


def run_experiment(spec: Union[str, ExperimentSpec],
                   verbose: bool = False) -> ExperimentResult:
    """Run one spec end to end and return its metric grid."""
    if isinstance(spec, str):
        spec = get_spec(spec)
    start = time.perf_counter()
    world = SyntheticWorld(spec.generator)
    dataset = RTPDataset(world.generate()).filter_paper_scope()
    train, validation, test = dataset.split_by_day()

    metrics: Dict[str, Dict[str, Dict[str, float]]] = {}
    jobs = [(name, "method") for name in spec.methods]
    jobs += [(name, "variant") for name in spec.variants]
    for name, kind in jobs:
        if verbose:
            print(f"[{spec.name}] fitting {name} ...")
        if kind == "method":
            predict = _fit_method(name, spec, train, validation)
        else:
            predict = _fit_variant(name, spec, train, validation)
        evaluation = evaluate_method(name, predict, test,
                                     buckets=spec.buckets)
        metrics[name] = {
            bucket: report.as_dict()
            for bucket, report in evaluation.buckets.items()
        }
    return ExperimentResult(
        spec_name=spec.name,
        description=spec.description,
        metrics=metrics,
        seconds=time.perf_counter() - start,
    )
