"""Declarative experiment specifications.

An :class:`ExperimentSpec` pins down everything needed to reproduce one
comparison: the synthetic world, the split, the competing methods and
their budgets.  The registry exposes the paper's experiments by name so
``run_experiment("table3")`` is a one-liner.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..data.generator import GeneratorConfig

#: Method identifiers understood by the runner.
KNOWN_METHODS = (
    "Distance-Greedy", "Time-Greedy", "OR-Tools", "OSquare",
    "DeepRoute", "DeepETA", "FDNET", "Graph2Route", "M2G4RTP",
)

#: M²G4RTP ablation variants (Fig. 5).
KNOWN_VARIANTS = ("full", "two-step", "w/o aoi", "w/o graph",
                  "w/o uncertainty")


@dataclasses.dataclass
class BudgetConfig:
    """Training budgets for one run."""

    deep_epochs: int = 8
    deep_time_epochs: int = 5
    m2g_epochs: int = 12
    osquare_estimators: int = 25
    patience: int = 5
    learning_rate: float = 3e-3


@dataclasses.dataclass
class ExperimentSpec:
    """One reproducible comparison."""

    name: str
    description: str
    methods: Tuple[str, ...]
    generator: GeneratorConfig = dataclasses.field(
        default_factory=lambda: GeneratorConfig(
            num_aois=60, num_couriers=6, num_days=10,
            instances_per_courier_day=3, seed=2023))
    budget: BudgetConfig = dataclasses.field(default_factory=BudgetConfig)
    buckets: Tuple[str, ...] = ("(3-10]", "(10-20]", "all")
    variants: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        unknown = set(self.methods) - set(KNOWN_METHODS)
        if unknown:
            raise ValueError(f"unknown methods: {sorted(unknown)}")
        unknown_variants = set(self.variants) - set(KNOWN_VARIANTS)
        if unknown_variants:
            raise ValueError(f"unknown variants: {sorted(unknown_variants)}")


def _default_registry() -> Dict[str, ExperimentSpec]:
    all_methods = ("Distance-Greedy", "Time-Greedy", "OR-Tools", "OSquare",
                   "DeepRoute", "FDNET", "Graph2Route", "M2G4RTP")
    return {
        "table3": ExperimentSpec(
            name="table3",
            description="Route prediction across all methods (Table III)",
            methods=all_methods,
        ),
        "table4": ExperimentSpec(
            name="table4",
            description="Time prediction across all methods (Table IV)",
            methods=all_methods,
        ),
        "fig5": ExperimentSpec(
            name="fig5",
            description="Component analysis of M2G4RTP (Fig. 5)",
            methods=(),
            variants=KNOWN_VARIANTS,
            buckets=("all",),
        ),
        "smoke": ExperimentSpec(
            name="smoke",
            description="Tiny fast sanity comparison",
            methods=("Distance-Greedy", "M2G4RTP"),
            generator=GeneratorConfig(num_aois=30, num_couriers=3,
                                      num_days=6,
                                      instances_per_courier_day=2,
                                      seed=5),
            budget=BudgetConfig(deep_epochs=2, deep_time_epochs=2,
                                m2g_epochs=3, osquare_estimators=8),
            buckets=("all",),
        ),
    }


REGISTRY: Dict[str, ExperimentSpec] = _default_registry()


def get_spec(name: str) -> ExperimentSpec:
    """Look up a registered experiment spec by name."""
    if name not in REGISTRY:
        raise KeyError(f"unknown experiment {name!r}; "
                       f"options: {sorted(REGISTRY)}")
    return REGISTRY[name]
