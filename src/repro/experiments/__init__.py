"""Declarative experiment specs, runner and persistent results."""

from .spec import (
    BudgetConfig,
    ExperimentSpec,
    KNOWN_METHODS,
    KNOWN_VARIANTS,
    REGISTRY,
    get_spec,
)
from .runner import ExperimentResult, run_experiment

__all__ = [
    "BudgetConfig", "ExperimentSpec", "KNOWN_METHODS", "KNOWN_VARIANTS",
    "REGISTRY", "get_spec",
    "ExperimentResult", "run_experiment",
]
