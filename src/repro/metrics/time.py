"""Arrival-time prediction metrics: RMSE, MAE, acc@tau (paper Eq. 45)."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _paired(predicted: Sequence[float], actual: Sequence[float]):
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if predicted.shape != actual.shape:
        raise ValueError(
            f"shape mismatch: predicted {predicted.shape} vs actual {actual.shape}")
    if predicted.size == 0:
        raise ValueError("empty prediction arrays")
    return predicted, actual


def rmse(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Root mean squared error (minutes)."""
    predicted, actual = _paired(predicted, actual)
    return float(np.sqrt(np.mean((predicted - actual) ** 2)))


def mae(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Mean absolute error (minutes)."""
    predicted, actual = _paired(predicted, actual)
    return float(np.mean(np.abs(predicted - actual)))


def accuracy_within(predicted: Sequence[float], actual: Sequence[float],
                    threshold: float = 20.0) -> float:
    """acc@tau (Eq. 45): fraction of predictions within ``threshold`` minutes.

    The paper reports acc@20 in percent; this returns a fraction in
    [0, 1] — multiply by 100 for the paper's convention.
    """
    predicted, actual = _paired(predicted, actual)
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    return float(np.mean(np.abs(predicted - actual) < threshold))
