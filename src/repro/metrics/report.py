"""Aggregation of per-instance predictions into the paper's table rows.

Route metrics (HR@3, KRC, LSD) are computed per instance and averaged;
time metrics (RMSE, MAE, acc@20) are pooled over every location of
every instance — matching the paper's per-location formulation of
Eq. 45.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from .route import hit_rate_at_k, kendall_rank_correlation, location_square_deviation
from .time import accuracy_within, mae, rmse


@dataclasses.dataclass
class RoutePrediction:
    """A route prediction paired with its ground truth."""

    predicted: np.ndarray
    actual: np.ndarray


@dataclasses.dataclass
class TimePrediction:
    """Per-location arrival-time predictions paired with ground truth."""

    predicted: np.ndarray
    actual: np.ndarray


@dataclasses.dataclass
class MetricReport:
    """One table cell block: the six paper metrics.

    HR@3 and acc@20 are in percent, as printed in Tables III/IV.
    """

    hr_at_3: float
    krc: float
    lsd: float
    rmse: float
    mae: float
    acc_at_20: float
    num_instances: int

    def as_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)

    def route_row(self) -> str:
        return f"{self.hr_at_3:6.2f}  {self.krc:5.2f}  {self.lsd:6.2f}"

    def time_row(self) -> str:
        return f"{self.rmse:6.2f}  {self.mae:6.2f}  {self.acc_at_20:6.2f}"


def evaluate_route_predictions(predictions: Sequence[RoutePrediction],
                               k: int = 3) -> Dict[str, float]:
    """Average HR@k / KRC / LSD over instances (HR in percent)."""
    if not predictions:
        raise ValueError("no route predictions to evaluate")
    hits = [hit_rate_at_k(p.predicted, p.actual, k) for p in predictions]
    krcs = [kendall_rank_correlation(p.predicted, p.actual) for p in predictions]
    lsds = [location_square_deviation(p.predicted, p.actual) for p in predictions]
    return {
        f"hr@{k}": 100.0 * float(np.mean(hits)),
        "krc": float(np.mean(krcs)),
        "lsd": float(np.mean(lsds)),
    }


def evaluate_time_predictions(predictions: Sequence[TimePrediction],
                              threshold: float = 20.0) -> Dict[str, float]:
    """Pool per-location errors across instances (acc in percent)."""
    if not predictions:
        raise ValueError("no time predictions to evaluate")
    predicted = np.concatenate([np.asarray(p.predicted) for p in predictions])
    actual = np.concatenate([np.asarray(p.actual) for p in predictions])
    return {
        "rmse": rmse(predicted, actual),
        "mae": mae(predicted, actual),
        f"acc@{threshold:.0f}": 100.0 * accuracy_within(predicted, actual, threshold),
    }


def combined_report(route_predictions: Sequence[RoutePrediction],
                    time_predictions: Sequence[TimePrediction]) -> MetricReport:
    """Build the six-metric block used throughout the benchmarks."""
    route = evaluate_route_predictions(route_predictions)
    time = evaluate_time_predictions(time_predictions)
    return MetricReport(
        hr_at_3=route["hr@3"],
        krc=route["krc"],
        lsd=route["lsd"],
        rmse=time["rmse"],
        mae=time["mae"],
        acc_at_20=time["acc@20"],
        num_instances=len(route_predictions),
    )
