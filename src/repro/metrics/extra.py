"""Additional route metrics used in the surrounding literature.

* Edit distance (ED) — used by the Graph2Route paper; here it reduces
  to the number of positions where two permutations disagree, and a
  normalised variant in [0, 1].
* Route length ratio — predicted chained distance divided by the true
  route's chained distance; values near 1 mean the prediction costs
  the courier the same travel as reality.
* ACC@k — prefix accuracy: 1 if the first k predictions match the true
  first k *in order* (stricter than HR@k's set overlap).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.entities import RTPInstance
from .route import _as_route


def edit_distance(predicted: Sequence[int], actual: Sequence[int]) -> int:
    """Positions where the two routes disagree (Hamming on permutations).

    For permutations, substitution-only edit distance equals the count
    of mismatched positions.
    """
    predicted, actual = _as_route(predicted), _as_route(actual)
    if predicted.size != actual.size:
        raise ValueError("routes must have equal length")
    return int(np.sum(predicted != actual))


def normalized_edit_distance(predicted: Sequence[int],
                             actual: Sequence[int]) -> float:
    """Edit distance divided by route length — 0 is perfect, 1 is worst."""
    predicted, actual = _as_route(predicted), _as_route(actual)
    if predicted.size == 0:
        return 0.0
    return edit_distance(predicted, actual) / predicted.size


def prefix_accuracy(predicted: Sequence[int], actual: Sequence[int],
                    k: int = 1) -> float:
    """ACC@k: 1.0 iff the first k steps match exactly, in order."""
    predicted, actual = _as_route(predicted), _as_route(actual)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, predicted.size)
    return float(np.array_equal(predicted[:k], actual[:k]))


def route_length_meters(instance: RTPInstance,
                        route: Sequence[int]) -> float:
    """Total chained travel distance of a route from the courier start."""
    route = _as_route(route)
    position = instance.courier_position
    total = 0.0
    for location_index in route:
        location = instance.locations[int(location_index)]
        total += location.distance_to(*position)
        position = location.coord
    return total


def route_length_ratio(instance: RTPInstance,
                       predicted: Sequence[int]) -> float:
    """Predicted route length / true route length.

    Values < 1 mean the predicted route is *shorter* than the real one
    (couriers do not minimise distance); values near 1 mean the
    prediction implies a realistic travel budget.
    """
    true_length = route_length_meters(instance, instance.route)
    if true_length <= 0:
        raise ValueError("true route has zero length")
    return route_length_meters(instance, predicted) / true_length
