"""Evaluation metrics for route and time prediction (paper Section V-C)."""

from .route import (
    hit_rate_at_k,
    kendall_rank_correlation,
    location_square_deviation,
    ranks_from_route,
)
from .time import accuracy_within, mae, rmse
from .report import (
    MetricReport,
    RoutePrediction,
    TimePrediction,
    combined_report,
    evaluate_route_predictions,
    evaluate_time_predictions,
)
from .extra import (
    edit_distance,
    normalized_edit_distance,
    prefix_accuracy,
    route_length_meters,
    route_length_ratio,
)
from .significance import PairedComparison, paired_comparison

__all__ = [
    "hit_rate_at_k", "kendall_rank_correlation", "location_square_deviation",
    "ranks_from_route",
    "accuracy_within", "mae", "rmse",
    "MetricReport", "RoutePrediction", "TimePrediction",
    "combined_report", "evaluate_route_predictions", "evaluate_time_predictions",
    "edit_distance", "normalized_edit_distance", "prefix_accuracy",
    "route_length_meters", "route_length_ratio",
    "PairedComparison", "paired_comparison",
]
