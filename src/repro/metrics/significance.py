"""Paired significance testing between two methods.

The paper's improvement claims ("3-12% better") are per-test-set point
estimates; this module adds the statistical backing a careful
reproduction should carry: paired bootstrap confidence intervals and a
paired sign-flip permutation test on per-instance metric differences.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np


@dataclasses.dataclass
class PairedComparison:
    """Result of comparing method A against method B on paired scores."""

    mean_difference: float          # mean(a - b)
    ci_low: float                   # bootstrap CI on the mean difference
    ci_high: float
    p_value: float                  # two-sided sign-flip permutation test
    n: int

    @property
    def significant(self) -> bool:
        """True when the 95% CI excludes zero."""
        return self.ci_low > 0 or self.ci_high < 0

    def render(self, label: str = "A-B") -> str:
        star = " *" if self.significant else ""
        return (f"{label}: mean diff {self.mean_difference:+.4f} "
                f"[{self.ci_low:+.4f}, {self.ci_high:+.4f}] "
                f"p={self.p_value:.4f} (n={self.n}){star}")


def paired_comparison(scores_a: Sequence[float], scores_b: Sequence[float],
                      num_resamples: int = 2000, seed: int = 0,
                      confidence: float = 0.95) -> PairedComparison:
    """Bootstrap CI + permutation p-value for mean(a - b).

    ``scores_a[i]`` and ``scores_b[i]`` must be the two methods' scores
    on the *same* instance i.
    """
    a = np.asarray(scores_a, dtype=np.float64)
    b = np.asarray(scores_b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("paired scores must be equal-length 1-D sequences")
    if a.size < 2:
        raise ValueError("need at least two paired scores")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")

    differences = a - b
    rng = np.random.default_rng(seed)
    n = differences.size

    # Bootstrap the mean difference.
    indices = rng.integers(0, n, size=(num_resamples, n))
    bootstrap_means = differences[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    ci_low, ci_high = np.quantile(bootstrap_means, [alpha, 1.0 - alpha])

    # Sign-flip permutation test: under H0 each difference's sign is
    # exchangeable.
    observed = abs(differences.mean())
    signs = rng.choice([-1.0, 1.0], size=(num_resamples, n))
    permuted = np.abs((signs * differences).mean(axis=1))
    p_value = float((np.sum(permuted >= observed - 1e-15) + 1)
                    / (num_resamples + 1))

    return PairedComparison(
        mean_difference=float(differences.mean()),
        ci_low=float(ci_low),
        ci_high=float(ci_high),
        p_value=p_value,
        n=n,
    )
