"""Route prediction metrics: HR@k, KRC, LSD (paper Eqs. 42-44)."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _as_route(route: Sequence[int]) -> np.ndarray:
    route = np.asarray(route, dtype=np.int64)
    n = route.size
    if sorted(route.tolist()) != list(range(n)):
        raise ValueError(f"route must be a permutation of 0..{n - 1}, got {route}")
    return route


def ranks_from_route(route: Sequence[int]) -> np.ndarray:
    """``ranks[node]`` = 0-indexed position of ``node`` in the route."""
    route = _as_route(route)
    ranks = np.empty(route.size, dtype=np.int64)
    ranks[route] = np.arange(route.size)
    return ranks


def hit_rate_at_k(predicted: Sequence[int], actual: Sequence[int],
                  k: int = 3) -> float:
    """HR@k (Eq. 42): overlap of the first-k sets of the two routes.

    When the route is shorter than ``k`` the comparison uses the whole
    route (k is clipped), matching common practice for short samples.
    """
    predicted, actual = _as_route(predicted), _as_route(actual)
    if predicted.size != actual.size:
        raise ValueError("routes must have equal length")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    k = min(k, predicted.size)
    overlap = len(set(predicted[:k].tolist()) & set(actual[:k].tolist()))
    return overlap / k


def kendall_rank_correlation(predicted: Sequence[int],
                             actual: Sequence[int]) -> float:
    """KRC (Eq. 43): (concordant - discordant) / total pairs.

    Since both inputs are strict permutations there are no ties; a
    single-location route has no pairs and scores 1.0 by convention.
    """
    predicted_ranks = ranks_from_route(predicted)
    actual_ranks = ranks_from_route(actual)
    if predicted_ranks.size != actual_ranks.size:
        raise ValueError("routes must have equal length")
    n = predicted_ranks.size
    if n < 2:
        return 1.0
    # Vectorised pair comparison over the upper triangle.
    pred_diff = predicted_ranks[:, None] - predicted_ranks[None, :]
    actual_diff = actual_ranks[:, None] - actual_ranks[None, :]
    upper = np.triu_indices(n, k=1)
    agreement = np.sign(pred_diff[upper]) * np.sign(actual_diff[upper])
    concordant = int(np.sum(agreement > 0))
    discordant = int(np.sum(agreement < 0))
    return (concordant - discordant) / (concordant + discordant)


def location_square_deviation(predicted: Sequence[int],
                              actual: Sequence[int]) -> float:
    """LSD (Eq. 44): mean squared difference of per-location positions."""
    predicted_ranks = ranks_from_route(predicted)
    actual_ranks = ranks_from_route(actual)
    if predicted_ranks.size != actual_ranks.size:
        raise ValueError("routes must have equal length")
    deviation = predicted_ranks.astype(float) - actual_ranks.astype(float)
    return float(np.mean(deviation ** 2))
