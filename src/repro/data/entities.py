"""Domain entities for the instant-logistics RTP problem.

Mirrors the paper's preliminaries (Section III): locations (Def. 1),
AOIs (Def. 2), couriers and RTP requests/instances (Section III-B).
All times are minutes; coordinates are (longitude, latitude) degrees.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

# Equirectangular metres-per-degree at Hangzhou latitude (~30.2 N).
_METERS_PER_DEG_LAT = 111_194.9
_METERS_PER_DEG_LON = 96_105.5


def geo_distance_meters(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Equirectangular distance in metres — accurate at city scale."""
    dx = (lon1 - lon2) * _METERS_PER_DEG_LON
    dy = (lat1 - lat2) * _METERS_PER_DEG_LAT
    return float(np.hypot(dx, dy))


def pairwise_distance_matrix(coords: np.ndarray) -> np.ndarray:
    """All-pairs equirectangular distances for an ``(n, 2)`` lon/lat array."""
    coords = np.asarray(coords, dtype=np.float64)
    dx = (coords[:, None, 0] - coords[None, :, 0]) * _METERS_PER_DEG_LON
    dy = (coords[:, None, 1] - coords[None, :, 1]) * _METERS_PER_DEG_LAT
    return np.hypot(dx, dy)


@dataclasses.dataclass(frozen=True)
class AOI:
    """Area Of Interest (paper Def. 2): ``a = (id, type, g^a)``."""

    aoi_id: int
    aoi_type: int
    center: Tuple[float, float]  # (lon, lat)

    def distance_to(self, lon: float, lat: float) -> float:
        return geo_distance_meters(self.center[0], self.center[1], lon, lat)


@dataclasses.dataclass(frozen=True)
class Location:
    """Pick-up location (paper Def. 1): ``l = (g^l, a^l, t_deadline)``.

    ``accept_time`` and ``deadline`` are minutes on the same clock as the
    instance's ``request_time``.
    """

    location_id: int
    coord: Tuple[float, float]  # (lon, lat)
    aoi_id: int
    accept_time: float
    deadline: float

    def distance_to(self, lon: float, lat: float) -> float:
        return geo_distance_meters(self.coord[0], self.coord[1], lon, lat)


@dataclasses.dataclass(frozen=True)
class Courier:
    """Courier profile — the global features of Eq. 17 plus behaviour knobs.

    ``speed`` is metres/minute. ``aoi_type_preference`` orders AOI types;
    it is the latent cause of the courier's high-level transfer mode and
    is *not* exposed as a model feature (models must learn it from
    routes, as in the real system).
    """

    courier_id: int
    speed: float
    working_hours: float
    attendance_rate: float
    service_time_mean: float
    aoi_type_preference: Tuple[int, ...]

    def profile_features(self) -> np.ndarray:
        """The courier's observable profile vector ``u`` (Eq. 28)."""
        return np.array([self.working_hours, self.speed, self.attendance_rate])


@dataclasses.dataclass
class RTPInstance:
    """One RTP sample: a request plus ground-truth route/time labels.

    Attributes
    ----------
    courier:
        The serving courier.
    request_time:
        Minutes-of-day when the prediction request fires (paper's ``t``).
    courier_position:
        Courier (lon, lat) at request time.
    locations:
        Unvisited locations, in *input* order (the indexing the route
        permutation refers to).
    aois:
        The distinct AOIs of those locations, in input order.
    route:
        ``route[j]`` = index into ``locations`` of the j-th visited
        location (paper Def. 4).
    arrival_times:
        ``arrival_times[i]`` = minutes from ``request_time`` until the
        courier arrives at ``locations[i]`` (paper Def. 5).
    aoi_route / aoi_arrival_times:
        The same at AOI level; an AOI's arrival time is the arrival at
        its first-visited location.
    weather / weekday:
        Global context codes (Eq. 17).
    """

    courier: Courier
    request_time: float
    courier_position: Tuple[float, float]
    locations: List[Location]
    aois: List[AOI]
    route: np.ndarray
    arrival_times: np.ndarray
    aoi_route: np.ndarray
    aoi_arrival_times: np.ndarray
    weather: int = 0
    weekday: int = 0
    day: int = 0

    def __post_init__(self) -> None:
        self.route = np.asarray(self.route, dtype=np.int64)
        self.arrival_times = np.asarray(self.arrival_times, dtype=np.float64)
        self.aoi_route = np.asarray(self.aoi_route, dtype=np.int64)
        self.aoi_arrival_times = np.asarray(self.aoi_arrival_times, dtype=np.float64)
        self.validate()

    # ------------------------------------------------------------------
    @property
    def num_locations(self) -> int:
        return len(self.locations)

    @property
    def num_aois(self) -> int:
        return len(self.aois)

    def location_coords(self) -> np.ndarray:
        return np.array([loc.coord for loc in self.locations])

    def aoi_coords(self) -> np.ndarray:
        return np.array([aoi.center for aoi in self.aois])

    def aoi_index_of_location(self) -> np.ndarray:
        """Map each location index to the index of its AOI in ``aois``."""
        by_id: Dict[int, int] = {aoi.aoi_id: i for i, aoi in enumerate(self.aois)}
        return np.array([by_id[loc.aoi_id] for loc in self.locations], dtype=np.int64)

    def location_ranks(self) -> np.ndarray:
        """``ranks[i]`` = position of location ``i`` in the true route."""
        ranks = np.empty(self.num_locations, dtype=np.int64)
        ranks[self.route] = np.arange(self.num_locations)
        return ranks

    def aoi_ranks(self) -> np.ndarray:
        ranks = np.empty(self.num_aois, dtype=np.int64)
        ranks[self.aoi_route] = np.arange(self.num_aois)
        return ranks

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the structural invariants every instance must satisfy."""
        n, m = self.num_locations, self.num_aois
        if n == 0:
            raise ValueError("instance has no locations")
        if sorted(self.route.tolist()) != list(range(n)):
            raise ValueError(f"route is not a permutation of 0..{n - 1}: {self.route}")
        if sorted(self.aoi_route.tolist()) != list(range(m)):
            raise ValueError(f"aoi_route is not a permutation of 0..{m - 1}")
        if self.arrival_times.shape != (n,):
            raise ValueError("arrival_times length mismatch")
        if self.aoi_arrival_times.shape != (m,):
            raise ValueError("aoi_arrival_times length mismatch")
        if np.any(self.arrival_times < 0) or np.any(self.aoi_arrival_times < 0):
            raise ValueError("arrival times must be non-negative minutes from request")
        aoi_ids = {aoi.aoi_id for aoi in self.aois}
        for loc in self.locations:
            if loc.aoi_id not in aoi_ids:
                raise ValueError(f"location {loc.location_id} references unknown AOI {loc.aoi_id}")

    def describe(self) -> str:
        return (
            f"RTPInstance(courier={self.courier.courier_id}, n={self.num_locations}, "
            f"m={self.num_aois}, t={self.request_time:.0f}, day={self.day})"
        )
