"""Instance perturbations for robustness evaluation and failure injection.

Real feature pipelines are noisy: GPS jitter, stale deadlines, orders
cancelled after the graph was built.  These transforms produce valid
perturbed instances so tests and benches can measure how gracefully
each model degrades.

All transforms are pure: they return new instances and never mutate
their input.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from .entities import AOI, Location, RTPInstance

#: Degrees per metre (approximate, Hangzhou latitude).
_DEG_PER_M_LON = 1.0 / 96_105.5
_DEG_PER_M_LAT = 1.0 / 111_194.9


def jitter_coordinates(instance: RTPInstance, sigma_meters: float,
                       rng: np.random.Generator) -> RTPInstance:
    """Add isotropic GPS noise to every location coordinate.

    Labels are unchanged — the courier still walked the true route —
    so this measures sensitivity of the *features* to position noise.
    """
    if sigma_meters < 0:
        raise ValueError("sigma_meters must be non-negative")
    locations = []
    for location in instance.locations:
        dlon = rng.normal(0.0, sigma_meters) * _DEG_PER_M_LON
        dlat = rng.normal(0.0, sigma_meters) * _DEG_PER_M_LAT
        locations.append(dataclasses.replace(
            location, coord=(location.coord[0] + dlon,
                             location.coord[1] + dlat)))
    return dataclasses.replace(instance, locations=locations)


def perturb_deadlines(instance: RTPInstance, sigma_minutes: float,
                      rng: np.random.Generator) -> RTPInstance:
    """Add Gaussian noise to every deadline (stale-promise simulation)."""
    if sigma_minutes < 0:
        raise ValueError("sigma_minutes must be non-negative")
    locations = [
        dataclasses.replace(
            location,
            deadline=location.deadline + float(rng.normal(0.0, sigma_minutes)))
        for location in instance.locations
    ]
    return dataclasses.replace(instance, locations=locations)


def drop_locations(instance: RTPInstance, keep: Sequence[int]) -> RTPInstance:
    """Restrict an instance to the location indices in ``keep``.

    Models a cancellation between feature extraction and prediction.
    The remaining route keeps its relative order; arrival times of the
    kept locations are retained (the lower bound of what re-simulation
    would give); AOIs without remaining members are removed.
    """
    keep_sorted = sorted(set(int(i) for i in keep))
    n = instance.num_locations
    if not keep_sorted:
        raise ValueError("keep must retain at least one location")
    if keep_sorted[0] < 0 or keep_sorted[-1] >= n:
        raise ValueError(f"keep indices out of range 0..{n - 1}")

    old_to_new = {old: new for new, old in enumerate(keep_sorted)}
    locations = [instance.locations[i] for i in keep_sorted]
    arrival_times = instance.arrival_times[keep_sorted]

    route = np.array([old_to_new[int(i)] for i in instance.route
                      if int(i) in old_to_new], dtype=np.int64)

    kept_aoi_ids = {location.aoi_id for location in locations}
    aois = [aoi for aoi in instance.aois if aoi.aoi_id in kept_aoi_ids]
    aoi_index = {aoi.aoi_id: i for i, aoi in enumerate(aois)}

    # AOI route: first-seen order along the reduced location route.
    aoi_route: List[int] = []
    for location_index in route:
        index = aoi_index[locations[int(location_index)].aoi_id]
        if index not in aoi_route:
            aoi_route.append(index)
    aoi_arrivals = np.full(len(aois), np.inf)
    for location_index in route:
        index = aoi_index[locations[int(location_index)].aoi_id]
        aoi_arrivals[index] = min(aoi_arrivals[index],
                                  arrival_times[int(location_index)])

    return dataclasses.replace(
        instance,
        locations=locations,
        aois=aois,
        route=route,
        arrival_times=arrival_times,
        aoi_route=np.array(aoi_route, dtype=np.int64),
        aoi_arrival_times=aoi_arrivals,
    )


def drop_random_locations(instance: RTPInstance, keep_fraction: float,
                          rng: np.random.Generator,
                          min_keep: int = 2) -> RTPInstance:
    """Randomly keep ``keep_fraction`` of the locations (at least ``min_keep``)."""
    if not 0 < keep_fraction <= 1:
        raise ValueError("keep_fraction must be in (0, 1]")
    n = instance.num_locations
    count = max(min_keep, int(round(n * keep_fraction)))
    count = min(count, n)
    keep = rng.choice(n, size=count, replace=False)
    return drop_locations(instance, keep)


def robustness_sweep(predict, instances: Sequence[RTPInstance],
                     noise_levels: Sequence[float], transform,
                     metric, seed: int = 0) -> List[float]:
    """Evaluate ``metric`` under increasing perturbation.

    Parameters
    ----------
    predict:
        ``instance -> (route, times)`` callable.
    noise_levels:
        Passed as the transform's noise argument, one sweep point each.
    transform:
        ``(instance, level, rng) -> instance``.
    metric:
        ``(route, times, instance) -> float`` scored on the *clean*
        labels of the perturbed instance.

    Returns one aggregate (mean) score per noise level.
    """
    results = []
    for level in noise_levels:
        rng = np.random.default_rng(seed)
        scores = []
        for instance in instances:
            perturbed = transform(instance, level, rng)
            route, times = predict(perturbed)
            scores.append(metric(route, times, perturbed))
        results.append(float(np.mean(scores)))
    return results
