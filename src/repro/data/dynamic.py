"""Dynamic courier-day simulation: RTP requests as the order set changes.

The deployed system (paper Sections V-F and VI) re-predicts whenever a
courier's set of unvisited locations changes — a pickup is completed or
a new order is dispatched.  This module simulates a full working day
with Poisson-ish order arrivals and emits one labelled
:class:`~repro.data.entities.RTPInstance` snapshot per re-plan event,
so the service layer can be replayed against a realistic query stream.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from .entities import Location, RTPInstance
from .generator import SyntheticWorld, _WEATHER_SPEED_FACTOR, NUM_WEATHER_TYPES


@dataclasses.dataclass
class DynamicDay:
    """The output of one simulated day.

    ``snapshots[i]`` is the labelled RTP instance visible at the i-th
    re-plan event; ``event_kinds[i]`` says what triggered it
    (``"start"``, ``"arrival"`` of new orders, or ``"pickup"``).
    """

    snapshots: List[RTPInstance]
    event_kinds: List[str]

    def __len__(self) -> int:
        return len(self.snapshots)


class DynamicDaySimulator:
    """Simulates one courier-day with mid-route order arrivals."""

    def __init__(self, world: SyntheticWorld, courier_index: int = 0,
                 initial_orders: int = 6, arrival_batches: int = 3,
                 orders_per_batch: int = 3, min_snapshot_orders: int = 3,
                 seed: int = 0):
        if initial_orders < min_snapshot_orders:
            raise ValueError("initial_orders must cover min_snapshot_orders")
        self.world = world
        self.courier_index = courier_index
        self.initial_orders = initial_orders
        self.arrival_batches = arrival_batches
        self.orders_per_batch = orders_per_batch
        self.min_snapshot_orders = min_snapshot_orders
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _sample_orders(self, count: int, base_time: float,
                       next_id: int) -> List[Location]:
        """New orders within the courier's service zone."""
        cfg = self.world.config
        rng = self._rng
        zone = self.world._zones[self.courier_index]
        orders = []
        for offset in range(count):
            aoi = self.world.aois[int(rng.choice(zone))]
            lon = aoi.center[0] + rng.normal(0.0, cfg.locations_per_aoi_spread)
            lat = aoi.center[1] + rng.normal(0.0, cfg.locations_per_aoi_spread)
            accept = base_time - float(rng.uniform(1.0, 30.0))
            orders.append(Location(
                location_id=next_id + offset,
                coord=(float(lon), float(lat)),
                aoi_id=aoi.aoi_id,
                accept_time=accept,
                deadline=accept + cfg.promise_window_minutes,
            ))
        return orders

    def _plan(self, position: Tuple[float, float], clock: float,
              unvisited: List[Location], weather: int
              ) -> Tuple[np.ndarray, np.ndarray]:
        """Ground-truth continuation: the courier's policy from here."""
        aois = self._aois_of(unvisited)
        route, _ = self.world._simulate_route(
            self.world.couriers[self.courier_index], position,
            unvisited, aois, clock, self._rng)
        ordered = [unvisited[i] for i in route]
        arrivals_by_step = self.world._simulate_times(
            self.world.couriers[self.courier_index], position, ordered,
            weather, self._rng)
        arrival = np.zeros(len(unvisited))
        arrival[route] = arrivals_by_step
        return route, arrival

    def _aois_of(self, locations: List[Location]):
        seen = []
        by_id = {aoi.aoi_id: aoi for aoi in self.world.aois}
        for location in locations:
            if location.aoi_id not in {aoi.aoi_id for aoi in seen}:
                seen.append(by_id[location.aoi_id])
        return seen

    def _snapshot(self, position: Tuple[float, float], clock: float,
                  unvisited: List[Location], weather: int, weekday: int,
                  day: int) -> Tuple[RTPInstance, np.ndarray]:
        route, arrival = self._plan(position, clock, unvisited, weather)
        aois = self._aois_of(unvisited)
        aoi_index = {aoi.aoi_id: i for i, aoi in enumerate(aois)}
        aoi_route: List[int] = []
        for location_index in route:
            index = aoi_index[unvisited[int(location_index)].aoi_id]
            if index not in aoi_route:
                aoi_route.append(index)
        aoi_arrival = np.full(len(aois), np.inf)
        for location_index in route:
            index = aoi_index[unvisited[int(location_index)].aoi_id]
            aoi_arrival[index] = min(aoi_arrival[index],
                                     arrival[int(location_index)])
        instance = RTPInstance(
            courier=self.world.couriers[self.courier_index],
            request_time=clock,
            courier_position=position,
            locations=list(unvisited),
            aois=aois,
            route=route,
            arrival_times=arrival,
            aoi_route=np.array(aoi_route, dtype=np.int64),
            aoi_arrival_times=aoi_arrival,
            weather=weather,
            weekday=day % 7,
            day=day,
        )
        return instance, route

    # ------------------------------------------------------------------
    def simulate(self, day: int = 0) -> DynamicDay:
        """Run one day; returns the stream of labelled snapshots."""
        rng = self._rng
        weather = int(rng.choice(NUM_WEATHER_TYPES,
                                 p=[0.55, 0.25, 0.15, 0.05]))
        clock = float(rng.uniform(8 * 60, 10 * 60))
        courier = self.world.couriers[self.courier_index]
        speed = courier.speed * _WEATHER_SPEED_FACTOR[weather]

        next_id = 0
        unvisited = self._sample_orders(self.initial_orders, clock, next_id)
        next_id += self.initial_orders
        arrival_times = sorted(
            float(rng.uniform(clock + 20, clock + 240))
            for _ in range(self.arrival_batches))

        # Start roughly at the first order's AOI neighbourhood.
        position = self.world._courier_start(self._aois_of(unvisited), rng)

        snapshots: List[RTPInstance] = []
        kinds: List[str] = []
        instance, plan = self._snapshot(position, clock, unvisited,
                                        weather, day % 7, day)
        snapshots.append(instance)
        kinds.append("start")

        plan_queue = list(plan)
        while unvisited:
            if not plan_queue:
                instance, plan = self._snapshot(position, clock, unvisited,
                                                weather, day % 7, day)
                plan_queue = list(plan)
            next_index = int(plan_queue[0])
            target = unvisited[next_index]
            travel = target.distance_to(*position) / speed
            pickup_time = clock + travel

            if arrival_times and arrival_times[0] <= pickup_time:
                # New orders land before the next pickup: re-plan.
                event_time = arrival_times.pop(0)
                clock = max(clock, event_time)
                new_orders = self._sample_orders(
                    self.orders_per_batch, clock, next_id)
                next_id += self.orders_per_batch
                unvisited = unvisited + new_orders
                instance, plan = self._snapshot(position, clock, unvisited,
                                                weather, day % 7, day)
                snapshots.append(instance)
                kinds.append("arrival")
                plan_queue = list(plan)
                continue

            # Complete the pickup.
            service = rng.gamma(
                shape=1.0 / self.world.config.service_time_noise ** 2,
                scale=(courier.service_time_mean
                       * self.world.config.service_time_noise ** 2))
            clock = pickup_time + service
            position = target.coord
            removed = unvisited.pop(next_index)
            plan_queue = [i if i < next_index else i - 1
                          for i in plan_queue[1:]]
            if len(unvisited) >= self.min_snapshot_orders:
                instance, plan = self._snapshot(position, clock, unvisited,
                                                weather, day % 7, day)
                snapshots.append(instance)
                kinds.append("pickup")
                plan_queue = list(plan)

        return DynamicDay(snapshots=snapshots, event_kinds=kinds)
