"""Dataset container, day-based splits and size buckets.

The paper filters to routes with n ≤ 20 locations / m ≤ 10 AOIs, splits
the 3 months into 65/17/10 days for train/val/test, and reports metrics
bucketed by route length: n ∈ (3, 10] and n ∈ (10, 20].
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .entities import RTPInstance

#: Paper's evaluation buckets: label -> (low, high] on n.
SIZE_BUCKETS: Dict[str, Tuple[int, int]] = {
    "(3-10]": (3, 10),
    "(10-20]": (10, 20),
    "all": (0, 10 ** 9),
}


class RTPDataset:
    """An ordered collection of :class:`RTPInstance` with split helpers."""

    def __init__(self, instances: Sequence[RTPInstance]):
        self.instances: List[RTPInstance] = list(instances)

    def __len__(self) -> int:
        return len(self.instances)

    def __iter__(self) -> Iterator[RTPInstance]:
        return iter(self.instances)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return RTPDataset(self.instances[index])
        return self.instances[index]

    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[RTPInstance], bool]) -> "RTPDataset":
        return RTPDataset([inst for inst in self.instances if predicate(inst)])

    def filter_paper_scope(self, max_locations: int = 20,
                           max_aois: int = 10) -> "RTPDataset":
        """The paper's training filter: n ≤ 20 and m ≤ 10."""
        return self.filter(
            lambda inst: inst.num_locations <= max_locations
            and inst.num_aois <= max_aois
        )

    def bucket(self, label: str) -> "RTPDataset":
        """Instances whose location count falls in a named size bucket."""
        if label not in SIZE_BUCKETS:
            raise KeyError(f"unknown bucket {label!r}; options: {sorted(SIZE_BUCKETS)}")
        low, high = SIZE_BUCKETS[label]
        return self.filter(lambda inst: low < inst.num_locations <= high)

    # ------------------------------------------------------------------
    def days(self) -> List[int]:
        return sorted({inst.day for inst in self.instances})

    def split_by_day(self, train_fraction: float = 0.65,
                     val_fraction: float = 0.20
                     ) -> Tuple["RTPDataset", "RTPDataset", "RTPDataset"]:
        """Chronological split, mirroring the paper's 65/17/10-day split."""
        days = self.days()
        if not days:
            raise ValueError("cannot split an empty dataset")
        n_train = max(1, int(round(len(days) * train_fraction)))
        n_val = max(1, int(round(len(days) * val_fraction)))
        train_days = set(days[:n_train])
        val_days = set(days[n_train:n_train + n_val])
        test_days = set(days[n_train + n_val:]) or {days[-1]}
        train = self.filter(lambda inst: inst.day in train_days)
        val = self.filter(lambda inst: inst.day in val_days)
        test = self.filter(lambda inst: inst.day in test_days)
        return train, val, test

    def shuffled(self, rng: np.random.Generator) -> "RTPDataset":
        order = rng.permutation(len(self.instances))
        return RTPDataset([self.instances[i] for i in order])

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Descriptive statistics matching the paper's Section V-A."""
        if not self.instances:
            return {"num_instances": 0}
        n_locations = np.array([inst.num_locations for inst in self.instances])
        n_aois = np.array([inst.num_aois for inst in self.instances])
        location_times = np.concatenate([inst.arrival_times for inst in self.instances])
        aoi_times = np.concatenate([inst.aoi_arrival_times for inst in self.instances])
        return {
            "num_instances": len(self.instances),
            "num_days": len(self.days()),
            "mean_locations": float(n_locations.mean()),
            "mean_aois": float(n_aois.mean()),
            "max_locations": int(n_locations.max()),
            "max_aois": int(n_aois.max()),
            "mean_location_arrival_min": float(location_times.mean()),
            "mean_aoi_arrival_min": float(aoi_times.mean()),
        }
