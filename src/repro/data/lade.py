"""LaDe-style CSV import/export.

The public LaDe dataset (Wu et al., 2023) releases courier pick-up
records with one row per package event.  This module round-trips
:class:`RTPInstance` objects through that row shape so users with real
data can feed it to the models, and so the synthetic generator can emit
files in the public format.

Expected columns (one row per location of an instance)::

    instance_id, day, courier_id, courier_speed, courier_working_hours,
    courier_attendance, courier_service_time, request_time,
    courier_lon, courier_lat, weather, weekday,
    location_id, lon, lat, aoi_id, aoi_type, aoi_lon, aoi_lat,
    accept_time, deadline, visit_order, arrival_minutes
"""

from __future__ import annotations

import csv
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from .entities import AOI, Courier, Location, RTPInstance
from .dataset import RTPDataset

CSV_COLUMNS = [
    "instance_id", "day", "courier_id", "courier_speed",
    "courier_working_hours", "courier_attendance", "courier_service_time",
    "request_time", "courier_lon", "courier_lat", "weather", "weekday",
    "location_id", "lon", "lat", "aoi_id", "aoi_type", "aoi_lon", "aoi_lat",
    "accept_time", "deadline", "visit_order", "arrival_minutes",
]


def write_csv(instances: Sequence[RTPInstance], path: Union[str, Path]) -> None:
    """Write instances to a LaDe-style CSV file."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_COLUMNS)
        writer.writeheader()
        for instance_id, instance in enumerate(instances):
            ranks = instance.location_ranks()
            aoi_by_id = {aoi.aoi_id: aoi for aoi in instance.aois}
            for i, location in enumerate(instance.locations):
                aoi = aoi_by_id[location.aoi_id]
                writer.writerow({
                    "instance_id": instance_id,
                    "day": instance.day,
                    "courier_id": instance.courier.courier_id,
                    "courier_speed": instance.courier.speed,
                    "courier_working_hours": instance.courier.working_hours,
                    "courier_attendance": instance.courier.attendance_rate,
                    "courier_service_time": instance.courier.service_time_mean,
                    "request_time": instance.request_time,
                    "courier_lon": instance.courier_position[0],
                    "courier_lat": instance.courier_position[1],
                    "weather": instance.weather,
                    "weekday": instance.weekday,
                    "location_id": location.location_id,
                    "lon": location.coord[0],
                    "lat": location.coord[1],
                    "aoi_id": location.aoi_id,
                    "aoi_type": aoi.aoi_type,
                    "aoi_lon": aoi.center[0],
                    "aoi_lat": aoi.center[1],
                    "accept_time": location.accept_time,
                    "deadline": location.deadline,
                    "visit_order": int(ranks[i]),
                    "arrival_minutes": instance.arrival_times[i],
                })


def read_csv(path: Union[str, Path]) -> RTPDataset:
    """Load instances from a LaDe-style CSV file."""
    path = Path(path)
    rows_by_instance: Dict[int, List[dict]] = defaultdict(list)
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(CSV_COLUMNS) - set(reader.fieldnames or [])
        if missing:
            raise ValueError(f"CSV {path} missing columns: {sorted(missing)}")
        for row in reader:
            rows_by_instance[int(row["instance_id"])].append(row)

    instances = []
    for instance_id in sorted(rows_by_instance):
        instances.append(_instance_from_rows(rows_by_instance[instance_id]))
    return RTPDataset(instances)


def _instance_from_rows(rows: List[dict]) -> RTPInstance:
    first = rows[0]
    courier = Courier(
        courier_id=int(first["courier_id"]),
        speed=float(first["courier_speed"]),
        working_hours=float(first["courier_working_hours"]),
        attendance_rate=float(first["courier_attendance"]),
        service_time_mean=float(first["courier_service_time"]),
        aoi_type_preference=tuple(range(6)),  # latent; not recoverable from logs
    )

    locations: List[Location] = []
    arrival_times: List[float] = []
    visit_orders: List[int] = []
    aois_by_id: Dict[int, AOI] = {}
    aoi_first_seen: List[int] = []
    for row in rows:
        aoi_id = int(row["aoi_id"])
        if aoi_id not in aois_by_id:
            aois_by_id[aoi_id] = AOI(
                aoi_id=aoi_id,
                aoi_type=int(row["aoi_type"]),
                center=(float(row["aoi_lon"]), float(row["aoi_lat"])),
            )
            aoi_first_seen.append(aoi_id)
        locations.append(Location(
            location_id=int(row["location_id"]),
            coord=(float(row["lon"]), float(row["lat"])),
            aoi_id=aoi_id,
            accept_time=float(row["accept_time"]),
            deadline=float(row["deadline"]),
        ))
        arrival_times.append(float(row["arrival_minutes"]))
        visit_orders.append(int(row["visit_order"]))

    n = len(locations)
    route = np.empty(n, dtype=np.int64)
    route[np.asarray(visit_orders)] = np.arange(n)

    aois = [aois_by_id[aoi_id] for aoi_id in aoi_first_seen]
    aoi_index = {aoi_id: i for i, aoi_id in enumerate(aoi_first_seen)}
    arrival = np.asarray(arrival_times)

    # AOI route/arrivals from first-visited location per AOI.
    m = len(aois)
    aoi_arrival = np.full(m, np.inf)
    for loc_index in route:
        idx = aoi_index[locations[loc_index].aoi_id]
        aoi_arrival[idx] = min(aoi_arrival[idx], arrival[loc_index])
    aoi_route = np.argsort(aoi_arrival, kind="stable").astype(np.int64)

    return RTPInstance(
        courier=courier,
        request_time=float(first["request_time"]),
        courier_position=(float(first["courier_lon"]), float(first["courier_lat"])),
        locations=locations,
        aois=aois,
        route=route,
        arrival_times=arrival,
        aoi_route=aoi_route,
        aoi_arrival_times=aoi_arrival,
        weather=int(first["weather"]),
        weekday=int(first["weekday"]),
        day=int(first["day"]),
    )
