"""Alternative dataset splits for generalization studies.

The paper splits chronologically (by day).  Production systems also
care about **courier cold-start**: how well the model serves couriers
it never saw in training.  :func:`split_by_courier` holds out whole
couriers; evaluating on the held-out set measures how much of the model
is per-courier memorisation (the courier embedding) vs transferable
structure (the graph encoder and spatio-temporal features).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .dataset import RTPDataset


def split_by_courier(dataset: RTPDataset, holdout_fraction: float = 0.25,
                     seed: int = 0) -> Tuple[RTPDataset, RTPDataset]:
    """Split into (seen-courier, held-out-courier) datasets.

    At least one courier lands on each side.
    """
    if not 0 < holdout_fraction < 1:
        raise ValueError("holdout_fraction must be in (0, 1)")
    courier_ids = sorted({i.courier.courier_id for i in dataset})
    if len(courier_ids) < 2:
        raise ValueError("need at least two couriers to split by courier")
    rng = np.random.default_rng(seed)
    shuffled = list(rng.permutation(courier_ids))
    holdout_count = max(1, int(round(len(courier_ids) * holdout_fraction)))
    holdout_count = min(holdout_count, len(courier_ids) - 1)
    held_out = set(shuffled[:holdout_count])
    seen = dataset.filter(lambda i: i.courier.courier_id not in held_out)
    unseen = dataset.filter(lambda i: i.courier.courier_id in held_out)
    return seen, unseen


def cold_start_protocol(dataset: RTPDataset, holdout_fraction: float = 0.25,
                        train_fraction: float = 0.7, seed: int = 0
                        ) -> Tuple[RTPDataset, RTPDataset, RTPDataset]:
    """(train, seen-courier test, unseen-courier test).

    Training and the seen test share couriers but not days; the unseen
    test contains only held-out couriers.
    """
    seen, unseen = split_by_courier(dataset, holdout_fraction, seed)
    days = sorted({i.day for i in seen})
    cut = max(1, int(round(len(days) * train_fraction)))
    train_days = set(days[:cut])
    train = seen.filter(lambda i: i.day in train_days)
    seen_test = seen.filter(lambda i: i.day not in train_days)
    if not len(seen_test):
        seen_test = seen.filter(lambda i: i.day == days[-1])
    return train, seen_test, unseen
