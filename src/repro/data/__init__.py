"""Data substrate: entities, synthetic generator, dataset containers, IO."""

from .entities import (
    AOI,
    Courier,
    Location,
    RTPInstance,
    geo_distance_meters,
    pairwise_distance_matrix,
)
from .generator import (
    NUM_AOI_TYPES,
    NUM_WEATHER_TYPES,
    GeneratorConfig,
    SyntheticWorld,
    generate_dataset,
    transfer_statistics,
)
from .dataset import RTPDataset, SIZE_BUCKETS
from .lade import read_csv, write_csv, CSV_COLUMNS
from .dynamic import DynamicDay, DynamicDaySimulator
from .splits import cold_start_protocol, split_by_courier
from .transforms import (
    drop_locations,
    drop_random_locations,
    jitter_coordinates,
    perturb_deadlines,
    robustness_sweep,
)

__all__ = [
    "AOI", "Courier", "Location", "RTPInstance",
    "geo_distance_meters", "pairwise_distance_matrix",
    "NUM_AOI_TYPES", "NUM_WEATHER_TYPES",
    "GeneratorConfig", "SyntheticWorld", "generate_dataset",
    "transfer_statistics",
    "RTPDataset", "SIZE_BUCKETS",
    "read_csv", "write_csv", "CSV_COLUMNS",
    "drop_locations", "drop_random_locations", "jitter_coordinates",
    "perturb_deadlines", "robustness_sweep",
    "DynamicDay", "DynamicDaySimulator",
    "cold_start_protocol", "split_by_courier",
]
