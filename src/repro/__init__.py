"""M²G4RTP reproduction: instant-logistics route and time joint prediction.

Reproduction of Cai et al., "M²G4RTP: A Multi-Level and Multi-Task
Graph Model for Instant-Logistics Route and Time Joint Prediction"
(ICDE 2023), built on a pure-numpy autodiff substrate.

Quickstart::

    from repro import (GeneratorConfig, SyntheticWorld, RTPDataset,
                       M2G4RTP, Trainer, model_predictor, evaluate_method)

    world = SyntheticWorld(GeneratorConfig(seed=0))
    data = RTPDataset(world.generate())
    train, val, test = data.split_by_day()
    model = M2G4RTP()
    Trainer(model).fit(train, val)
    print(evaluate_method("M2G4RTP", model_predictor(model), test))
"""

__version__ = "1.0.0"

from . import autodiff, baselines, core, data, deploy, eval, experiments, graphs
from . import kernels, load, metrics, nn, obs, parallel, service, training

# Convenience re-exports of the most-used names.
from .data import (
    AOI,
    Courier,
    GeneratorConfig,
    Location,
    RTPDataset,
    RTPInstance,
    SyntheticWorld,
    generate_dataset,
)
from .graphs import GraphBuilder, MultiLevelGraph
from .core import M2G4RTP, M2G4RTPConfig, RTPTargets, make_variant
from .training import Trainer, TrainerConfig, train_m2g4rtp
from .eval import evaluate_method, format_table, model_predictor, baseline_predictor
from .service import ETAService, OrderSortingService, RTPRequest, RTPService
from .parallel import DataParallelTrainer, ParallelConfig, ParallelDataLoader

__all__ = [
    "autodiff", "baselines", "core", "data", "deploy", "eval", "experiments",
    "graphs", "kernels", "load", "metrics", "nn", "obs", "parallel",
    "service", "training",
    "DataParallelTrainer", "ParallelConfig", "ParallelDataLoader",
    "AOI", "Courier", "Location", "RTPInstance", "RTPDataset",
    "GeneratorConfig", "SyntheticWorld", "generate_dataset",
    "GraphBuilder", "MultiLevelGraph",
    "M2G4RTP", "M2G4RTPConfig", "RTPTargets", "make_variant",
    "Trainer", "TrainerConfig", "train_m2g4rtp",
    "evaluate_method", "format_table", "model_predictor", "baseline_predictor",
    "RTPRequest", "RTPService", "OrderSortingService", "ETAService",
    "__version__",
]
