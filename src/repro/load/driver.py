"""wrk2-style open-loop constant-rate driver over an RTP service stack.

Closed-loop load generators wait for each response before sending the
next request, so a slow server quietly throttles its own load and the
measured latency hides the queue (coordinated omission).  This driver
is **open-loop**: request *i* of a phase is scheduled at the fixed
wall-clock instant ``start + i / rate`` regardless of how long earlier
requests took, and latency is measured **from the scheduled arrival
time** — so when service time exceeds the arrival interval, the
growing backlog shows up as monotonically climbing latencies instead
of disappearing into an idle generator.

The driver exposes its current backlog (arrivals already due but not
yet issued) through :class:`BacklogProbe`, which duck-types the
``pending`` attribute of :class:`~repro.service.MicroBatcher`; handing
the probe to :class:`~repro.deploy.ResilientRTPService` makes
admission-control shedding respond to real open-loop queue pressure.

Per-phase latency histograms and degraded/shed counters are emitted
through the shared :class:`~repro.obs.MetricsRegistry`
(``load_*{scenario, phase}`` series), the same registry the resilience
layer writes its ``rtp_*`` series to — one exposition tells the whole
story of a run.
"""

from __future__ import annotations

import dataclasses
import math
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from ..obs.metrics import MetricsRegistry
from ..obs.tracing import span
from ..service.rtp_service import RTPResponse

#: Tail exemplars retained per (scenario, phase) latency cell — enough
#: to cover the handful of observations above p99 in a smoke run.
LATENCY_EXEMPLARS = 8

#: Latency histogram upper bounds (ms) — wide enough that queueing
#: collapse (seconds of backlog) still lands in a finite bucket.
LOAD_LATENCY_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                        500.0, 1000.0, 2000.0, 5000.0, float("inf"))

#: Degradation reasons the resilience layer can stamp on a response.
DEGRADED_REASONS = ("breaker_open", "deadline", "shed", "error")


def percentile_summary(values_ms: List[float]) -> Dict[str, float]:
    """``{mean, p50, p95, p99, max}`` of a latency sample (ms)."""
    if not values_ms:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    array = np.asarray(values_ms)
    return {
        "mean": float(array.mean()),
        "p50": float(np.percentile(array, 50)),
        "p95": float(np.percentile(array, 95)),
        "p99": float(np.percentile(array, 99)),
        "max": float(array.max()),
    }


def diurnal_rate(base: float, amplitude: float = 0.5,
                 period_s: float = 60.0,
                 phase_rad: float = 0.0) -> Callable[[float], float]:
    """Sine-modulated arrival rate: ``base * (1 + A·sin(2πt/T + φ))``.

    A compressed diurnal traffic curve — the morning/evening peaks of
    an instant-delivery platform squeezed into ``period_s`` seconds of
    load-test time.  ``amplitude`` must stay below 1 so the rate never
    reaches zero; pass the result as :attr:`LoadPhase.rate_profile`.
    """
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must be in [0, 1)")
    if period_s <= 0:
        raise ValueError("period_s must be positive")

    def rate(t: float) -> float:
        return base * (1.0 + amplitude
                       * math.sin(2.0 * math.pi * t / period_s + phase_rad))

    return rate


@dataclasses.dataclass
class LoadPhase:
    """One constant- or profiled-rate segment of a scenario.

    ``mutator`` reshapes each request (GPS noise, courier churn);
    ``fault_plan`` is installed on the scenario's fault injector at
    phase entry; ``on_enter`` runs arbitrary scenario hooks (corrupt a
    checkpoint, start a canary).  ``slo=False`` phases (warm-up,
    deliberate overload) are excluded from the SLO verdict but still
    recorded in the artifact.

    ``rate_profile`` makes the arrival rate time-varying: a callable
    mapping seconds-since-phase-start to instantaneous requests per
    second (see :func:`diurnal_rate`).  The schedule is deterministic —
    each arrival is placed ``1/rate(t)`` after the previous one — so a
    profiled phase is exactly as reproducible as a constant one.
    ``profile_name`` labels the shape in the artifact ("constant" is
    omitted so existing artifacts are unchanged byte for byte).
    """

    name: str
    duration_s: float
    rate: float                     # requests per second (base rate)
    slo: bool = True
    mutator: Optional[Callable] = None      # (request, rng) -> request
    fault_plan: Optional[object] = None     # deploy.FaultPlan
    on_enter: Optional[Callable] = None     # (ScenarioContext) -> None
    rate_profile: Optional[Callable[[float], float]] = None
    profile_name: str = "constant"

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.rate_profile is not None and self.profile_name == "constant":
            self.profile_name = "profiled"

    def arrival_offsets(self) -> Optional[List[float]]:
        """Arrival times (s since phase start), or ``None`` if constant.

        Constant-rate phases keep the streaming ``index / rate``
        schedule (bit-identical to the original arithmetic); profiled
        phases precompute the variable-spacing schedule here.
        """
        if self.rate_profile is None:
            return None
        offsets: List[float] = [0.0]
        t = 0.0
        while True:
            rate = self.rate_profile(t)
            if rate <= 0:
                raise ValueError(
                    f"rate_profile must stay positive (got {rate!r} "
                    f"at t={t:.3f}s of phase {self.name!r})")
            t += 1.0 / rate
            if t >= self.duration_s:
                return offsets
            offsets.append(t)

    @property
    def num_requests(self) -> int:
        """Arrivals scheduled for this phase (at least one)."""
        offsets = self.arrival_offsets()
        if offsets is not None:
            return len(offsets)
        return max(1, round(self.duration_s * self.rate))


@dataclasses.dataclass
class PhaseResult:
    """Everything measured while one phase ran."""

    name: str
    rate: float
    duration_s: float
    slo: bool
    rate_profile: str = "constant"
    loop: str = "open"       # "open" | "closed" (how arrivals were timed)
    requests: int = 0
    elapsed_s: float = 0.0
    latencies_ms: List[float] = dataclasses.field(default_factory=list)
    service_ms: List[float] = dataclasses.field(default_factory=list)
    degraded_by_reason: Dict[str, int] = dataclasses.field(
        default_factory=dict)
    valid_responses: int = 0
    invalid_responses: int = 0
    max_backlog: int = 0
    breaker_opens: int = 0   # filled in by the scenario runner (delta)

    @property
    def degraded(self) -> int:
        return sum(self.degraded_by_reason.values())

    @property
    def degraded_fraction(self) -> float:
        return self.degraded / self.requests if self.requests else 0.0

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def latency_summary(self) -> Dict[str, float]:
        return percentile_summary(self.latencies_ms)


class BacklogProbe:
    """Duck-typed ``MicroBatcher.pending`` view of the driver backlog."""

    def __init__(self, driver: "OpenLoopDriver"):
        self._driver = driver

    @property
    def pending(self) -> int:
        return self._driver.backlog


class OpenLoopDriver:
    """Issues requests at fixed arrival times; never self-throttles.

    Parameters
    ----------
    handler:
        ``handler(request) -> RTPResponse`` — typically
        ``ResilientRTPService.handle`` or
        ``DeploymentController.handle``.
    scenario:
        Label stamped on the ``load_*`` metric series.
    clock / sleeper:
        Injectable time source; pass a
        :class:`~repro.load.clock.VirtualClock`'s callable and
        ``sleep`` for the deterministic fast path.
    registry:
        Optional shared metrics registry for the ``load_*`` series.
    recorder:
        Optional flight recorder (anything with
        ``record(trace_id, payload)``); when tracing is enabled each
        request's payload is keyed by its ``load.request`` trace id, so
        a latency exemplar resolves back to the offending request.
    closed_loop:
        Comparison mode: issue requests back-to-back like a naive
        closed-loop generator — the next request is only *scheduled*
        after the previous response returns, and latency is measured
        from issue time.  Under overload the generator self-throttles
        and the measured latencies hide the queue; running the same
        scenario both ways quantifies exactly the coordinated omission
        the open-loop default exists to avoid.
    """

    def __init__(self, handler: Callable, *, scenario: str = "adhoc",
                 clock: Callable[[], float] = time.perf_counter,
                 sleeper: Callable[[float], None] = time.sleep,
                 registry: Optional[MetricsRegistry] = None,
                 recorder=None,
                 closed_loop: bool = False):
        self.handler = handler
        self.scenario = scenario
        self.clock = clock
        self.sleeper = sleeper
        self.closed_loop = bool(closed_loop)
        self.backlog = 0
        self.probe = BacklogProbe(self)
        self.recorder = recorder
        self._registry = registry
        if registry is not None:
            self._m_requests = registry.counter(
                "load_requests_total", "Requests issued by the load driver",
                labels=("scenario", "phase"))
            self._m_latency = registry.histogram(
                "load_latency_ms",
                "Intended-arrival-to-completion latency (open-loop)",
                labels=("scenario", "phase"), buckets=LOAD_LATENCY_BUCKETS,
                exemplars=LATENCY_EXEMPLARS)
            self._m_degraded = registry.counter(
                "load_degraded_total", "Degraded responses seen by the driver",
                labels=("scenario", "phase", "reason"))
            self._m_backlog = registry.gauge(
                "load_backlog_peak", "Peak due-but-unissued arrivals",
                labels=("scenario", "phase"))
            self._m_throughput = registry.gauge(
                "load_throughput_rps", "Completed requests per second",
                labels=("scenario", "phase"))

    # ------------------------------------------------------------------
    def run_phase(self, phase: LoadPhase,
                  next_request: Callable[[], object]) -> PhaseResult:
        """Drive one phase; returns its measurements.

        Arrival times are fixed up front from the phase start — a slow
        handler only makes the driver fall *behind schedule* (growing
        ``backlog``), it never stretches the schedule itself.
        """
        result = PhaseResult(name=phase.name, rate=phase.rate,
                             duration_s=phase.duration_s, slo=phase.slo,
                             rate_profile=phase.profile_name,
                             loop="closed" if self.closed_loop else "open")
        interval = 1.0 / phase.rate
        offsets = phase.arrival_offsets()
        count = phase.num_requests if offsets is None else len(offsets)
        start = self.clock()
        next_due = start
        for index in range(count):
            if offsets is None:
                scheduled = start + index * interval
                instant_rate = phase.rate
            else:
                scheduled = start + offsets[index]
                instant_rate = phase.rate_profile(offsets[index])
            if self.closed_loop:
                # A closed-loop generator paces off its *own* progress:
                # the next send waits for the previous response, so a
                # slow server silently stretches the schedule.
                scheduled = next_due
            now = self.clock()
            if now < scheduled:
                self.sleeper(scheduled - now)
                now = self.clock()
            if not self.closed_loop:
                # Arrivals already due but not yet issued — the
                # open-loop queue the admission controller sheds on.
                # (A closed-loop generator by construction never has
                # one; that blindness is what it is here to show.)
                self.backlog = int(max(0.0, now - scheduled) * instant_rate)
                result.max_backlog = max(result.max_backlog, self.backlog)
            request = next_request()
            issued = self.clock()
            with span("load.request", scenario=self.scenario,
                      phase=phase.name, index=index) as active:
                response = self.handler(request)
            done = self.clock()
            if self.closed_loop:
                next_due = issued + 1.0 / instant_rate
                # Measured from issue: exactly the coordinated-omission
                # number — queueing delay never enters it.
                latency_ms = (done - issued) * 1000.0
            else:
                latency_ms = (done - scheduled) * 1000.0
            trace_id = active.trace_id
            if self.recorder is not None and trace_id is not None:
                self.recorder.record(trace_id, {
                    "phase": phase.name, "index": index,
                    "request": request, "response": response})
            self._record(result, phase, request, response,
                         latency_ms=latency_ms,
                         service_ms=(done - issued) * 1000.0,
                         trace_id=trace_id)
        self.backlog = 0
        result.elapsed_s = max(self.clock() - start, 0.0)
        if self._registry is not None:
            self._m_backlog.labels(
                scenario=self.scenario, phase=phase.name).set(
                result.max_backlog)
            self._m_throughput.labels(
                scenario=self.scenario, phase=phase.name).set(
                result.throughput_rps)
        return result

    def _record(self, result: PhaseResult, phase: LoadPhase, request,
                response: RTPResponse, latency_ms: float,
                service_ms: float,
                trace_id: Optional[str] = None) -> None:
        result.requests += 1
        result.latencies_ms.append(latency_ms)
        result.service_ms.append(service_ms)
        if self._is_valid(request, response):
            result.valid_responses += 1
        else:
            result.invalid_responses += 1
        if getattr(response, "degraded", False):
            reason = getattr(response, "degraded_reason", "") or "error"
            result.degraded_by_reason[reason] = (
                result.degraded_by_reason.get(reason, 0) + 1)
        if self._registry is not None:
            self._m_requests.labels(
                scenario=self.scenario, phase=phase.name).inc()
            self._m_latency.labels(
                scenario=self.scenario, phase=phase.name).observe(
                latency_ms, trace_id=trace_id)
            if getattr(response, "degraded", False):
                self._m_degraded.labels(
                    scenario=self.scenario, phase=phase.name,
                    reason=response.degraded_reason or "error").inc()

    @staticmethod
    def _is_valid(request, response: RTPResponse) -> bool:
        """A valid answer is a full permutation with matching ETAs."""
        n = request.num_locations
        return (sorted(int(i) for i in response.route) == list(range(n))
                and len(response.eta_minutes) == n)
