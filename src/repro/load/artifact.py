"""Machine-readable run artifacts with an SLO verdict.

Every load run emits one JSON artifact — per-phase latency
percentiles, cumulative histograms, degraded/shed/error counts and a
pass/fail SLO verdict — so the performance trajectory of the repo is
comparable across PRs by diffing files instead of reading prose.

The artifact shape is pinned by a checked-in schema
(``artifact_schema.json``, a self-contained subset of JSON Schema that
:func:`validate_artifact` interprets without third-party packages).
Validation goes beyond shape: histogram bucket monotonicity, per-reason
counts reconciling with totals, and — via
:func:`reconcile_with_registry` — artifact numbers matching the shared
:class:`~repro.obs.MetricsRegistry` the run wrote through, so an
artifact can never silently drift from what operators would scrape.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..obs.metrics import MetricsRegistry
from ..obs.schema import check_schema
from .driver import LOAD_LATENCY_BUCKETS, PhaseResult, percentile_summary

SCHEMA_PATH = Path(__file__).resolve().parent / "artifact_schema.json"
SCHEMA_VERSION = 1
ARTIFACT_KIND = "repro.load.artifact"


class ArtifactValidationError(ValueError):
    """The artifact violates the schema or an internal invariant."""


@dataclasses.dataclass
class SLOPolicy:
    """Bounds a run must hold over its SLO-flagged phases."""

    p99_ms: float = 250.0              # pooled p99 latency bound
    max_degraded_fraction: float = 0.2  # fallback answers allowed
    max_invalid_fraction: float = 0.0   # malformed answers allowed (none)

    def __post_init__(self) -> None:
        if self.p99_ms <= 0:
            raise ValueError("p99_ms must be positive")
        for name in ("max_degraded_fraction", "max_invalid_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    def evaluate(self, phases: Sequence[PhaseResult]) -> Dict[str, object]:
        """Verdict over the ``slo=True`` phases of a run."""
        scored = [p for p in phases if p.slo]
        latencies: List[float] = []
        requests = degraded = invalid = 0
        for phase in scored:
            latencies.extend(phase.latencies_ms)
            requests += phase.requests
            degraded += phase.degraded
            invalid += phase.invalid_responses
        p99 = (float(np.percentile(np.asarray(latencies), 99))
               if latencies else 0.0)
        degraded_fraction = degraded / requests if requests else 0.0
        invalid_fraction = invalid / requests if requests else 0.0
        violations: List[str] = []
        if not scored:
            violations.append("no SLO-flagged phases were run")
        if p99 > self.p99_ms:
            violations.append(
                f"p99 {p99:.1f} ms exceeds bound {self.p99_ms:.1f} ms")
        if degraded_fraction > self.max_degraded_fraction:
            violations.append(
                f"degraded fraction {degraded_fraction:.3f} exceeds bound "
                f"{self.max_degraded_fraction:.3f}")
        if invalid_fraction > self.max_invalid_fraction:
            violations.append(
                f"invalid-response fraction {invalid_fraction:.3f} exceeds "
                f"bound {self.max_invalid_fraction:.3f}")
        return {
            "policy": {
                "p99_ms": self.p99_ms,
                "max_degraded_fraction": self.max_degraded_fraction,
                "max_invalid_fraction": self.max_invalid_fraction,
            },
            "phases_evaluated": [p.name for p in scored],
            "p99_ms": p99,
            "degraded_fraction": degraded_fraction,
            "invalid_fraction": invalid_fraction,
            "violations": violations,
            "passed": not violations,
        }


# ----------------------------------------------------------------------
# Building
# ----------------------------------------------------------------------
def _histogram_json(latencies_ms: Sequence[float],
                    snapshot: Optional[Dict[str, object]] = None
                    ) -> Dict[str, object]:
    """Cumulative histogram block; ``+Inf`` serialised as ``null``.

    When a registry ``snapshot`` is given its counts are used verbatim
    (the artifact then reconciles with the exposition by
    construction); otherwise the raw samples are bucketed locally.
    """
    if snapshot is not None:
        bounds = list(snapshot["upper_bounds"])
        counts = list(snapshot["counts"])
    else:
        bounds = list(LOAD_LATENCY_BUCKETS)
        counts = [0] * len(bounds)
        for value in latencies_ms:
            for index, bound in enumerate(bounds):
                if value <= bound:
                    counts[index] += 1
                    break
    cumulative: List[int] = []
    running = 0
    for count in counts:
        running += int(count)
        cumulative.append(running)
    return {
        "upper_bounds_ms": [None if math.isinf(b) else float(b)
                            for b in bounds],
        "cumulative_counts": cumulative,
    }


def phase_to_json(phase: PhaseResult,
                  snapshot: Optional[Dict[str, object]] = None
                  ) -> Dict[str, object]:
    """Serialise one phase's measurements.

    ``rate_profile`` is emitted only for non-constant phases so
    constant-rate artifacts (and their checked-in baselines) keep their
    exact historical bytes.
    """
    block: Dict[str, object] = {
        "name": phase.name,
        "rate_rps": float(phase.rate),
        "duration_s": float(phase.duration_s),
        "slo": bool(phase.slo),
        "requests": int(phase.requests),
        "elapsed_s": float(phase.elapsed_s),
        "throughput_rps": float(phase.throughput_rps),
        "latency_ms": phase.latency_summary(),
        "service_ms": percentile_summary(phase.service_ms),
        "histogram_ms": _histogram_json(phase.latencies_ms, snapshot),
        "degraded": {
            "total": int(phase.degraded),
            "fraction": float(phase.degraded_fraction),
            "by_reason": {reason: int(count) for reason, count
                          in sorted(phase.degraded_by_reason.items())},
        },
        "valid_responses": int(phase.valid_responses),
        "invalid_responses": int(phase.invalid_responses),
        "max_backlog": int(phase.max_backlog),
        "breaker_opens": int(phase.breaker_opens),
    }
    if phase.rate_profile != "constant":
        block["rate_profile"] = phase.rate_profile
    if phase.loop != "open":
        # Emitted only for closed-loop comparison runs so open-loop
        # artifacts (and their checked-in baselines) keep their bytes.
        block["loop"] = phase.loop
    return block


def build_artifact(*, scenario: str, description: str, mode: str, seed: int,
                   config: Dict[str, object],
                   phases: Sequence[PhaseResult],
                   slo_policy: SLOPolicy,
                   registry: Optional[MetricsRegistry] = None,
                   events: Sequence[Dict[str, str]] = (),
                   decisions: Sequence[Dict[str, str]] = (),
                   quality: Optional[Dict[str, object]] = None,
                   shards: Optional[Sequence[Dict[str, object]]] = None
                   ) -> Dict[str, object]:
    """Assemble the full artifact for one scenario run.

    ``quality`` is the optional prediction-quality block (windowed
    segment metrics plus drift alarms) produced by a
    :class:`~repro.obs.quality.QualityMonitor` attached to the run.
    ``shards`` is the optional per-shard block emitted by sharded
    serving scenarios (one entry per shard of the
    :class:`~repro.serving_shard.ShardRouter`, reconciled against the
    ``rtp_shard_*`` registry series by :func:`reconcile_shards`).
    """
    phase_blocks = []
    for phase in phases:
        snapshot = None
        if registry is not None:
            histogram = registry.get("load_latency_ms")
            if histogram is not None:
                snapshot = histogram.snapshot(
                    scenario=scenario, phase=phase.name)
        phase_blocks.append(phase_to_json(phase, snapshot))
    total_requests = sum(p.requests for p in phases)
    total_degraded = sum(p.degraded for p in phases)
    artifact: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "kind": ARTIFACT_KIND,
        "scenario": scenario,
        "description": description,
        "mode": mode,
        "seed": int(seed),
        "config": config,
        "phases": phase_blocks,
        "events": list(events),
        "decisions": list(decisions),
        "totals": {
            "requests": total_requests,
            "degraded": total_degraded,
            "degraded_fraction": (total_degraded / total_requests
                                  if total_requests else 0.0),
            "invalid_responses": sum(p.invalid_responses for p in phases),
            "shed": sum(p.degraded_by_reason.get("shed", 0) for p in phases),
            "errors": sum(p.degraded_by_reason.get("error", 0)
                          for p in phases),
            "breaker_opens": sum(p.breaker_opens for p in phases),
        },
        "slo": slo_policy.evaluate(phases),
    }
    if quality is not None:
        artifact["quality"] = quality
    if shards is not None:
        artifact["shards"] = [dict(entry) for entry in shards]
    return artifact


def write_artifact(artifact: Dict[str, object], path) -> Path:
    """Validate, then write the artifact as pretty JSON."""
    validate_artifact(artifact)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def load_schema() -> Dict[str, object]:
    """The checked-in artifact schema."""
    return json.loads(SCHEMA_PATH.read_text())

def _check_schema(value, schema: Dict[str, object], path: str) -> None:
    """Interpret the JSON-Schema subset the artifact schema uses."""
    check_schema(value, schema, path, error_cls=ArtifactValidationError)


def _check_histogram(phase: Dict[str, object], path: str) -> None:
    histogram = phase["histogram_ms"]
    bounds = histogram["upper_bounds_ms"]
    counts = histogram["cumulative_counts"]
    if len(bounds) != len(counts):
        raise ArtifactValidationError(
            f"{path}: {len(bounds)} bounds vs {len(counts)} counts")
    finite = [b for b in bounds if b is not None]
    if any(b is None for b in bounds[:-1]) or finite != sorted(finite):
        raise ArtifactValidationError(
            f"{path}: bucket bounds must be sorted with +Inf (null) last")
    if any(b - a < 0 for a, b in zip(counts, counts[1:])):
        raise ArtifactValidationError(
            f"{path}: cumulative counts must be non-decreasing")
    if counts and counts[-1] != phase["requests"]:
        raise ArtifactValidationError(
            f"{path}: histogram total {counts[-1]} != "
            f"requests {phase['requests']}")


def validate_artifact(artifact: Dict[str, object],
                      schema: Optional[Dict[str, object]] = None) -> None:
    """Schema check plus the semantic invariants of a load artifact.

    Raises :class:`ArtifactValidationError` on the first violation;
    returns ``None`` when the artifact is sound.
    """
    _check_schema(artifact, schema or load_schema(), "artifact")
    totals = artifact["totals"]
    requests = degraded = invalid = 0
    for index, phase in enumerate(artifact["phases"]):
        path = f"artifact.phases[{index}]"
        _check_histogram(phase, path)
        block = phase["degraded"]
        by_reason = sum(block["by_reason"].values())
        if by_reason != block["total"]:
            raise ArtifactValidationError(
                f"{path}: degraded total {block['total']} != "
                f"per-reason sum {by_reason}")
        if phase["requests"] and abs(
                block["fraction"]
                - block["total"] / phase["requests"]) > 1e-9:
            raise ArtifactValidationError(
                f"{path}: degraded fraction does not match total/requests")
        if (phase["valid_responses"] + phase["invalid_responses"]
                != phase["requests"]):
            raise ArtifactValidationError(
                f"{path}: valid + invalid != requests")
        requests += phase["requests"]
        degraded += block["total"]
        invalid += phase["invalid_responses"]
    checks = (("requests", requests), ("degraded", degraded),
              ("invalid_responses", invalid))
    for key, value in checks:
        if totals[key] != value:
            raise ArtifactValidationError(
                f"artifact.totals.{key} {totals[key]} != "
                f"phase sum {value}")
    slo = artifact["slo"]
    if slo["passed"] != (not slo["violations"]):
        raise ArtifactValidationError(
            "artifact.slo.passed inconsistent with violations list")
    shards = artifact.get("shards")
    if shards is not None:
        if [s["shard"] for s in shards] != list(range(len(shards))):
            raise ArtifactValidationError(
                "artifact.shards must list shards 0..N-1 in order")
        routed = sum(s["requests"] + s["shed"] for s in shards)
        if routed != totals["requests"]:
            raise ArtifactValidationError(
                f"artifact.shards: routed + shed {routed} != "
                f"totals.requests {totals['requests']} (every request "
                f"must be placed on exactly one shard or shed there)")


def reconcile_with_registry(artifact: Dict[str, object],
                            registry: MetricsRegistry) -> None:
    """Assert artifact counts match the shared metrics registry.

    Guards the pipeline end to end: the counts a dashboard would
    scrape and the counts the artifact archives must be the same
    numbers, or the perf trajectory silently forks from production
    observability.
    """
    scenario = artifact["scenario"]
    request_counter = registry.get("load_requests_total")
    degraded_counter = registry.get("load_degraded_total")
    histogram = registry.get("load_latency_ms")
    if request_counter is None or histogram is None:
        raise ArtifactValidationError(
            "registry is missing the load_* series for reconciliation")
    for phase in artifact["phases"]:
        name = phase["name"]
        counted = request_counter.labels(
            scenario=scenario, phase=name).value
        if int(counted) != phase["requests"]:
            raise ArtifactValidationError(
                f"{name}: registry counted {int(counted)} requests, "
                f"artifact says {phase['requests']}")
        snapshot = histogram.snapshot(scenario=scenario, phase=name)
        cumulative = []
        running = 0
        for count in snapshot["counts"]:
            running += int(count)
            cumulative.append(running)
        if cumulative != phase["histogram_ms"]["cumulative_counts"]:
            raise ArtifactValidationError(
                f"{name}: registry histogram disagrees with artifact")
        for reason, count in phase["degraded"]["by_reason"].items():
            registered = degraded_counter.labels(
                scenario=scenario, phase=name, reason=reason).value
            if int(registered) != count:
                raise ArtifactValidationError(
                    f"{name}: registry counted {int(registered)} "
                    f"degraded ({reason}), artifact says {count}")


def reconcile_shards(artifact: Dict[str, object],
                     registry: MetricsRegistry) -> None:
    """Assert the per-shard block matches the ``rtp_shard_*`` series.

    The router and the artifact builder account independently (router
    counters at placement time, artifact block from the router's final
    stats snapshot); this pins them to the same numbers a dashboard
    scraping the shared registry would show.
    """
    shards = artifact.get("shards")
    if shards is None:
        raise ArtifactValidationError(
            "artifact has no shards block to reconcile")
    counters = {
        "requests": registry.get("rtp_shard_requests_total"),
        "shed": registry.get("rtp_shard_shed_total"),
        "respawns": registry.get("rtp_shard_respawns_total"),
        "swaps": registry.get("rtp_shard_swaps_total"),
    }
    histogram = registry.get("rtp_shard_latency_ms")
    if any(c is None for c in counters.values()) or histogram is None:
        raise ArtifactValidationError(
            "registry is missing the rtp_shard_* series for reconciliation")
    for entry in shards:
        label = str(entry["shard"])
        for key, counter in counters.items():
            registered = int(counter.labels(shard=label).value)
            if registered != entry[key]:
                raise ArtifactValidationError(
                    f"shard {label}: registry counted {registered} "
                    f"{key}, artifact says {entry[key]}")
        snapshot = histogram.snapshot(shard=label)
        observed = int(sum(snapshot["counts"]))
        if observed != entry["requests"]:
            raise ArtifactValidationError(
                f"shard {label}: latency histogram holds {observed} "
                f"observations, artifact says {entry['requests']} requests")
