"""Constant-rate load generation and scenario replay (``repro.load``).

Proves the deployment/resilience layer under traffic instead of unit
stimuli.  The pieces:

* :mod:`~repro.load.driver` — wrk2-style **open-loop** driver: arrivals
  are scheduled by wall clock, never throttled by response latency, and
  latency is measured from the intended arrival so queueing collapse is
  visible (no coordinated omission);
* :mod:`~repro.load.clock` — :class:`VirtualClock` +
  :class:`ModeledLatencyService` give a deterministic simulated-time
  fast path where breaker/deadline/shed dynamics are bit-reproducible;
* :mod:`~repro.load.stream` — seeded request replay with traffic
  mutators (GPS dropout, courier churn, storm weather);
* :mod:`~repro.load.scenarios` — the composable scenario library
  (steady, surge, courier_churn, gps_dropout, fault_storm,
  checkpoint_corruption, canary_surge, shard_soak, shard_kill,
  weather_slowdown, continual_drift);
* :mod:`~repro.load.artifact` — machine-readable JSON run artifacts
  with per-phase histograms, an SLO verdict, schema validation and
  metrics-registry reconciliation.

CLI entry point: ``repro-rtp load --scenario surge --smoke``.
"""

from .artifact import (
    ARTIFACT_KIND,
    SCHEMA_PATH,
    SCHEMA_VERSION,
    ArtifactValidationError,
    SLOPolicy,
    build_artifact,
    load_schema,
    reconcile_shards,
    reconcile_with_registry,
    validate_artifact,
    write_artifact,
)
from .clock import WEATHER_SERVICE_SLOWDOWN, ModeledLatencyService, VirtualClock
from .driver import (
    DEGRADED_REASONS,
    LOAD_LATENCY_BUCKETS,
    BacklogProbe,
    LoadPhase,
    OpenLoopDriver,
    PhaseResult,
    diurnal_rate,
    percentile_summary,
)
from .scenarios import (
    SCENARIOS,
    WEATHER_ETA_DELAY,
    LoadRunConfig,
    Scenario,
    ScenarioContext,
    ScenarioResult,
    build_context,
    run_scenario,
    small_model,
)
from .stream import (
    RequestStream,
    build_instance_pool,
    courier_churn_mutator,
    gps_noise_mutator,
    storm_weather_mutator,
)

__all__ = [
    "ARTIFACT_KIND", "SCHEMA_PATH", "SCHEMA_VERSION",
    "ArtifactValidationError", "SLOPolicy", "build_artifact",
    "load_schema", "reconcile_shards", "reconcile_with_registry",
    "validate_artifact", "write_artifact",
    "ModeledLatencyService", "VirtualClock", "WEATHER_SERVICE_SLOWDOWN",
    "WEATHER_ETA_DELAY",
    "DEGRADED_REASONS", "LOAD_LATENCY_BUCKETS", "BacklogProbe",
    "LoadPhase", "OpenLoopDriver", "PhaseResult", "diurnal_rate",
    "percentile_summary",
    "SCENARIOS", "LoadRunConfig", "Scenario", "ScenarioContext",
    "ScenarioResult", "build_context", "run_scenario", "small_model",
    "RequestStream", "build_instance_pool", "courier_churn_mutator",
    "gps_noise_mutator", "storm_weather_mutator",
]
