"""Deterministic request streams and traffic-shaping mutators.

A :class:`RequestStream` replays a pool of synthetic instances as
label-free :class:`~repro.service.RTPRequest` queries, round-robin, so
the request sequence depends only on the pool order — never on timing.
Scenario phases attach **mutators** that reshape each request with a
seeded RNG:

* :func:`gps_noise_mutator` — degraded positioning: jittered order
  coordinates plus occasional full GPS dropout, where the courier's
  reported position snaps to a stale location far from the true one;
* :func:`courier_churn_mutator` — fleet churn: requests arrive from
  never-seen-before couriers (fresh ids, new speed/behaviour
  profiles), which cold-starts every per-courier signal and the graph
  cache.

Mutators copy what they perturb (``dataclasses.replace``) so the
shared instance pool stays pristine across phases and runs.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..data.entities import Courier, RTPInstance
from ..data.generator import NUM_AOI_TYPES
from ..service.request import RTPRequest

#: Signature of a phase mutator.
RequestMutator = Callable[[RTPRequest, np.random.Generator], RTPRequest]


class RequestStream:
    """Round-robin replay of an instance pool as online requests."""

    def __init__(self, instances: Sequence[RTPInstance], seed: int = 0):
        if not instances:
            raise ValueError("request stream needs at least one instance")
        self.instances = list(instances)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._index = 0
        #: The instance behind the most recent request — the ground
        #: truth (actual route / arrival times) a quality feed pairs
        #: with the response served for it.
        self.last_instance: Optional[RTPInstance] = None

    def next(self, mutator: Optional[RequestMutator] = None) -> RTPRequest:
        """The next request, optionally reshaped by ``mutator``."""
        instance = self.instances[self._index % len(self.instances)]
        self.last_instance = instance
        self._index += 1
        request = RTPRequest.from_instance(instance)
        if mutator is not None:
            request = mutator(request, self._rng)
        return request

    def reset(self) -> None:
        """Rewind to the start of the deterministic sequence."""
        self._rng = np.random.default_rng(self.seed)
        self._index = 0
        self.last_instance = None


# ----------------------------------------------------------------------
# Mutators
# ----------------------------------------------------------------------
def gps_noise_mutator(dropout_rate: float = 0.3,
                      noise_degrees: float = 0.002,
                      stale_offset_degrees: float = 0.05) -> RequestMutator:
    """Degraded GPS: coordinate jitter + occasional stale-fix dropout.

    Every order coordinate gets ``N(0, noise_degrees)`` jitter (urban
    canyon multipath); with probability ``dropout_rate`` the courier's
    own fix is *stale* — offset by ``stale_offset_degrees`` (~5 km),
    the last position the device reported before losing signal.
    """
    if not 0.0 <= dropout_rate <= 1.0:
        raise ValueError("dropout_rate must be in [0, 1]")

    def mutate(request: RTPRequest,
               rng: np.random.Generator) -> RTPRequest:
        locations = [
            dataclasses.replace(
                location,
                coord=(location.coord[0] + float(rng.normal(0, noise_degrees)),
                       location.coord[1] + float(rng.normal(0, noise_degrees))))
            for location in request.locations
        ]
        position = request.courier_position
        if float(rng.random()) < dropout_rate:
            angle = float(rng.uniform(0.0, 2.0 * np.pi))
            position = (position[0] + stale_offset_degrees * np.cos(angle),
                        position[1] + stale_offset_degrees * np.sin(angle))
        return dataclasses.replace(
            request, locations=locations, courier_position=position)

    return mutate


def courier_churn_mutator(id_offset: int = 100_000) -> RequestMutator:
    """Fleet churn: every request comes from a brand-new courier.

    Fresh ids (offset far past the synthetic world's fleet), new
    speed/working-hours/behaviour draws — the serving stack sees a
    cold courier on every query, which defeats per-courier caches and
    shifts the feature distribution the model was fitted on.
    """
    counter = [0]

    def mutate(request: RTPRequest,
               rng: np.random.Generator) -> RTPRequest:
        counter[0] += 1
        preference = tuple(int(p) for p in rng.permutation(NUM_AOI_TYPES))
        courier = Courier(
            courier_id=id_offset + counter[0],
            speed=float(rng.uniform(120.0, 360.0)),
            working_hours=float(rng.uniform(4.0, 12.0)),
            attendance_rate=float(rng.uniform(0.6, 1.0)),
            service_time_mean=float(rng.uniform(1.5, 6.0)),
            aoi_type_preference=preference,
        )
        return dataclasses.replace(request, courier=courier)

    return mutate


def storm_weather_mutator(severity: int = 3,
                          coverage: float = 1.0) -> RequestMutator:
    """A weather front: requests arrive under severe weather.

    Each request's ``weather`` feature is raised to ``severity``
    (simulator codes 0-3) with probability ``coverage``.  Downstream
    this shifts the model's weather embedding input, inflates the
    modeled service time when the scenario couples weather to latency
    (:data:`~repro.load.clock.WEATHER_SERVICE_SLOWDOWN`), and marks
    the affected traffic for the per-weather quality segments.
    """
    if not 0 <= severity <= 3:
        raise ValueError("severity must be a weather code in [0, 3]")
    if not 0.0 <= coverage <= 1.0:
        raise ValueError("coverage must be in [0, 1]")

    def mutate(request: RTPRequest,
               rng: np.random.Generator) -> RTPRequest:
        if coverage < 1.0 and float(rng.random()) >= coverage:
            return request
        return dataclasses.replace(request, weather=severity)

    return mutate


def build_instance_pool(world, num_instances: int,
                        seed: int = 0) -> List[RTPInstance]:
    """Sample a deterministic request pool from a synthetic world."""
    rng = np.random.default_rng(seed)
    instances: List[RTPInstance] = []
    offset = 0
    for index in range(num_instances):
        courier_index = index % len(world.couriers)
        instance = world.generate_instance(
            courier_index, day=index // len(world.couriers), rng=rng,
            location_id_offset=offset)
        offset += instance.num_locations
        instances.append(instance)
    return instances
