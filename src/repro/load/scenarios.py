"""Composable load scenarios over the resilience and deployment stack.

Each :class:`Scenario` composes the pieces the repo already has — the
synthetic world (request pool), :class:`~repro.deploy.FaultInjector`
(per-phase fault plans), :class:`~repro.deploy.ResilientRTPService`
(deadline/breaker/shedding) and
:class:`~repro.deploy.DeploymentController` (canary rollout) — into a
phased, seeded traffic profile driven by the open-loop
:class:`~repro.load.driver.OpenLoopDriver`:

============================  =========================================
``steady``                    constant-rate baseline; the SLO reference
``surge``                     rush-hour 4× overload between two calm
                              phases; shedding expected mid-surge,
                              recovery must be clean
``courier_churn``             every request from a never-seen courier
``gps_dropout``               coordinate noise + stale courier fixes
``fault_storm``               transient-error burst on the model path;
                              the breaker must open and recover
``checkpoint_corruption``     the on-disk checkpoint rots mid-run; the
                              registry must refuse the reload while
                              the in-memory model keeps serving
``canary_surge``              a faulty candidate canaries during a
                              surge; the controller must roll it back
``quality_drift``             ground-truth labels shift mid-canary; the
                              quality monitor's drift detectors must
                              alarm and the controller must roll the
                              candidate back on the alarm — serving
                              metrics alone never notice
``shard_soak``                diurnal (sine) arrivals over N serving
                              shards; admission control sheds the peak
                              and the steady tail must be SLO-clean
``shard_kill``                a serving shard dies mid-run; the router
                              respawns it from current weights without
                              breaking the SLO
``weather_slowdown``          a storm front inflates weather-coupled
                              service times; shedding must track the
                              weather, recovery as it clears
``continual_drift``           a persistent storm regime shifts labels;
                              the online continual-learning loop must
                              alarm, fine-tune on the experience
                              window, and canary-promote the student
                              through the quality-gated verdict
============================  =========================================

Runs are deterministic at a fixed seed in ``virtual`` mode (simulated
time; see :mod:`repro.load.clock`), which is what makes scenario
outcomes assertable in tier-1 tests; ``wall`` mode exercises real
wall-clock physics for benchmarks and soaks.
"""

from __future__ import annotations

import dataclasses
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core import M2G4RTP, M2G4RTPConfig
from ..core.fallback import FallbackPredictor
from ..data import GeneratorConfig, SyntheticWorld
from ..deploy import (DeploymentController, FaultInjector, FaultPlan,
                      ModelRegistry, ResilienceConfig, ResilientRTPService,
                      RolloutPolicy, corrupt_checkpoint)
from ..deploy.registry import CheckpointIntegrityError
from ..obs.metrics import MetricsRegistry
from ..obs.quality import (CompletedRoute, FlightRecorder,
                           PageHinkleyDetector, QualityMonitor,
                           ReferenceWindowDetector)
from ..obs.tracing import current_trace_id
from ..online import (AntiRegressionGate, ExperienceBuffer, OnlineLoop,
                      OnlineLoopConfig, OnlineTrainer, OnlineTrainerConfig,
                      RetrainPolicy, RetrainPolicyConfig)
from ..service.rtp_service import RTPService
from ..serving_shard import ShardConfig, ShardRouter
from .artifact import SLOPolicy, build_artifact
from .clock import (WEATHER_SERVICE_SLOWDOWN, ModeledLatencyService,
                    VirtualClock)
from .driver import LoadPhase, OpenLoopDriver, PhaseResult, diurnal_rate
from .stream import (RequestStream, build_instance_pool,
                     courier_churn_mutator, gps_noise_mutator,
                     storm_weather_mutator)

#: Minutes of extra courier lateness per weather code when a scenario
#: couples weather to the ground-truth label stream (storm deliveries
#: run late even when the model's inputs say so too).
WEATHER_ETA_DELAY = {0: 0.0, 1: 5.0, 2: 30.0, 3: 90.0}


@dataclasses.dataclass
class LoadRunConfig:
    """Runtime knobs of one scenario run (all scenarios share these)."""

    rate: float = 40.0              # base arrival rate (requests/second)
    phase_duration_s: float = 5.0   # length of a full-weight phase
    surge_factor: float = 4.0       # rate multiplier for surge phases
    seed: int = 0
    virtual: bool = True            # simulated time (deterministic)
    model_latency_ms: float = 15.0  # modeled service time in virtual mode
    hidden_dim: int = 16
    pool_size: int = 24             # distinct requests in the replay pool
    cache_size: int = 32            # service graph-cache entries
    deadline_ms: float = 250.0
    max_queue_depth: int = 32
    breaker_failure_threshold: int = 3
    breaker_recovery_s: float = 1.0
    canary_fraction: float = 0.3
    canary_min_requests: int = 12
    num_shards: int = 2             # shards in needs_shards scenarios
    #: Minutes added to every actual arrival during the label-shift
    #: phase of ``quality_drift`` — deliberately enormous (couriers
    #: suddenly hours late) so the detectors separate the shifted
    #: stream from baseline variation by a wide deterministic margin.
    quality_shift_minutes: float = 480.0
    #: Drive phases with a naive closed-loop generator instead of the
    #: open-loop schedule (coordinated-omission comparison mode).
    closed_loop: bool = False
    slo: SLOPolicy = dataclasses.field(default_factory=SLOPolicy)

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.phase_duration_s <= 0:
            raise ValueError("rate and phase_duration_s must be positive")
        if self.surge_factor < 1.0:
            raise ValueError("surge_factor must be >= 1")

    @property
    def mode(self) -> str:
        return "virtual" if self.virtual else "wall"


@dataclasses.dataclass
class ScenarioContext:
    """Everything a running scenario (and its hooks) can touch."""

    config: LoadRunConfig
    metrics: MetricsRegistry
    clock: Callable[[], float]
    sleeper: Callable[[float], None]
    stream: RequestStream
    injector: FaultInjector
    driver: OpenLoopDriver
    handler: Callable
    primary: Optional[ResilientRTPService] = None
    controller: Optional[DeploymentController] = None
    registry: Optional[ModelRegistry] = None
    router: Optional[ShardRouter] = None
    breaker_watch: List[object] = dataclasses.field(default_factory=list)
    events: List[Dict[str, str]] = dataclasses.field(default_factory=list)
    current_phase: str = ""
    quality: Optional[QualityMonitor] = None
    recorder: Optional[FlightRecorder] = None
    online: Optional[OnlineLoop] = None
    # Mutable cell so phase hooks can shift the ground-truth labels the
    # quality feed sees (the handler closure reads it per request).
    eta_shift: Dict[str, float] = dataclasses.field(
        default_factory=lambda: {"minutes": 0.0})
    # Per-weather-code minutes added to actual arrivals when the
    # scenario couples weather to the label stream (``None`` = off).
    weather_delay: Optional[Dict[int, float]] = None
    _tempdir: Optional[tempfile.TemporaryDirectory] = None

    def breaker_opens(self) -> int:
        """Total breaker trips across every watched service."""
        return sum(breaker.opens for breaker in self.breaker_watch)

    def record_event(self, event: str, detail: str) -> None:
        self.events.append({"phase": self.current_phase, "event": event,
                            "detail": detail})

    def close(self) -> None:
        if self.router is not None:
            self.router.shutdown()   # no-op in inline mode
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None


@dataclasses.dataclass
class Scenario:
    """A named, phased traffic profile."""

    name: str
    description: str
    build_phases: Callable[[LoadRunConfig], List[LoadPhase]]
    needs_registry: bool = False    # serve a registry-loaded checkpoint
    needs_controller: bool = False  # route through DeploymentController
    attach_quality: bool = False    # feed a QualityMonitor ground truth
    needs_shards: bool = False      # route through a ShardRouter
    attach_online: bool = False     # close the loop with an OnlineLoop
    weather_coupled: bool = False   # weather slows service + shifts labels


@dataclasses.dataclass
class ScenarioResult:
    """Artifact plus the raw measurements behind it."""

    scenario: str
    artifact: Dict[str, object]
    phases: List[PhaseResult]
    context: ScenarioContext

    @property
    def passed(self) -> bool:
        return bool(self.artifact["slo"]["passed"])


# ----------------------------------------------------------------------
# Stack construction
# ----------------------------------------------------------------------
def small_model(seed: int, hidden_dim: int) -> M2G4RTP:
    """A serving-shaped model; load testing needs shape, not accuracy."""
    model = M2G4RTP(M2G4RTPConfig(
        hidden_dim=hidden_dim, num_heads=2, num_encoder_layers=1,
        continuous_embed_dim=8, discrete_embed_dim=4, position_dim=4,
        courier_embed_dim=4, seed=seed))
    model.eval()
    return model


def build_context(scenario: Scenario, config: LoadRunConfig,
                  metrics: Optional[MetricsRegistry] = None,
                  registry_dir: Optional[Path] = None,
                  model: Optional[M2G4RTP] = None) -> ScenarioContext:
    """Wire the service stack a scenario needs, ready to drive.

    ``model`` overrides the default :func:`small_model` (the CLI passes
    a trained checkpoint here).  ``registry_dir`` pins where
    registry-backed scenarios keep their versions; by default a
    temporary directory is used and cleaned up with the context.
    """
    metrics = metrics if metrics is not None else MetricsRegistry()
    if config.virtual:
        virtual_clock = VirtualClock()
        clock: Callable[[], float] = virtual_clock
        sleeper: Callable[[float], None] = virtual_clock.sleep
    else:
        virtual_clock = None
        clock = time.perf_counter
        sleeper = time.sleep

    world = SyntheticWorld(GeneratorConfig(
        num_aois=40, num_couriers=6, num_days=4,
        instances_per_courier_day=2, seed=config.seed))
    pool = build_instance_pool(world, config.pool_size, seed=config.seed + 1)
    stream = RequestStream(pool, seed=config.seed + 2)
    injector = FaultInjector(FaultPlan(), seed=config.seed + 3,
                             sleeper=sleeper)
    resilience = ResilienceConfig(
        deadline_ms=config.deadline_ms,
        breaker_failure_threshold=config.breaker_failure_threshold,
        breaker_recovery_seconds=config.breaker_recovery_s,
        max_queue_depth=config.max_queue_depth)
    fallback = FallbackPredictor()

    # The driver exists before the services so its backlog probe can be
    # the admission-control signal; the handler is attached below.
    driver = OpenLoopDriver(None, scenario=scenario.name, clock=clock,
                            sleeper=sleeper, registry=metrics,
                            closed_loop=config.closed_loop)

    def modeled(inner):
        if virtual_clock is None:
            return inner
        return ModeledLatencyService(
            inner, virtual_clock, base_ms=config.model_latency_ms,
            seed=config.seed + 20,
            weather_factors=(WEATHER_SERVICE_SLOWDOWN
                             if scenario.weather_coupled else None))

    context = ScenarioContext(
        config=config, metrics=metrics, clock=clock, sleeper=sleeper,
        stream=stream, injector=injector, driver=driver, handler=None)

    model_registry: Optional[ModelRegistry] = None
    if scenario.needs_registry or scenario.needs_controller:
        if registry_dir is None:
            context._tempdir = tempfile.TemporaryDirectory(
                prefix="repro-load-registry-")
            registry_dir = Path(context._tempdir.name)
        model_registry = ModelRegistry(registry_dir)
        model_registry.register(
            model or small_model(config.seed + 10, config.hidden_dim),
            created_at=f"load-{scenario.name}-v1", data_seed=config.seed)
        if scenario.needs_controller:
            model_registry.register(
                small_model(config.seed + 11, config.hidden_dim),
                created_at=f"load-{scenario.name}-v2",
                data_seed=config.seed)
        context.registry = model_registry

    if scenario.needs_shards:
        _attach_shards(context, scenario, config, resilience,
                       virtual_clock, model)
    elif scenario.needs_controller:
        controller = DeploymentController(
            model_registry, resilience=resilience,
            policy=RolloutPolicy(
                canary_fraction=config.canary_fraction,
                min_requests=config.canary_min_requests),
            metrics=metrics, fallback=fallback, initial="v001",
            seed=config.seed + 4, clock=clock, batcher=driver.probe,
            service_wrapper=lambda inner: modeled(injector.wrap(inner)))
        context.controller = controller
        context.primary = controller.primary
        context.handler = controller.handle
        context.breaker_watch.append(controller.primary.breaker)
    else:
        if model is not None:
            serving_model = model
        elif model_registry is not None:
            serving_model, _ = model_registry.load("v001")
        else:
            serving_model = small_model(config.seed + 10, config.hidden_dim)
        service = RTPService(serving_model, cache_size=config.cache_size)
        resilient = ResilientRTPService(
            modeled(injector.wrap(service)), fallback=fallback,
            config=resilience, batcher=driver.probe, registry=metrics,
            version="v001", clock=clock)
        context.primary = resilient
        context.handler = resilient.handle
        context.breaker_watch.append(resilient.breaker)

    if scenario.weather_coupled:
        context.weather_delay = dict(WEATHER_ETA_DELAY)
    driver.handler = context.handler
    if scenario.attach_quality:
        _attach_quality(context)
    if scenario.attach_online:
        _attach_online(context)
    return context


def _attach_shards(context: ScenarioContext, scenario: Scenario,
                   config: LoadRunConfig, resilience: ResilienceConfig,
                   virtual_clock: Optional[VirtualClock],
                   model: Optional[M2G4RTP]) -> None:
    """Route the scenario through a :class:`ShardRouter`.

    Virtual runs use inline shards on the shared virtual clock — one
    deterministic timeline, so shed/respawn/swap outcomes are
    assertable bit-for-bit (capacity does *not* scale with shard count
    here; the wall-mode soak bench is where real-process scaling
    shows).  Wall runs fork real worker processes.  Each shard's inner
    service gets its own seeded :class:`ModeledLatencyService` in
    virtual mode so latency draws differ across shards but replay
    exactly.
    """
    serving_model = model or small_model(config.seed + 10,
                                         config.hidden_dim)

    def shard_wrapper(shard_id: int) -> Callable:
        def wrap(inner):
            return ModeledLatencyService(
                inner, virtual_clock, base_ms=config.model_latency_ms,
                seed=config.seed + 20 + shard_id)
        return wrap

    def note_respawn(shard: int) -> None:
        context.record_event(
            "shard_respawned",
            f"shard {shard} rebuilt from version "
            f"{context.router.version}")

    shed_phases: set = set()

    def note_shed(shard: int) -> None:
        if context.current_phase not in shed_phases:
            shed_phases.add(context.current_phase)
            context.record_event(
                "shard_shed",
                f"admission control began shedding on shard {shard}")

    router = ShardRouter(
        serving_model, version="v001",
        config=ShardConfig(
            num_shards=config.num_shards,
            # Each shard owns an equal slice of the global queue
            # budget: admission must trip when one shard's share is
            # exhausted, not when the whole fleet's worth piles up on
            # a single placement.
            max_queue_depth=max(4, config.max_queue_depth
                                // config.num_shards),
            cache_size=config.cache_size,
            seed=config.seed + 6),
        resilience=resilience, metrics=context.metrics,
        inline=config.virtual, clock=context.clock,
        service_wrapper=shard_wrapper if config.virtual else None,
        backlog_probe=context.driver.probe,
        on_respawn=note_respawn, on_shed=note_shed)
    context.router = router
    context.handler = router.handle
    context.breaker_watch.extend(router.breakers)
    context.events.append({
        "phase": "setup", "event": "shards_started",
        "detail": f"{config.num_shards} shards serving v001 in "
                  f"{'inline' if config.virtual else 'process'} mode"})


def _attach_quality(context: ScenarioContext) -> None:
    """Join the request/response stream with its ground truth.

    Every non-degraded response is paired with the pool instance that
    produced its request (``stream.last_instance`` — the replay pool
    carries the actual route and arrival times as labels), fed to a
    :class:`QualityMonitor`, and the monitor's alarms are forwarded to
    the deployment controller.  A :class:`FlightRecorder` is attached
    to the driver so latency exemplars resolve to request payloads.

    Detector tuning: the baseline ETA-error stream is a deterministic
    periodic replay, so thresholds sit far above its wander yet far
    below the ~:attr:`LoadRunConfig.quality_shift_minutes` jump a label
    shift causes — the alarm is separated by orders of magnitude, never
    marginal.
    """
    shift = context.config.quality_shift_minutes
    monitor = QualityMonitor(
        context.metrics, window=32, clock=context.clock,
        page_hinkley=PageHinkleyDetector(
            delta=20.0, threshold=shift / 2.0, min_samples=8),
        reference_window=ReferenceWindowDetector(
            reference_size=24, window_size=12,
            ks_threshold=0.75, psi_threshold=3.0))
    context.quality = monitor
    context.recorder = FlightRecorder(capacity=128)
    context.driver.recorder = context.recorder
    inner = context.handler

    def forward_alarm(alarm) -> None:
        context.record_event(
            "drift_alarm",
            f"{alarm.detector} on {alarm.metric}: statistic "
            f"{alarm.statistic:.1f} > {alarm.threshold:.1f} after "
            f"{alarm.observations} routes")
        if context.online is not None:
            # With an online loop attached, drift is the *retrain*
            # signal (the loop subscribes separately); candidate
            # safety comes from the quality-gated canary verdict, so
            # the stream-level alarm must not yank the canary that is
            # fixing the drift.
            return
        if context.controller is not None:
            decision = context.controller.on_drift_alarm(alarm)
            if decision is not None:
                context.record_event(
                    "drift_rollback",
                    f"{decision.version} rolled back: {decision.reason}")

    monitor.on_alarm(forward_alarm)

    def handler(request):
        response = inner(request)
        instance = context.stream.last_instance
        if instance is not None and not getattr(response, "degraded",
                                                False):
            weather = int(getattr(request, "weather", instance.weather))
            shift = context.eta_shift["minutes"]
            if context.weather_delay is not None:
                shift += context.weather_delay.get(weather, 0.0)
            actual = (np.asarray(instance.arrival_times, dtype=float)
                      + shift)
            monitor.record(CompletedRoute(
                predicted_route=[int(i) for i in response.route],
                actual_route=[int(i) for i in instance.route],
                predicted_eta_minutes=[float(v)
                                       for v in response.eta_minutes],
                actual_arrival_minutes=actual,
                labels={
                    "weather": str(weather),
                    "courier": str(instance.courier.courier_id),
                    "model_version": str(
                        getattr(response, "model_version", "") or ""),
                },
                trace_id=current_trace_id()))
            if context.online is not None and context.primary is not None:
                # The serving façade feeds the completed route to the
                # experience buffer; each request then gives the loop
                # one chance to drain/retrain (synchronous, zero
                # virtual time).
                context.primary.complete_route(
                    request, response, instance.route, actual)
                context.online.tick()
        return response

    context.handler = handler
    context.driver.handler = handler


def _attach_online(context: ScenarioContext) -> None:
    """Close the data loop: buffer → policy → trainer → gate → canary.

    The loop shares the scenario's registry, controller, metrics and
    virtual clock.  The retrain policy's cooldown reads the *scenario*
    clock (virtual seconds in deterministic runs) and is longer than
    any scenario's virtual span, so exactly one drift-triggered
    fine-tune fires per run and the event sequence stays pinned — at
    any host speed.  Fine-tunes interleave a seeded replay sample from
    the reservoir and the gate scores the mixture holdout (frozen
    clean slice + recent window), so adaptation is forgetting-bounded;
    the controller's rollout policy is tightened to require quality
    evidence before promoting, which is what makes the canary verdict
    read the candidate's actual windowed ETA MAE rather than just its
    latency health.
    """
    config = context.config
    workdir = Path(context.registry.root) / "online_jobs"
    buffer = ExperienceBuffer(
        capacity=48, reservoir=16, max_pending=4 * config.max_queue_depth,
        seed=config.seed + 30, metrics=context.metrics,
        clock=context.clock)
    # Cooler and longer than the trainer defaults: with replay in the
    # mix the fine-tune must fit *both* regimes, and lr 0.02 / 4 epochs
    # adapts fast but craters the clean holdout (ratio ~3.5 — gate
    # rejects for forgetting).  0.012 / 10 epochs lands clean ratio
    # ~0.77 and shifted ratio ~0.11 — both gate legs pass and the
    # windowed shifted-stream MAE matches the no-replay student's.
    trainer = OnlineTrainer(context.registry, workdir,
                            OnlineTrainerConfig(replay_fraction=1.0,
                                                learning_rate=0.012,
                                                epochs=10),
                            metrics=context.metrics)
    policy = RetrainPolicy(RetrainPolicyConfig(
        min_window=24, cooldown_s=900.0, min_new_samples=8,
        post_alarm_samples=28), clock=context.clock)
    loop = OnlineLoop(
        context.registry, context.controller, buffer, trainer, policy,
        AntiRegressionGate(),
        OnlineLoopConfig(train_window=32, holdout_every=4),
        metrics=context.metrics, clock=context.clock,
        on_event=context.record_event)
    if context.quality is not None:
        loop.attach(context.quality)
    context.online = loop
    context.primary.attach_feedback(loop)
    context.controller.policy = dataclasses.replace(
        context.controller.policy,
        max_quality_mae_ratio=0.95, min_quality_routes=8)


# ----------------------------------------------------------------------
# Scenario hooks
# ----------------------------------------------------------------------
def _corrupt_checkpoint_hook(context: ScenarioContext) -> None:
    """Rot the served version's checkpoint; prove the reload is refused."""
    registry = context.registry
    version = registry.versions()[0]
    path = registry.checkpoint_path(version)
    corrupt_checkpoint(path, seed=context.config.seed)
    try:
        registry.load(version)
    except CheckpointIntegrityError as error:
        context.record_event(
            "checkpoint_corruption_rejected",
            f"reload of {version} refused: {error}")
    else:  # pragma: no cover - would be a registry integrity bug
        context.record_event(
            "checkpoint_corruption_missed",
            f"reload of {version} succeeded on a corrupt file")
        raise AssertionError(
            "registry loaded a corrupt checkpoint during the "
            "checkpoint_corruption scenario")


def _start_label_shift_hook(context: ScenarioContext) -> None:
    """Start a clean canary, then silently corrupt the ground truth.

    The candidate is healthy on every serving metric (no faults, normal
    latency), and the canary verdict is disabled by an unreachable
    ``min_requests`` — so if the candidate gets rolled back, it can only
    have been the quality monitor's drift alarm that did it.  The label
    shift itself models couriers arriving hours late while predictions
    are unchanged: invisible to latency/degraded series, glaring in the
    ETA-error stream.
    """
    controller = context.controller
    controller.policy = dataclasses.replace(
        controller.policy, min_requests=10 ** 9)
    version = controller.start_canary("v002")
    context.breaker_watch.append(controller.candidate.breaker)
    context.record_event(
        "canary_started",
        f"healthy candidate {version} took "
        f"{controller.policy.canary_fraction:.0%} of traffic")
    context.eta_shift["minutes"] = context.config.quality_shift_minutes
    context.record_event(
        "label_shift",
        f"actual arrivals shifted by "
        f"{context.config.quality_shift_minutes:.0f} minutes")


def _start_faulty_canary_hook(context: ScenarioContext) -> None:
    """Begin a canary of v002 whose model path is fault-injected."""
    candidate_injector = FaultInjector(
        FaultPlan(error_rate=0.7, spike_rate=0.2,
                  latency_spike_ms=context.config.deadline_ms / 4),
        seed=context.config.seed + 5, sleeper=context.sleeper)
    version = context.controller.start_canary(
        "v002", fault_injector=candidate_injector)
    context.breaker_watch.append(context.controller.candidate.breaker)
    context.record_event("canary_started",
                         f"faulty candidate {version} took "
                         f"{context.config.canary_fraction:.0%} of traffic")


# ----------------------------------------------------------------------
# Phase profiles
# ----------------------------------------------------------------------
def _steady_phases(c: LoadRunConfig) -> List[LoadPhase]:
    return [
        LoadPhase("warmup", 0.25 * c.phase_duration_s, c.rate, slo=False),
        LoadPhase("steady", c.phase_duration_s, c.rate),
    ]


def _surge_phases(c: LoadRunConfig) -> List[LoadPhase]:
    return [
        LoadPhase("baseline", 0.5 * c.phase_duration_s, c.rate),
        # Deliberate overload: excluded from the SLO verdict, but the
        # shed/degraded mix is recorded and recovery must be clean.
        LoadPhase("surge", c.phase_duration_s, c.rate * c.surge_factor,
                  slo=False),
        LoadPhase("recovery", 0.5 * c.phase_duration_s, c.rate),
    ]


def _churn_phases(c: LoadRunConfig) -> List[LoadPhase]:
    return [
        LoadPhase("stable_fleet", 0.5 * c.phase_duration_s, c.rate),
        LoadPhase("churn", c.phase_duration_s, c.rate,
                  mutator=courier_churn_mutator()),
        LoadPhase("settled", 0.5 * c.phase_duration_s, c.rate),
    ]


def _gps_phases(c: LoadRunConfig) -> List[LoadPhase]:
    return [
        LoadPhase("clean_fixes", 0.5 * c.phase_duration_s, c.rate),
        LoadPhase("gps_dropout", c.phase_duration_s, c.rate,
                  mutator=gps_noise_mutator()),
        LoadPhase("fixes_restored", 0.5 * c.phase_duration_s, c.rate),
    ]


def _fault_storm_phases(c: LoadRunConfig) -> List[LoadPhase]:
    storm_plan = FaultPlan(error_rate=0.85, spike_rate=0.2,
                           latency_spike_ms=c.deadline_ms / 4)
    return [
        LoadPhase("calm", 0.5 * c.phase_duration_s, c.rate),
        LoadPhase("storm", c.phase_duration_s, c.rate,
                  fault_plan=storm_plan, slo=False),
        LoadPhase("recovery", 0.5 * c.phase_duration_s, c.rate),
    ]


def _checkpoint_phases(c: LoadRunConfig) -> List[LoadPhase]:
    return [
        LoadPhase("steady", 0.5 * c.phase_duration_s, c.rate),
        # The corruption happens at phase entry; traffic continues on
        # the in-memory model and must be indistinguishable from steady.
        LoadPhase("corrupted_disk", c.phase_duration_s, c.rate,
                  on_enter=_corrupt_checkpoint_hook),
        LoadPhase("steady_after", 0.5 * c.phase_duration_s, c.rate),
    ]


def _canary_surge_phases(c: LoadRunConfig) -> List[LoadPhase]:
    surge_rate = c.rate * max(2.0, c.surge_factor / 2.0)
    return [
        LoadPhase("baseline", 0.5 * c.phase_duration_s, c.rate),
        LoadPhase("canary_surge", c.phase_duration_s, surge_rate,
                  on_enter=_start_faulty_canary_hook, slo=False),
        LoadPhase("recovery", 0.5 * c.phase_duration_s, c.rate),
    ]


def _kill_shard_hook(context: ScenarioContext) -> None:
    """Terminate one shard; the router must respawn it on demand."""
    victim = 1 if context.router.num_shards > 1 else 0
    context.router.kill_shard(victim)
    context.record_event("shard_killed",
                         f"shard {victim} terminated mid-phase")


def _shard_soak_phases(c: LoadRunConfig) -> List[LoadPhase]:
    # One full diurnal cycle squeezed into the phase.  The peak
    # (base·(1+A)) deliberately exceeds the modeled single-timeline
    # capacity so admission control must shed, while the cycle mean
    # stays below it so the backlog fully drains in the trough and the
    # closing steady phase is judged clean.
    period = 2.0 * c.phase_duration_s
    diurnal_base = 1.375 * c.rate
    return [
        LoadPhase("warmup", 0.25 * c.phase_duration_s, c.rate, slo=False),
        LoadPhase("diurnal", period, diurnal_base,
                  rate_profile=diurnal_rate(diurnal_base, amplitude=0.9,
                                            period_s=period),
                  profile_name="diurnal", slo=False),
        LoadPhase("steady", c.phase_duration_s, c.rate),
    ]


def _shard_kill_phases(c: LoadRunConfig) -> List[LoadPhase]:
    # Every phase counts toward the SLO: losing one shard of N must
    # not break the tail because the router respawns it on the next
    # request placed there (zero virtual-time cost, bounded wall cost).
    return [
        LoadPhase("steady", 0.5 * c.phase_duration_s, c.rate),
        LoadPhase("kill", c.phase_duration_s, c.rate,
                  on_enter=_kill_shard_hook),
        LoadPhase("recovered", 0.5 * c.phase_duration_s, c.rate),
    ]


def _quality_drift_phases(c: LoadRunConfig) -> List[LoadPhase]:
    return [
        LoadPhase("baseline", 0.5 * c.phase_duration_s, c.rate),
        # Latency physics are untouched — the phase is excluded from
        # the SLO verdict only because the canary split changes the
        # serving path, not because degradation is expected.
        LoadPhase("label_shift", c.phase_duration_s, c.rate,
                  on_enter=_start_label_shift_hook, slo=False),
        LoadPhase("post_rollback", 0.5 * c.phase_duration_s, c.rate),
    ]


def _start_continual_shift_hook(context: ScenarioContext) -> None:
    """A persistent regime change: couriers run hours late from here on.

    Unlike ``quality_drift`` (a transient corruption that must roll a
    candidate *back*), this shift never reverts — the only way to good
    predictions again is for the online loop to learn it.
    """
    shift = context.config.quality_shift_minutes
    context.eta_shift["minutes"] = shift
    context.record_event(
        "label_shift",
        f"storm regime: actual arrivals shifted by {shift:.0f} minutes "
        f"plus weather-coupled delays")


def _continual_drift_phases(c: LoadRunConfig) -> List[LoadPhase]:
    # Storm phases run at reduced demand (order volume drops in severe
    # weather) so the weather-doubled service time stays just under
    # saturation — the story here is prediction quality, not shedding.
    storm = storm_weather_mutator()
    storm_rate = 0.75 * c.rate
    # The loop needs enough routes to fill the retrain window, ride out
    # post-alarm arming and complete a canary; floor the phase length so
    # short smoke configs still exercise the full drift->promote arc.
    d = max(c.phase_duration_s, 2.5)
    return [
        LoadPhase("baseline", 0.5 * d, c.rate),
        # The storm never clears and the lateness never reverts: the
        # loop must alarm, fine-tune on the shifted window, and canary
        # the student through the quality-gated verdict.  Excluded
        # from the SLO verdict (canary split + slowed service path).
        LoadPhase("storm_shift", 1.5 * d, storm_rate,
                  on_enter=_start_continual_shift_hook, mutator=storm,
                  slo=False),
        # Post-promotion: the student serves the same shifted traffic;
        # its windowed ETA MAE is the before/after comparison.
        LoadPhase("adapted", 0.5 * d, storm_rate,
                  mutator=storm, slo=False),
    ]


def _clear_storm_hook(context: ScenarioContext) -> None:
    """The storm passes: actual arrivals revert to the clean regime."""
    context.eta_shift["minutes"] = 0.0
    context.record_event(
        "regime_revert",
        "storm cleared: actual arrivals back on the baseline regime")


def _regime_cycle_phases(c: LoadRunConfig) -> List[LoadPhase]:
    # Same storm arc as continual_drift, but the storm *clears*: the
    # promoted storm student now mispredicts the returning clean
    # regime, and the loop must swap the regime-matched zoo entry (the
    # original calm model) back in — a reactivation, not a retrain.
    storm = storm_weather_mutator()
    storm_rate = 0.75 * c.rate
    d = max(c.phase_duration_s, 2.5)
    return [
        LoadPhase("baseline", 0.5 * d, c.rate),
        LoadPhase("storm_shift", 1.5 * d, storm_rate,
                  on_enter=_start_continual_shift_hook, mutator=storm,
                  slo=False),
        # The shift reverts with the weather.  The storm student keeps
        # serving until the loop's regime vote flips and the zoo swaps
        # the calm model back; excluded from the SLO verdict while the
        # swap is in flight.
        LoadPhase("storm_clears", 0.75 * d, c.rate,
                  on_enter=_clear_storm_hook, slo=False),
        # Post-reactivation: the original model serves clean traffic.
        LoadPhase("reverted", 0.5 * d, c.rate),
    ]


def _weather_slowdown_phases(c: LoadRunConfig) -> List[LoadPhase]:
    # Storm weather doubles the modeled service time at unchanged
    # demand: the arrival interval (25 ms at the default rate) drops
    # below the storm-inflated cost (~30 ms), so the open-loop backlog
    # grows and admission control must shed — load shape emerging from
    # a *feature* of the traffic, not from a rate knob.
    return [
        LoadPhase("clear", 0.5 * c.phase_duration_s, c.rate),
        LoadPhase("storm", c.phase_duration_s, c.rate,
                  mutator=storm_weather_mutator(), slo=False),
        LoadPhase("clearing", 0.5 * c.phase_duration_s, c.rate,
                  mutator=storm_weather_mutator(severity=1)),
    ]


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario for scenario in [
        Scenario("steady",
                 "constant-rate steady state; the SLO reference run",
                 _steady_phases),
        Scenario("surge",
                 "rush-hour 4x overload; shedding mid-surge, clean recovery",
                 _surge_phases),
        Scenario("courier_churn",
                 "every request from a never-seen courier (cold caches)",
                 _churn_phases),
        Scenario("gps_dropout",
                 "coordinate noise and stale courier fixes",
                 _gps_phases),
        Scenario("fault_storm",
                 "transient-error burst; breaker must open and recover",
                 _fault_storm_phases),
        Scenario("checkpoint_corruption",
                 "on-disk checkpoint rots mid-run; reload refused, "
                 "serving unaffected",
                 _checkpoint_phases, needs_registry=True),
        Scenario("canary_surge",
                 "faulty candidate canaries during a surge; must roll back",
                 _canary_surge_phases, needs_registry=True,
                 needs_controller=True),
        Scenario("quality_drift",
                 "ground-truth labels shift mid-canary; drift alarm must "
                 "fire and roll the candidate back",
                 _quality_drift_phases, needs_registry=True,
                 needs_controller=True, attach_quality=True),
        Scenario("shard_soak",
                 "diurnal arrivals over N shards; admission sheds the "
                 "peak, steady tail must be SLO-clean",
                 _shard_soak_phases, needs_shards=True),
        Scenario("shard_kill",
                 "a shard dies mid-run; the router respawns it without "
                 "breaking the SLO",
                 _shard_kill_phases, needs_shards=True),
        Scenario("weather_slowdown",
                 "a storm front inflates weather-coupled service times; "
                 "admission must shed the storm and recover as it clears",
                 _weather_slowdown_phases, weather_coupled=True),
        Scenario("continual_drift",
                 "a persistent storm regime shifts the labels; the "
                 "online loop must alarm, fine-tune on the window, and "
                 "canary-promote the student",
                 _continual_drift_phases, needs_registry=True,
                 needs_controller=True, attach_quality=True,
                 attach_online=True, weather_coupled=True),
        Scenario("regime_cycle",
                 "the storm regime shifts the labels, the loop adapts, "
                 "then the storm clears; the zoo must swap the original "
                 "regime's model back in without retraining",
                 _regime_cycle_phases, needs_registry=True,
                 needs_controller=True, attach_quality=True,
                 attach_online=True, weather_coupled=True),
    ]
}


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_scenario(name: str, config: Optional[LoadRunConfig] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 registry_dir: Optional[Path] = None,
                 model: Optional[M2G4RTP] = None) -> ScenarioResult:
    """Run one named scenario end to end; returns result + artifact."""
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {name!r}; have {sorted(SCENARIOS)}")
    scenario = SCENARIOS[name]
    config = config or LoadRunConfig()
    context = build_context(scenario, config, metrics=metrics,
                            registry_dir=registry_dir, model=model)
    try:
        results: List[PhaseResult] = []
        for phase in scenario.build_phases(config):
            context.current_phase = phase.name
            context.injector.plan = phase.fault_plan or FaultPlan()
            if phase.on_enter is not None:
                phase.on_enter(context)
            opens_before = context.breaker_opens()
            result = context.driver.run_phase(
                phase, lambda: context.stream.next(phase.mutator))
            result.breaker_opens = context.breaker_opens() - opens_before
            results.append(result)
        decisions = []
        if context.controller is not None:
            decisions = [
                {"action": d.action, "version": d.version,
                 "reason": d.reason}
                for d in context.controller.decisions]
        quality_block = None
        if context.quality is not None:
            monitor = context.quality
            quality_block = {
                "observations": int(monitor.observations),
                "drift_metric": monitor.drift_metric,
                "window": int(monitor.window),
                "segments": monitor.segment_summary(),
                "alarms": [alarm.to_dict() for alarm in monitor.alarms],
                "verdict": "drift" if monitor.alarms else "stable",
            }
        config_block = {
            "base_rate_rps": config.rate,
            "phase_duration_s": config.phase_duration_s,
            "surge_factor": config.surge_factor,
            "model_latency_ms": (config.model_latency_ms
                                 if config.virtual else None),
            "deadline_ms": config.deadline_ms,
            "max_queue_depth": config.max_queue_depth,
            "hidden_dim": config.hidden_dim,
        }
        if config.closed_loop:
            # Key present only for comparison runs so earlier
            # baselines keep their exact bytes.
            config_block["closed_loop"] = True
        shards_block = None
        if context.router is not None:
            # Key present only for sharded scenarios so earlier
            # baselines keep their exact bytes.
            config_block["num_shards"] = config.num_shards
            shards_block = context.router.shard_stats()
        artifact = build_artifact(
            scenario=name, description=scenario.description,
            mode=config.mode, seed=config.seed,
            config=config_block,
            phases=results, slo_policy=config.slo, registry=context.metrics,
            events=context.events, decisions=decisions,
            quality=quality_block, shards=shards_block)
        return ScenarioResult(scenario=name, artifact=artifact,
                              phases=results, context=context)
    finally:
        context.close()
