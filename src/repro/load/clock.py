"""Virtual time for the load harness' deterministic fast path.

The open-loop driver, the resilience layer and the fault injector all
take injectable ``clock``/``sleeper`` callables.  :class:`VirtualClock`
implements both over a simulated timeline: ``sleep`` advances time
instead of blocking, so a 60-second scenario replays in milliseconds
and — because nothing depends on the host's scheduler — every latency,
deadline breach, shed decision and breaker transition is bit-for-bit
reproducible from the seed.

:class:`ModeledLatencyService` is the missing piece between the two
worlds: under a virtual clock the real model forward costs zero
*virtual* time, so the wrapper advances the clock by a seeded modeled
service duration per call.  Queueing collapse then emerges from
arithmetic (modeled service time > arrival interval) exactly as it
does from wall-clock physics.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


class VirtualClock:
    """A monotonic simulated clock; callable like ``time.perf_counter``.

    ``sleep`` advances the timeline (never blocks) and records every
    requested delay, so scheduler tests can assert the exact waits the
    open-loop driver asked for.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self.sleeps: List[float] = []

    def __call__(self) -> float:
        return self._now

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def sleep(self, seconds: float) -> None:
        """Advance time by ``seconds`` (negative requests are a no-op)."""
        self.sleeps.append(float(seconds))
        if seconds > 0:
            self._now += float(seconds)

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep."""
        if seconds < 0:
            raise ValueError("cannot advance a monotonic clock backwards")
        self._now += float(seconds)


#: Default service-time multiplier per simulator weather code
#: (0 clear, 1 cloudy, 2 rain, 3 storm).  Bad weather slows the whole
#: fulfilment path — couriers confirm late, map services degrade — so
#: the modeled serving cost inflates with it.
WEATHER_SERVICE_SLOWDOWN = {0: 1.0, 1: 1.05, 2: 1.35, 3: 2.0}


class ModeledLatencyService:
    """Service shim that charges a modeled duration to a virtual clock.

    Each ``handle`` advances ``clock`` by a lognormal-shaped service
    time (``base_ms`` scaled by ``exp(sigma * N(0, 1))``) drawn from a
    seeded RNG, then delegates to the wrapped service.  The real
    forward still runs — predictions are the model's — but *time* is
    simulated, which is what makes deadline/shedding/breaker dynamics
    deterministic.

    ``weather_factors`` optionally couples the cost to the request's
    ``weather`` feature (see :data:`WEATHER_SERVICE_SLOWDOWN`).  The
    multiplier is applied *after* the lognormal draw, so enabling the
    coupling never perturbs the RNG stream — clear-weather requests
    cost exactly what they cost without it.
    """

    def __init__(self, service, clock: VirtualClock, base_ms: float,
                 sigma: float = 0.2, seed: int = 0,
                 weather_factors=None):
        if base_ms < 0:
            raise ValueError("base_ms must be non-negative")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.service = service
        self.clock = clock
        self.base_ms = base_ms
        self.sigma = sigma
        self.weather_factors = (dict(weather_factors)
                                if weather_factors is not None else None)
        self._rng = np.random.default_rng(seed)

    def _weather_factor(self, weather) -> float:
        if self.weather_factors is None or weather is None:
            return 1.0
        return float(self.weather_factors.get(int(weather), 1.0))

    def _charge(self, weather=None) -> None:
        cost_ms = self.base_ms * float(np.exp(
            self.sigma * self._rng.standard_normal()))
        cost_ms *= self._weather_factor(weather)
        self.clock.advance(cost_ms / 1000.0)

    def handle(self, request):
        self._charge(getattr(request, "weather", None))
        return self.service.handle(request)

    def handle_batch(self, requests: Sequence):
        # One charge per batch; the worst weather in the batch gates
        # the whole batch, like the slowest item in a fused forward.
        weathers = [getattr(r, "weather", None) for r in requests]
        weathers = [w for w in weathers if w is not None]
        self._charge(max(weathers) if weathers else None)
        return self.service.handle_batch(requests)

    def __getattr__(self, name):
        # Forward cache/queries_served/... to the wrapped service.
        return getattr(self.service, name)
