"""Graph substrate: k-NN connectivity and multi-level graph builders."""

from .knn import knn_adjacency, connectivity_matrix
from .multilevel import (
    AOI_NODE_FEATURES,
    EDGE_FEATURES,
    GLOBAL_CONTINUOUS,
    GLOBAL_DISCRETE,
    LOCATION_NODE_FEATURES,
    GraphBuilder,
    LevelGraph,
    MultiLevelGraph,
    build_graphs,
)

__all__ = [
    "knn_adjacency", "connectivity_matrix",
    "GraphBuilder", "LevelGraph", "MultiLevelGraph", "build_graphs",
    "LOCATION_NODE_FEATURES", "AOI_NODE_FEATURES", "EDGE_FEATURES",
    "GLOBAL_CONTINUOUS", "GLOBAL_DISCRETE",
]
