"""Multi-level graph construction (paper Definition 3 and Eqs. 12-17).

:class:`GraphBuilder` turns an :class:`~repro.data.entities.RTPInstance`
into a :class:`MultiLevelGraph`: location-level and AOI-level node /
edge feature tensors, k-NN connectivity, the location→AOI affiliation
map, courier profile features and global context features.

Feature scaling: distances are expressed in kilometres, times in hours
relative to the request time, so every continuous feature is O(1) and
the models need no per-dataset normalisation pass.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np

from ..data.entities import RTPInstance, pairwise_distance_matrix, geo_distance_meters
from .knn import connectivity_matrix

#: Scale constants shared by every feature producer.
_KM = 1_000.0
_HOUR = 60.0
_SPEED_SCALE = 300.0  # metres/minute, a fast courier
_HOURS_SCALE = 10.0

#: Names of the location-level continuous node features (Eq. 12).
LOCATION_NODE_FEATURES = (
    "lon_offset_km", "lat_offset_km", "dist_to_courier_km",
    "since_accept_h", "deadline_h", "slack_h",
)
#: Names of the AOI-level continuous node features (Eq. 13).
AOI_NODE_FEATURES = (
    "lon_offset_km", "lat_offset_km", "dist_to_courier_km",
    "earliest_deadline_h", "slack_h", "member_count",
)
#: Edge features at both levels (Eqs. 14/16).
EDGE_FEATURES = ("dist_km", "deadline_gap_h", "connectivity")

#: Global continuous features (Eq. 17) and discrete ones.
GLOBAL_CONTINUOUS = ("working_hours", "speed", "attendance")
GLOBAL_DISCRETE = ("weather", "weekday")


@dataclasses.dataclass
class LevelGraph:
    """One level (location or AOI) of the multi-level graph."""

    continuous: np.ndarray        # (n, d_cont)
    discrete: np.ndarray          # (n, 2): [aoi_id, aoi_type]
    edge_features: np.ndarray     # (n, n, 3)
    adjacency: np.ndarray         # (n, n) bool, Eq. 15 connectivity
    distance_km: np.ndarray       # (n, n)

    @property
    def num_nodes(self) -> int:
        return self.continuous.shape[0]


@dataclasses.dataclass
class MultiLevelGraph:
    """The full model input built from one RTP instance (Def. 3)."""

    location: LevelGraph
    aoi: LevelGraph
    aoi_of_location: np.ndarray    # (n,) index into AOI level
    courier_id: int                # for the courier embedding (Eq. 28)
    courier_profile: np.ndarray    # (3,) observable courier vector u
    global_continuous: np.ndarray  # (3,)
    global_discrete: np.ndarray    # (2,): [weather, weekday]
    courier_distance_km: np.ndarray      # (n,) courier -> location
    aoi_courier_distance_km: np.ndarray  # (m,) courier -> AOI centre

    @property
    def num_locations(self) -> int:
        return self.location.num_nodes

    @property
    def num_aois(self) -> int:
        return self.aoi.num_nodes


class GraphBuilder:
    """Builds :class:`MultiLevelGraph` objects from instances.

    Parameters
    ----------
    k_neighbors:
        ``k`` of the spatial/temporal k-NN connectivity (Eq. 15).
    num_aoi_ids:
        Size of the AOI-id embedding vocabulary.  AOI ids from data are
        mapped into this range by modulo (a hashing trick), so a builder
        works for any dataset without a fitted vocabulary.
    """

    def __init__(self, k_neighbors: int = 3, num_aoi_ids: int = 256,
                 num_aoi_types: int = 8):
        if k_neighbors < 1:
            raise ValueError("k_neighbors must be >= 1")
        self.k_neighbors = k_neighbors
        self.num_aoi_ids = num_aoi_ids
        self.num_aoi_types = num_aoi_types

    # ------------------------------------------------------------------
    def build(self, instance: RTPInstance) -> MultiLevelGraph:
        location_level = self._build_location_level(instance)
        aoi_level = self._build_aoi_level(instance)
        courier = instance.courier
        return MultiLevelGraph(
            location=location_level,
            aoi=aoi_level,
            aoi_of_location=instance.aoi_index_of_location(),
            courier_id=courier.courier_id,
            courier_profile=np.array([
                courier.working_hours / _HOURS_SCALE,
                courier.speed / _SPEED_SCALE,
                courier.attendance_rate,
            ]),
            global_continuous=np.array([
                courier.working_hours / _HOURS_SCALE,
                courier.speed / _SPEED_SCALE,
                courier.attendance_rate,
            ]),
            global_discrete=np.array([instance.weather, instance.weekday],
                                     dtype=np.int64),
            courier_distance_km=location_level.continuous[:, 2].copy(),
            aoi_courier_distance_km=aoi_level.continuous[:, 2].copy(),
        )

    # ------------------------------------------------------------------
    def _build_location_level(self, instance: RTPInstance) -> LevelGraph:
        coords = instance.location_coords()
        courier_lon, courier_lat = instance.courier_position
        t = instance.request_time

        offsets_km = np.column_stack([
            (coords[:, 0] - courier_lon) * 96.1055,
            (coords[:, 1] - courier_lat) * 111.1949,
        ])
        dist_courier = np.array([
            loc.distance_to(courier_lon, courier_lat) for loc in instance.locations
        ]) / _KM
        accept = np.array([loc.accept_time for loc in instance.locations])
        deadline = np.array([loc.deadline for loc in instance.locations])

        continuous = np.column_stack([
            offsets_km,
            dist_courier,
            (t - accept) / _HOUR,
            deadline / (24 * _HOUR),
            (deadline - t) / _HOUR,
        ])
        discrete = np.column_stack([
            np.array([loc.aoi_id % self.num_aoi_ids for loc in instance.locations]),
            np.array([self._aoi_type(instance, loc.aoi_id) for loc in instance.locations]),
        ]).astype(np.int64)
        return self._level_from_geometry(coords, deadline, continuous, discrete)

    def _build_aoi_level(self, instance: RTPInstance) -> LevelGraph:
        coords = instance.aoi_coords()
        courier_lon, courier_lat = instance.courier_position
        t = instance.request_time
        aoi_of_loc = instance.aoi_index_of_location()

        offsets_km = np.column_stack([
            (coords[:, 0] - courier_lon) * 96.1055,
            (coords[:, 1] - courier_lat) * 111.1949,
        ])
        dist_courier = np.array([
            aoi.distance_to(courier_lon, courier_lat) for aoi in instance.aois
        ]) / _KM
        earliest_deadline = np.array([
            min(loc.deadline for loc, a in zip(instance.locations, aoi_of_loc) if a == j)
            for j in range(instance.num_aois)
        ])
        member_count = np.bincount(aoi_of_loc, minlength=instance.num_aois).astype(float)

        continuous = np.column_stack([
            offsets_km,
            dist_courier,
            earliest_deadline / (24 * _HOUR),
            (earliest_deadline - t) / _HOUR,
            member_count,
        ])
        discrete = np.column_stack([
            np.array([aoi.aoi_id % self.num_aoi_ids for aoi in instance.aois]),
            np.array([aoi.aoi_type % self.num_aoi_types for aoi in instance.aois]),
        ]).astype(np.int64)
        return self._level_from_geometry(coords, earliest_deadline, continuous, discrete)

    def _aoi_type(self, instance: RTPInstance, aoi_id: int) -> int:
        for aoi in instance.aois:
            if aoi.aoi_id == aoi_id:
                return aoi.aoi_type % self.num_aoi_types
        raise KeyError(f"AOI id {aoi_id} not in instance")

    def _level_from_geometry(self, coords: np.ndarray, deadline: np.ndarray,
                             continuous: np.ndarray,
                             discrete: np.ndarray) -> LevelGraph:
        distance_m = pairwise_distance_matrix(coords)
        deadline_gap = deadline[:, None] - deadline[None, :]
        adjacency = connectivity_matrix(distance_m, deadline_gap, self.k_neighbors)
        edge_features = np.stack([
            distance_m / _KM,
            deadline_gap / _HOUR,
            adjacency.astype(np.float64),
        ], axis=-1)
        return LevelGraph(
            continuous=continuous,
            discrete=discrete,
            edge_features=edge_features,
            adjacency=adjacency,
            distance_km=distance_m / _KM,
        )


def build_graphs(instances: Sequence[RTPInstance],
                 builder: Optional[GraphBuilder] = None
                 ) -> Dict[int, MultiLevelGraph]:
    """Precompute graphs for a dataset, keyed by instance position."""
    builder = builder or GraphBuilder()
    return {i: builder.build(instance) for i, instance in enumerate(instances)}
