"""k-nearest-neighbour connectivity (paper Eq. 15).

Two nodes are connected when either is among the other's k nearest
*spatial* neighbours (by distance) or k nearest *temporal* neighbours
(by deadline gap); every node is connected to itself.  The result is a
symmetric boolean adjacency matrix.
"""

from __future__ import annotations

import numpy as np


def knn_adjacency(cost: np.ndarray, k: int) -> np.ndarray:
    """Boolean adjacency where ``j`` is among ``i``'s k nearest by ``cost``.

    ``cost`` is an ``(n, n)`` symmetric non-negative matrix; the
    diagonal is ignored for neighbour selection.  The output is
    symmetrised (an edge exists if either endpoint selects the other).
    """
    cost = np.asarray(cost, dtype=np.float64)
    n = cost.shape[0]
    if cost.shape != (n, n):
        raise ValueError(f"cost matrix must be square, got {cost.shape}")
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    adjacency = np.zeros((n, n), dtype=bool)
    if n == 1 or k == 0:
        return adjacency
    masked = cost.copy()
    np.fill_diagonal(masked, np.inf)
    effective_k = min(k, n - 1)
    neighbor_idx = np.argpartition(masked, effective_k - 1, axis=1)[:, :effective_k]
    rows = np.repeat(np.arange(n), effective_k)
    adjacency[rows, neighbor_idx.reshape(-1)] = True
    return adjacency | adjacency.T


def connectivity_matrix(distance: np.ndarray, deadline_gap: np.ndarray,
                        k: int) -> np.ndarray:
    """Eq. 15: union of spatial k-NN, temporal k-NN, and self-loops."""
    spatial = knn_adjacency(distance, k)
    temporal = knn_adjacency(np.abs(deadline_gap), k)
    connectivity = spatial | temporal
    np.fill_diagonal(connectivity, True)
    return connectivity
