"""Weight initialisation schemes.

All initialisers take an explicit ``numpy.random.Generator`` so that
model construction is fully reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np


def xavier_uniform(rng: np.random.Generator, fan_in: int, fan_out: int,
                   shape=None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    if shape is None:
        shape = (fan_in, fan_out)
    return rng.uniform(-limit, limit, size=shape)


def kaiming_uniform(rng: np.random.Generator, fan_in: int, shape) -> np.ndarray:
    """He uniform initialisation, suited to ReLU networks."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def normal(rng: np.random.Generator, shape, std: float = 0.02) -> np.ndarray:
    """Small-variance Gaussian initialisation (used for embeddings)."""
    return rng.normal(0.0, std, size=shape)


def orthogonal(rng: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    """Orthogonal initialisation (used for LSTM recurrent weights)."""
    matrix = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, _ = np.linalg.qr(matrix)
    q = q[:rows, :cols] if q.shape[0] >= rows else q.T[:rows, :cols]
    return q
