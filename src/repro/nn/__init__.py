"""Neural layer library built on :mod:`repro.autodiff`."""

from .module import Module, Parameter
from .layers import Linear, Embedding, LayerNorm, Dropout, MLP, FeatureEncoder
from .recurrent import LSTMCell, LSTM, BiLSTM
from .gru import GRUCell, GRU
from .attention import (
    AdditivePointerAttention,
    MultiHeadSelfAttention,
    TransformerEncoderLayer,
)
from .gcn import GCN, GCNLayer, normalize_adjacency
from .positional import sinusoidal_position_encoding, position_encoding_table
from .summary import count_parameters_by_module, parameter_table
from . import init

__all__ = [
    "Module", "Parameter",
    "Linear", "Embedding", "LayerNorm", "Dropout", "MLP", "FeatureEncoder",
    "LSTMCell", "LSTM", "BiLSTM",
    "GRUCell", "GRU",
    "AdditivePointerAttention", "MultiHeadSelfAttention", "TransformerEncoderLayer",
    "GCN", "GCNLayer", "normalize_adjacency",
    "sinusoidal_position_encoding", "position_encoding_table",
    "count_parameters_by_module", "parameter_table",
    "init",
]
