"""Model introspection: parameter tables for any Module tree."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from .module import Module


def parameter_table(module: Module, group_depth: int = 1) -> str:
    """Render a parameter-count table grouped by name prefix.

    ``group_depth`` controls how many dotted name segments form a
    group, e.g. depth 1 groups ``encoder.location_encoder.w`` under
    ``encoder``.
    """
    if group_depth < 1:
        raise ValueError("group_depth must be >= 1")
    groups: Dict[str, int] = defaultdict(int)
    for name, parameter in module.named_parameters():
        key = ".".join(name.split(".")[:group_depth])
        groups[key] += parameter.size

    total = sum(groups.values())
    width = max([len(k) for k in groups] + [9])
    lines = [f"{'component':<{width}s} {'params':>10s} {'share':>7s}"]
    for key in sorted(groups, key=groups.get, reverse=True):
        share = 100.0 * groups[key] / total if total else 0.0
        lines.append(f"{key:<{width}s} {groups[key]:10d} {share:6.1f}%")
    lines.append(f"{'total':<{width}s} {total:10d} {100.0:6.1f}%")
    return "\n".join(lines)


def count_parameters_by_module(module: Module) -> Dict[str, int]:
    """Parameter counts keyed by first-level component name."""
    groups: Dict[str, int] = defaultdict(int)
    for name, parameter in module.named_parameters():
        groups[name.split(".")[0]] += parameter.size
    return dict(groups)
