"""Graph convolution layer used by the Graph2Route baseline.

Standard Kipf & Welling GCN with symmetric normalisation of the
(self-loop augmented) adjacency matrix.  The adjacency is a plain numpy
array — it is data, not a learnable quantity.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from .layers import Linear
from .module import Module


def normalize_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Return ``D^{-1/2} (A + I) D^{-1/2}`` for a boolean/float adjacency."""
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError(f"adjacency must be square, got shape {adjacency.shape}")
    a_hat = adjacency + np.eye(adjacency.shape[0])
    degree = a_hat.sum(axis=1)
    d_inv_sqrt = 1.0 / np.sqrt(degree)
    return a_hat * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]


class GCNLayer(Module):
    """One graph-convolution step: ``relu(Â X W)``."""

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 activation: bool = True):
        super().__init__()
        self.linear = Linear(in_dim, out_dim, rng)
        self.activation = activation

    def forward(self, x: Tensor, normalized_adjacency: np.ndarray) -> Tensor:
        out = Tensor(normalized_adjacency) @ self.linear(x)
        return out.relu() if self.activation else out


class GCN(Module):
    """Stack of GCN layers (the Graph2Route encoder)."""

    def __init__(self, in_dim: int, hidden_dim: int, num_layers: int,
                 rng: np.random.Generator):
        super().__init__()
        dims = [in_dim] + [hidden_dim] * num_layers
        self.layers = [
            GCNLayer(d_in, d_out, rng, activation=(i < num_layers - 1))
            for i, (d_in, d_out) in enumerate(zip(dims, dims[1:]))
        ]
        self.output_dim = hidden_dim

    def forward(self, x: Tensor, adjacency: np.ndarray) -> Tensor:
        normalized = normalize_adjacency(adjacency)
        for layer in self.layers:
            update = layer(x, normalized)
            # Residual connection when shapes allow; counters the
            # oversmoothing GCN stacks suffer on small dense graphs.
            x = x + update if update.shape == x.shape else update
        return x
