"""Module/Parameter abstraction on top of the autodiff engine.

Mirrors the familiar ``torch.nn.Module`` contract: parameters are
discovered recursively through attributes, submodules nest arbitrarily,
and models can round-trip their weights through plain dicts of numpy
arrays (used by the checkpoint code in :mod:`repro.training`).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..autodiff import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` flagged as trainable."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        # Parameters must stay trainable even if constructed under no_grad.
        self.requires_grad = True


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and ``Module`` instances as
    attributes; :meth:`parameters` walks the attribute tree to collect
    them.  ``train()``/``eval()`` toggle the :attr:`training` flag used
    by dropout.
    """

    def __init__(self):
        self.training = True

    # ------------------------------------------------------------------
    # Parameter discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in sorted(vars(self).items()):
            path = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{path}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{path}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{path}.{i}.")

    def parameters(self) -> List[Parameter]:
        return [parameter for _, parameter in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def num_parameters(self) -> int:
        return sum(parameter.size for parameter in self.parameters())

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        # Validate every shape before applying anything, so a mismatch
        # cannot leave the model half-loaded.
        values: Dict[str, np.ndarray] = {}
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"checkpoint {value.shape} vs model {parameter.data.shape}"
                )
            values[name] = value
        for name, parameter in own.items():
            parameter.data[...] = values[name]

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
