"""Attention layers.

* :class:`AdditivePointerAttention` — the masked pointer attention used
  by every route decoder in the paper family (Eqs. 29-30 for M²G4RTP,
  and the decoders of DeepRoute / FDNET / Graph2Route).
* :class:`MultiHeadSelfAttention` + :class:`TransformerEncoderLayer` —
  the DeepRoute baseline encoder.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autodiff import Tensor, concat, log_softmax, softmax
from .init import xavier_uniform
from .layers import LayerNorm, Linear, MLP
from .module import Module, Parameter


class AdditivePointerAttention(Module):
    """Bahdanau-style pointer scorer with a feasibility mask.

    Scores candidate ``keys`` (node embeddings) against a ``query``
    (decoder state), Eq. 29::

        o_j = v^T tanh(W_k key_j + W_q query)     if j feasible
        o_j = -inf                                otherwise

    :meth:`log_probs` applies masked log-softmax (Eq. 30).
    """

    def __init__(self, key_dim: int, query_dim: int, hidden_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.key_proj = Linear(key_dim, hidden_dim, rng, bias=False)
        self.query_proj = Linear(query_dim, hidden_dim, rng, bias=False)
        self.v = Parameter(xavier_uniform(rng, hidden_dim, 1, shape=(hidden_dim,)))

    def scores(self, keys: Tensor, query: Tensor) -> Tensor:
        """Unmasked scores, one per key: ``(n,)``."""
        hidden = (self.key_proj(keys) + self.query_proj(query)).tanh()
        return hidden @ self.v

    def log_probs(self, keys: Tensor, query: Tensor,
                  mask: np.ndarray) -> Tensor:
        """Masked log-probabilities over candidates.

        ``mask`` is boolean, ``True`` where a candidate is feasible.
        """
        mask = np.asarray(mask, dtype=bool)
        if not mask.any():
            raise ValueError("pointer attention requires at least one feasible candidate")
        return log_softmax(self.scores(keys, query), axis=-1, mask=mask)

    def scores_batch(self, keys: Tensor, query: Tensor) -> Tensor:
        """Batched unmasked scores: ``(B, n, d)`` keys × ``(B, q)`` queries → ``(B, n)``."""
        batch = keys.shape[0]
        projected_query = self.query_proj(query).reshape(batch, 1, -1)
        hidden = (self.key_proj(keys) + projected_query).tanh()
        return hidden @ self.v

    def log_probs_batch(self, keys: Tensor, query: Tensor,
                        mask: np.ndarray) -> Tensor:
        """Batched masked log-probabilities, ``(B, n)``.

        Each row of ``mask`` must have at least one feasible candidate
        (batched decoders give finished/padded rows a dummy candidate).
        The per-row arithmetic is identical to :meth:`log_probs`, so a
        batched decode step reproduces the sequential one bit-for-bit.
        """
        mask = np.asarray(mask, dtype=bool)
        if not mask.any(axis=-1).all():
            raise ValueError(
                "pointer attention requires at least one feasible candidate per row")
        return log_softmax(self.scores_batch(keys, query), axis=-1, mask=mask)


class MultiHeadSelfAttention(Module):
    """Multi-head scaled-dot-product self-attention over ``(n, d)`` inputs."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, rng, bias=False)
        self.k_proj = Linear(dim, dim, rng, bias=False)
        self.v_proj = Linear(dim, dim, rng, bias=False)
        self.out_proj = Linear(dim, dim, rng)

    def forward(self, x: Tensor) -> Tensor:
        n = x.shape[0]
        scale = 1.0 / np.sqrt(self.head_dim)
        heads = []
        for head in range(self.num_heads):
            lo, hi = head * self.head_dim, (head + 1) * self.head_dim
            q = self.q_proj(x)[:, lo:hi]
            k = self.k_proj(x)[:, lo:hi]
            v = self.v_proj(x)[:, lo:hi]
            weights = softmax((q @ k.T) * scale, axis=-1)
            heads.append(weights @ v)
        return self.out_proj(concat(heads, axis=-1))


class TransformerEncoderLayer(Module):
    """Pre-norm transformer block: self-attention + position-wise MLP."""

    def __init__(self, dim: int, num_heads: int, ff_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.attention = MultiHeadSelfAttention(dim, num_heads, rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.feed_forward = MLP([dim, ff_dim, dim], rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attention(self.norm1(x))
        x = x + self.feed_forward(self.norm2(x))
        return x
