"""Recurrent layers: LSTMCell, unrolled LSTM and bidirectional LSTM.

The route decoders (Eq. 28), the SortLSTM time decoders (Eq. 33), the
FDNET baseline encoder and the "w/o graph" ablation encoder all build on
these cells.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..autodiff import Tensor, concat, stack
from .init import orthogonal, xavier_uniform
from .module import Module, Parameter


class LSTMCell(Module):
    """Single LSTM step.

    Gates follow the standard formulation::

        i, f, g, o = split(x W_x + h W_h + b)
        c' = sigmoid(f) * c + sigmoid(i) * tanh(g)
        h' = sigmoid(o) * tanh(c')

    The forget-gate bias is initialised to 1 to ease gradient flow early
    in training.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.weight_x = Parameter(xavier_uniform(rng, input_dim, 4 * hidden_dim))
        self.weight_h = Parameter(
            np.concatenate(
                [orthogonal(rng, hidden_dim, hidden_dim) for _ in range(4)], axis=1
            )
        )
        bias = np.zeros(4 * hidden_dim)
        bias[hidden_dim:2 * hidden_dim] = 1.0
        self.bias = Parameter(bias)

    def initial_state(self, batch_shape: Tuple[int, ...] = ()) -> Tuple[Tensor, Tensor]:
        shape = batch_shape + (self.hidden_dim,)
        return Tensor(np.zeros(shape)), Tensor(np.zeros(shape))

    def forward(self, x: Tensor, state: Optional[Tuple[Tensor, Tensor]] = None
                ) -> Tuple[Tensor, Tensor]:
        if state is None:
            state = self.initial_state(x.shape[:-1])
        h, c = state
        gates = x @ self.weight_x + h @ self.weight_h + self.bias
        d = self.hidden_dim
        i_gate = gates[..., 0 * d:1 * d].sigmoid()
        f_gate = gates[..., 1 * d:2 * d].sigmoid()
        g_gate = gates[..., 2 * d:3 * d].tanh()
        o_gate = gates[..., 3 * d:4 * d].sigmoid()
        c_next = f_gate * c + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next


class LSTM(Module):
    """Unrolled single-layer LSTM over a ``(seq, features)`` tensor.

    Returns the per-step hidden states stacked into ``(seq, hidden)``
    plus the final ``(h, c)`` state.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.cell = LSTMCell(input_dim, hidden_dim, rng)
        self.hidden_dim = hidden_dim

    def forward(self, sequence: Tensor,
                state: Optional[Tuple[Tensor, Tensor]] = None
                ) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        outputs: List[Tensor] = []
        h_c = state
        for step in range(sequence.shape[0]):
            h, c = self.cell(sequence[step], h_c)
            h_c = (h, c)
            outputs.append(h)
        return stack(outputs, axis=0), h_c


class BiLSTM(Module):
    """Bidirectional LSTM — the paper's "w/o graph" ablation encoder.

    Concatenates forward and backward hidden states, giving output
    dimension ``2 * hidden_dim``.
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.forward_lstm = LSTM(input_dim, hidden_dim, rng)
        self.backward_lstm = LSTM(input_dim, hidden_dim, rng)
        self.output_dim = 2 * hidden_dim

    def forward(self, sequence: Tensor) -> Tensor:
        n = sequence.shape[0]
        forward_states, _ = self.forward_lstm(sequence)
        reversed_seq = sequence[np.arange(n - 1, -1, -1)]
        backward_states, _ = self.backward_lstm(reversed_seq)
        backward_states = backward_states[np.arange(n - 1, -1, -1)]
        return concat([forward_states, backward_states], axis=-1)
