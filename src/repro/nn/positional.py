"""Sinusoidal positional encoding (paper Eq. 32, after Vaswani et al.).

SortLSTM concatenates these encodings to node embeddings so the time
decoder knows each node's position in the predicted route.
"""

from __future__ import annotations

import numpy as np


def sinusoidal_position_encoding(position: int, dim: int,
                                 base: float = 10000.0) -> np.ndarray:
    """Encoding vector for a single 1-indexed position.

    ``p[2k] = sin(pos / base^{2k/dim})``,
    ``p[2k+1] = cos(pos / base^{2k/dim})``.
    """
    if position < 1:
        raise ValueError(f"positions are 1-indexed, got {position}")
    if dim < 1:
        raise ValueError(f"encoding dim must be positive, got {dim}")
    encoding = np.zeros(dim)
    k = np.arange(0, dim, 2)
    angle = position / np.power(base, k / dim)
    encoding[0::2] = np.sin(angle)
    encoding[1::2] = np.cos(angle)[: encoding[1::2].size]
    return encoding


def position_encoding_table(max_position: int, dim: int,
                            base: float = 10000.0) -> np.ndarray:
    """Rows 0..max_position-1 encode positions 1..max_position."""
    return np.stack([
        sinusoidal_position_encoding(pos, dim, base)
        for pos in range(1, max_position + 1)
    ])
