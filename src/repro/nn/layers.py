"""Core feed-forward layers: Linear, Embedding, LayerNorm, Dropout, MLP."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..autodiff import Tensor, concat, dropout as dropout_fn
from .init import normal, xavier_uniform
from .module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x W + b``.

    Accepts inputs of any leading shape; the last axis must equal
    ``in_features``.
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(xavier_uniform(rng, in_features, out_features))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(normal(rng, (num_embeddings, embedding_dim), std=0.05))

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if np.any(indices < 0) or np.any(indices >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return self.weight[indices]


class LayerNorm(Module):
    """Layer normalisation over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (variance + self.eps) ** 0.5
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout driven by an explicit RNG for reproducibility."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return dropout_fn(x, self.rate, self._rng, training=self.training)


class MLP(Module):
    """Multi-layer perceptron with ReLU activations between layers.

    Used as the plug-in time-prediction head for route-only baselines
    (Section V-B of the paper: "a three-layer fully connected neural
    network").
    """

    def __init__(self, dims: Sequence[int], rng: np.random.Generator,
                 final_activation: bool = False):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        self.layers = [Linear(d_in, d_out, rng) for d_in, d_out in zip(dims, dims[1:])]
        self.final_activation = final_activation

    def forward(self, x: Tensor) -> Tensor:
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < last or self.final_activation:
                x = x.relu()
        return x


class FeatureEncoder(Module):
    """Embeds mixed discrete/continuous features (paper Eq. 18).

    Continuous columns go through a linear projection, each discrete
    column through its own embedding table; the results are concatenated.
    """

    def __init__(self, continuous_dim: int, discrete_cardinalities: Sequence[int],
                 continuous_out: int, discrete_out: int,
                 rng: np.random.Generator):
        super().__init__()
        self.continuous_dim = continuous_dim
        self.continuous = Linear(continuous_dim, continuous_out, rng)
        self.embeddings = [
            Embedding(cardinality, discrete_out, rng)
            for cardinality in discrete_cardinalities
        ]
        self.output_dim = continuous_out + discrete_out * len(discrete_cardinalities)

    def forward(self, continuous: Tensor, discrete: Optional[np.ndarray] = None) -> Tensor:
        parts = [self.continuous(continuous)]
        if self.embeddings:
            if discrete is None:
                raise ValueError("discrete features required but not provided")
            discrete = np.asarray(discrete, dtype=np.int64)
            for column, table in enumerate(self.embeddings):
                parts.append(table(discrete[..., column]))
        return concat(parts, axis=-1) if len(parts) > 1 else parts[0]
