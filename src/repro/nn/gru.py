"""GRU cell and unrolled GRU.

An alternative recurrent cell for the decoders (configurable through
``M2G4RTPConfig.cell_type``); GRUs have fewer parameters than LSTMs and
are a common drop-in in pointer-network literature.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..autodiff import Tensor, stack
from .init import orthogonal, xavier_uniform
from .module import Module, Parameter


class GRUCell(Module):
    """Single GRU step::

        r = sigmoid(x W_xr + h W_hr + b_r)
        z = sigmoid(x W_xz + h W_hz + b_z)
        n = tanh(x W_xn + r * (h W_hn) + b_n)
        h' = (1 - z) * n + z * h
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.weight_x = Parameter(xavier_uniform(rng, input_dim, 3 * hidden_dim))
        self.weight_h = Parameter(np.concatenate(
            [orthogonal(rng, hidden_dim, hidden_dim) for _ in range(3)], axis=1))
        self.bias = Parameter(np.zeros(3 * hidden_dim))

    def initial_state(self, batch_shape: Tuple[int, ...] = ()) -> Tensor:
        return Tensor(np.zeros(batch_shape + (self.hidden_dim,)))

    def forward(self, x: Tensor, h: Optional[Tensor] = None) -> Tensor:
        if h is None:
            h = self.initial_state(x.shape[:-1])
        d = self.hidden_dim
        gates_x = x @ self.weight_x + self.bias
        gates_h = h @ self.weight_h
        reset = (gates_x[..., 0:d] + gates_h[..., 0:d]).sigmoid()
        update = (gates_x[..., d:2 * d] + gates_h[..., d:2 * d]).sigmoid()
        candidate = (gates_x[..., 2 * d:3 * d]
                     + reset * gates_h[..., 2 * d:3 * d]).tanh()
        one = Tensor(np.ones_like(update.data))
        return (one - update) * candidate + update * h


class GRU(Module):
    """Unrolled single-layer GRU over a ``(seq, features)`` tensor."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: np.random.Generator):
        super().__init__()
        self.cell = GRUCell(input_dim, hidden_dim, rng)
        self.hidden_dim = hidden_dim

    def forward(self, sequence: Tensor,
                h: Optional[Tensor] = None) -> Tuple[Tensor, Tensor]:
        outputs: List[Tensor] = []
        for step in range(sequence.shape[0]):
            h = self.cell(sequence[step], h)
            outputs.append(h)
        return stack(outputs, axis=0), h
