"""Command-line interface: generate / train / evaluate / serve / obs.

Installed as ``repro-rtp``::

    repro-rtp generate --out data.csv --aois 60 --couriers 6 --days 10
    repro-rtp train --data data.csv --out model.npz --epochs 12 \\
        --events events.jsonl --trace train_trace.jsonl
    repro-rtp evaluate --data data.csv --model model.npz
    repro-rtp serve --data data.csv --model model.npz --queries 5 \\
        --trace trace.jsonl --metrics-out metrics.prom --profile-ops
    repro-rtp obs --file trace.jsonl

``train`` writes the model config next to the checkpoint
(``model.npz`` + ``model.json``) so ``evaluate``/``serve`` can rebuild
the exact architecture.  ``obs`` summarises a JSONL file produced by
``--trace`` (span trees) or ``--events`` (training telemetry).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

import numpy as np

from .core import M2G4RTP, M2G4RTPConfig
from .data import GeneratorConfig, RTPDataset, SyntheticWorld, read_csv, write_csv
from .eval import evaluate_method, format_table, model_predictor
from .obs import (EventLog, MetricsRegistry, disable_tracing, enable_tracing,
                  format_span_record, profile_ops, read_jsonl,
                  summarize_events, summarize_spans)
from .service import (ETAService, OrderSortingService, RTPRequest, RTPService,
                      ServiceMonitor)
from .training import Trainer, TrainerConfig, load_checkpoint, save_checkpoint


def _config_path(model_path: Path) -> Path:
    return model_path.with_suffix(".json")


def _save_model(model: M2G4RTP, path: Path) -> None:
    save_checkpoint(model, path)
    _config_path(path).write_text(
        json.dumps(dataclasses.asdict(model.config), indent=2))


def _load_model(path: Path) -> M2G4RTP:
    config_file = _config_path(path)
    if not config_file.exists():
        raise FileNotFoundError(
            f"missing model config {config_file}; train with this CLI "
            "or write the config JSON next to the checkpoint")
    config = M2G4RTPConfig(**json.loads(config_file.read_text()))
    model = M2G4RTP(config)
    load_checkpoint(model, path)
    model.eval()
    return model


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_generate(args: argparse.Namespace) -> int:
    config = GeneratorConfig(
        num_aois=args.aois, num_couriers=args.couriers, num_days=args.days,
        instances_per_courier_day=args.per_day, seed=args.seed)
    dataset = RTPDataset(SyntheticWorld(config).generate()).filter_paper_scope()
    write_csv(list(dataset), args.out)
    summary = dataset.summary()
    print(f"wrote {summary['num_instances']} instances "
          f"({summary['num_days']} days) to {args.out}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    dataset = read_csv(args.data)
    train, validation, _ = dataset.split_by_day()
    print(f"training on {len(train)} instances "
          f"(validating on {len(validation)})")
    model = M2G4RTP(M2G4RTPConfig(seed=args.seed,
                                  hidden_dim=args.hidden_dim))
    event_log = EventLog(args.events) if args.events else None
    registry = MetricsRegistry() if args.metrics_out else None
    collector = enable_tracing() if args.trace else None
    trainer = Trainer(model, TrainerConfig(
        epochs=args.epochs, learning_rate=args.lr, verbose=not args.quiet),
        event_log=event_log, registry=registry)
    try:
        history = trainer.fit(train, validation)
    finally:
        if event_log is not None:
            event_log.close()
        if collector is not None:
            disable_tracing()
    if collector is not None:
        count = collector.write_jsonl(args.trace)
        print(f"wrote {count} trace roots to {args.trace}")
    if registry is not None:
        Path(args.metrics_out).write_text(registry.render() + "\n")
        print(f"wrote metrics exposition to {args.metrics_out}")
    if event_log is not None:
        print(f"wrote training events to {args.events}")
    _save_model(model, Path(args.out))
    best = (f" (best epoch {history.best_epoch})"
            if history.best_epoch >= 0 else "")
    print(f"saved {args.out}{best}; "
          f"final train loss {history.train_loss[-1]:.4f}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = read_csv(args.data)
    _, _, test = dataset.split_by_day()
    model = _load_model(Path(args.model))
    evaluation = evaluate_method("M2G4RTP", model_predictor(model), test)
    print(format_table([evaluation], "route"))
    print()
    print(format_table([evaluation], "time"))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    dataset = read_csv(args.data)
    _, _, test = dataset.split_by_day()
    model = _load_model(Path(args.model))
    service = RTPService(model)
    registry = MetricsRegistry()
    monitor = ServiceMonitor(service, registry=registry)
    sorting = OrderSortingService(monitor)
    eta = ETAService(monitor)
    collector = enable_tracing() if args.trace else None
    profiler = None
    try:
        if args.profile_ops:
            from .obs import OpProfiler
            profiler = OpProfiler().start()
        for instance in list(test)[: args.queries]:
            request = RTPRequest.from_instance(instance)
            orders = sorting.sort_orders(request)
            entries = {entry.location_id: entry for entry in eta.etas(request)}
            print(f"\ncourier {request.courier.courier_id} "
                  f"({request.num_locations} orders):")
            for order in orders:
                entry = entries[order.location_id]
                flag = " !" if entry.overdue_risk else ""
                print(f"  {order.position:2d}. order {order.location_id} "
                      f"(AOI {order.aoi_id}) ETA {order.eta_minutes:5.1f} min"
                      f"{flag}")
    finally:
        if profiler is not None:
            profiler.stop()
        if collector is not None:
            disable_tracing()
    if profiler is not None:
        profiler.publish(registry)
        print("\ntop autodiff ops by self time:")
        print(profiler.report(top_k=args.top_ops))
    if collector is not None:
        count = collector.write_jsonl(args.trace)
        print(f"\nwrote {count} trace roots to {args.trace}")
    if args.metrics_out:
        Path(args.metrics_out).write_text(monitor.render_metrics() + "\n")
        print(f"wrote metrics exposition to {args.metrics_out}")
    print(f"\nserved {service.queries_served} queries")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    records = read_jsonl(args.file)
    if not records:
        print(f"{args.file}: empty")
        return 1
    if "duration_ms" in records[0]:
        print(f"trace: {len(records)} root spans\n")
        print(summarize_spans(records))
        show = min(args.show_trees, len(records))
        for record in records[:show]:
            print()
            print(format_span_record(record))
    else:
        print(f"events: {len(records)} records\n")
        print(summarize_events(records))
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    dataset = read_csv(args.data)
    for key, value in dataset.summary().items():
        print(f"{key:28s} {value}")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rtp",
        description="M2G4RTP route-and-time prediction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic dataset CSV")
    generate.add_argument("--out", required=True)
    generate.add_argument("--aois", type=int, default=60)
    generate.add_argument("--couriers", type=int, default=6)
    generate.add_argument("--days", type=int, default=10)
    generate.add_argument("--per-day", type=int, default=2)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=cmd_generate)

    train = sub.add_parser("train", help="train M2G4RTP on a CSV dataset")
    train.add_argument("--data", required=True)
    train.add_argument("--out", required=True)
    train.add_argument("--epochs", type=int, default=12)
    train.add_argument("--lr", type=float, default=3e-3)
    train.add_argument("--hidden-dim", type=int, default=32)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--quiet", action="store_true")
    train.add_argument("--events", default=None, metavar="PATH",
                       help="write per-epoch telemetry JSONL here")
    train.add_argument("--trace", default=None, metavar="PATH",
                       help="enable tracing; write span JSONL here")
    train.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write Prometheus exposition here after training")
    train.set_defaults(func=cmd_train)

    evaluate = sub.add_parser("evaluate", help="evaluate a trained model")
    evaluate.add_argument("--data", required=True)
    evaluate.add_argument("--model", required=True)
    evaluate.set_defaults(func=cmd_evaluate)

    serve = sub.add_parser("serve", help="replay requests through the service")
    serve.add_argument("--data", required=True)
    serve.add_argument("--model", required=True)
    serve.add_argument("--queries", type=int, default=3)
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="enable tracing; write span JSONL here")
    serve.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write Prometheus exposition here after serving")
    serve.add_argument("--profile-ops", action="store_true",
                       help="profile autodiff ops and print the top-k table")
    serve.add_argument("--top-ops", type=int, default=10,
                       help="rows in the op-profile table")
    serve.set_defaults(func=cmd_serve)

    obs = sub.add_parser(
        "obs", help="summarise a trace/event JSONL from train or serve")
    obs.add_argument("--file", required=True,
                     help="JSONL written by --trace or --events")
    obs.add_argument("--show-trees", type=int, default=1,
                     help="number of span trees to print for traces")
    obs.set_defaults(func=cmd_obs)

    info = sub.add_parser("info", help="summarise a CSV dataset")
    info.add_argument("--data", required=True)
    info.set_defaults(func=cmd_info)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
