"""Command-line interface: generate / train / evaluate / serve / deploy / obs.

Installed as ``repro-rtp``::

    repro-rtp generate --out data.csv --aois 60 --couriers 6 --days 10
    repro-rtp train --data data.csv --out model.npz --epochs 12 \\
        --events events.jsonl --trace train_trace.jsonl
    repro-rtp evaluate --data data.csv --model model.npz
    repro-rtp serve --data data.csv --model model.npz --queries 5 \\
        --trace trace.jsonl --metrics-out metrics.prom --profile-ops
    repro-rtp deploy register --registry reg/ --model model.npz
    repro-rtp deploy serve --registry reg/ --data data.csv \\
        --candidate latest --canary-frac 0.2
    repro-rtp load --scenario surge --smoke
    repro-rtp obs --file trace.jsonl

``train`` writes the model config next to the checkpoint
(``model.npz`` + ``model.json``) so ``evaluate``/``serve`` can rebuild
the exact architecture.  ``obs`` summarises a JSONL file produced by
``--trace`` (span trees) or ``--events`` (training telemetry).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

import numpy as np

from . import kernels
from .core import FallbackPredictor, M2G4RTP, M2G4RTPConfig
from .data import GeneratorConfig, RTPDataset, SyntheticWorld, read_csv, write_csv
from .deploy import (DeploymentController, FaultInjector, FaultPlan,
                     ModelRegistry, ResilienceConfig, RolloutPolicy)
from .eval import evaluate_method, format_table, model_predictor
from .obs import (EventLog, MetricsRegistry, disable_tracing, enable_tracing,
                  format_span_record, profile_ops, read_jsonl,
                  summarize_events, summarize_spans)
from .parallel import DataParallelTrainer, ParallelConfig
from .service import (ETAService, OrderSortingService, RTPRequest, RTPService,
                      ServiceMonitor)
from .training import Trainer, TrainerConfig, load_checkpoint, save_checkpoint


def _config_path(model_path: Path) -> Path:
    return model_path.with_suffix(".json")


def _save_model(model: M2G4RTP, path: Path) -> None:
    save_checkpoint(model, path)
    _config_path(path).write_text(
        json.dumps(dataclasses.asdict(model.config), indent=2))


def _select_kernels(args: argparse.Namespace) -> None:
    """Apply ``--kernels`` (overrides ``REPRO_KERNELS`` and the default)."""
    if getattr(args, "kernels", None):
        kernels.use(args.kernels)


def _load_model(path: Path) -> M2G4RTP:
    config_file = _config_path(path)
    if not config_file.exists():
        raise FileNotFoundError(
            f"missing model config {config_file}; train with this CLI "
            "or write the config JSON next to the checkpoint")
    config = M2G4RTPConfig(**json.loads(config_file.read_text()))
    model = M2G4RTP(config)
    load_checkpoint(model, path)
    model.eval()
    return model


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_generate(args: argparse.Namespace) -> int:
    config = GeneratorConfig(
        num_aois=args.aois, num_couriers=args.couriers, num_days=args.days,
        instances_per_courier_day=args.per_day, seed=args.seed)
    dataset = RTPDataset(SyntheticWorld(config).generate()).filter_paper_scope()
    write_csv(list(dataset), args.out)
    summary = dataset.summary()
    print(f"wrote {summary['num_instances']} instances "
          f"({summary['num_days']} days) to {args.out}")
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    dataset = read_csv(args.data)
    train, validation, _ = dataset.split_by_day()
    print(f"training on {len(train)} instances "
          f"(validating on {len(validation)})")
    model = M2G4RTP(M2G4RTPConfig(seed=args.seed,
                                  hidden_dim=args.hidden_dim))
    event_log = EventLog(args.events) if args.events else None
    registry = MetricsRegistry() if args.metrics_out else None
    collector = enable_tracing() if args.trace else None
    trainer_config = TrainerConfig(
        epochs=args.epochs, learning_rate=args.lr,
        batch_size=args.batch_size, verbose=not args.quiet)
    if args.workers > 0:
        parallel = ParallelConfig(
            num_workers=args.workers,
            loader_workers=args.loader_workers,
            prefetch=args.prefetch,
            deadline_s=(args.step_deadline_ms / 1000.0
                        if args.step_deadline_ms else None),
            accumulate_steps=args.accumulate)
        print(f"data-parallel training with {args.workers} workers "
              f"(prefetch {args.prefetch})")
        trainer: Trainer = DataParallelTrainer(
            model, trainer_config, parallel,
            event_log=event_log, registry=registry)
    else:
        trainer = Trainer(model, trainer_config,
                          event_log=event_log, registry=registry)
    try:
        history = trainer.fit(train, validation)
    finally:
        if event_log is not None:
            event_log.close()
        if collector is not None:
            disable_tracing()
    if collector is not None:
        count = collector.write_jsonl(args.trace)
        print(f"wrote {count} trace roots to {args.trace}")
    if registry is not None:
        Path(args.metrics_out).write_text(registry.render() + "\n")
        print(f"wrote metrics exposition to {args.metrics_out}")
    if event_log is not None:
        print(f"wrote training events to {args.events}")
    _save_model(model, Path(args.out))
    best = (f" (best epoch {history.best_epoch})"
            if history.best_epoch >= 0 else "")
    print(f"saved {args.out}{best}; "
          f"final train loss {history.train_loss[-1]:.4f}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    _select_kernels(args)
    dataset = read_csv(args.data)
    _, _, test = dataset.split_by_day()
    model = _load_model(Path(args.model))
    evaluation = evaluate_method("M2G4RTP", model_predictor(model), test)
    print(format_table([evaluation], "route"))
    print()
    print(format_table([evaluation], "time"))
    return 0


def _serve_sharded(args: argparse.Namespace) -> int:
    """``serve --shards N``: replay through the multi-process tier."""
    from .serving_shard import ShardConfig, ShardRouter

    dataset = read_csv(args.data)
    _, _, test = dataset.split_by_day()
    model = _load_model(Path(args.model))
    registry = MetricsRegistry()
    collector = enable_tracing() if args.trace else None
    router = ShardRouter(
        model, version="v001",
        config=ShardConfig(num_shards=args.shards),
        metrics=registry, inline=False)
    served = 0
    try:
        for instance in list(test)[: args.queries]:
            request = RTPRequest.from_instance(instance)
            shard = router.place(request)
            response = router.handle(request)
            served += 1
            flag = " (degraded)" if response.degraded else ""
            print(f"courier {request.courier.courier_id} -> shard {shard}: "
                  f"{request.num_locations} orders, "
                  f"{response.latency_ms:6.1f} ms, "
                  f"version {response.model_version}{flag}")
        print(f"\nserved {served} queries over {args.shards} shards:")
        for entry in router.shard_stats():
            print(f"  shard {entry['shard']}: {entry['requests']:4d} "
                  f"requests, {entry['shed']} shed, "
                  f"p99 {entry['p99_ms']:.1f} ms")
    finally:
        router.shutdown()
        if collector is not None:
            disable_tracing()
    if collector is not None:
        count = collector.write_jsonl(args.trace)
        print(f"wrote {count} trace roots to {args.trace}")
    if args.metrics_out:
        Path(args.metrics_out).write_text(registry.render() + "\n")
        print(f"wrote metrics exposition to {args.metrics_out}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    _select_kernels(args)
    if args.shards > 0:
        return _serve_sharded(args)
    dataset = read_csv(args.data)
    _, _, test = dataset.split_by_day()
    model = _load_model(Path(args.model))
    service = RTPService(model)
    registry = MetricsRegistry()
    monitor = ServiceMonitor(service, registry=registry)
    sorting = OrderSortingService(monitor)
    eta = ETAService(monitor)
    collector = enable_tracing() if args.trace else None
    profiler = None
    try:
        if args.profile_ops:
            from .obs import OpProfiler
            profiler = OpProfiler().start()
        for instance in list(test)[: args.queries]:
            request = RTPRequest.from_instance(instance)
            orders = sorting.sort_orders(request)
            entries = {entry.location_id: entry for entry in eta.etas(request)}
            print(f"\ncourier {request.courier.courier_id} "
                  f"({request.num_locations} orders):")
            for order in orders:
                entry = entries[order.location_id]
                flag = " !" if entry.overdue_risk else ""
                print(f"  {order.position:2d}. order {order.location_id} "
                      f"(AOI {order.aoi_id}) ETA {order.eta_minutes:5.1f} min"
                      f"{flag}")
    finally:
        if profiler is not None:
            profiler.stop()
        if collector is not None:
            disable_tracing()
    if profiler is not None:
        profiler.publish(registry)
        print("\ntop autodiff ops by self time:")
        print(profiler.report(top_k=args.top_ops))
    if collector is not None:
        count = collector.write_jsonl(args.trace)
        print(f"\nwrote {count} trace roots to {args.trace}")
    if args.metrics_out:
        Path(args.metrics_out).write_text(monitor.render_metrics() + "\n")
        print(f"wrote metrics exposition to {args.metrics_out}")
    print(f"\nserved {service.queries_served} queries")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    if args.file is None:
        print("obs: --file is required (or use `obs report`)",
              file=sys.stderr)
        return 2
    records = read_jsonl(args.file)
    if not records:
        print(f"{args.file}: empty")
        return 1
    if "duration_ms" in records[0]:
        print(f"trace: {len(records)} root spans\n")
        print(summarize_spans(records))
        show = min(args.show_trees, len(records))
        for record in records[:show]:
            print()
            print(format_span_record(record))
    else:
        print(f"events: {len(records)} records\n")
        print(summarize_events(records))
    return 0


def cmd_obs_report(args: argparse.Namespace) -> int:
    """Serve a query stream, join it with ground truth, emit the
    schema-pinned quality/drift artifact."""
    from .obs.quality import (CompletedRoute, PageHinkleyDetector,
                              QualityMonitor, ReferenceWindowDetector,
                              build_quality_artifact,
                              write_quality_artifact)
    if args.data:
        instances = list(read_csv(args.data))
        source = str(args.data)
    else:
        world = SyntheticWorld(GeneratorConfig(
            num_aois=40, num_couriers=6, num_days=4,
            instances_per_courier_day=2, seed=args.seed))
        instances = list(
            RTPDataset(world.generate()).filter_paper_scope())
        source = "synthetic"
    if not instances:
        print("obs report: no instances to serve", file=sys.stderr)
        return 1
    if args.model:
        model = _load_model(Path(args.model))
    else:
        model = M2G4RTP(M2G4RTPConfig(seed=args.seed, hidden_dim=16,
                                      num_heads=2, num_encoder_layers=1))
        model.eval()
    service = RTPService(model)
    registry = MetricsRegistry()
    shift = float(args.shift_minutes)
    monitor = QualityMonitor(
        registry, window=args.window,
        page_hinkley=PageHinkleyDetector(
            delta=20.0, threshold=max(shift / 2.0, 60.0), min_samples=8),
        reference_window=ReferenceWindowDetector(
            reference_size=24, window_size=12,
            ks_threshold=0.75, psi_threshold=3.0))
    for index in range(args.queries):
        instance = instances[index % len(instances)]
        response = service.handle(RTPRequest.from_instance(instance))
        actual = np.asarray(instance.arrival_times, dtype=float)
        if args.shift_after is not None and index >= args.shift_after:
            actual = actual + shift
        monitor.record(CompletedRoute(
            predicted_route=[int(i) for i in response.route],
            actual_route=[int(i) for i in instance.route],
            predicted_eta_minutes=[float(v) for v in response.eta_minutes],
            actual_arrival_minutes=actual,
            labels={"weather": str(instance.weather),
                    "courier": str(instance.courier.courier_id),
                    "model_version": "cli"}))
    artifact = build_quality_artifact(monitor, source=source,
                                      seed=args.seed)
    write_quality_artifact(artifact, args.out)
    rollup = artifact["segments"].get("all", {}).get("all", {})
    print(f"quality report: {artifact['observations']} routes, "
          f"verdict {artifact['verdict']}")
    if rollup:
        print(f"  windowed: krc {rollup['route_krc']:.3f} "
              f"lsd {rollup['route_lsd']:.2f} "
              f"eta_mae {rollup['eta_mae']:.2f} min "
              f"eta_mape {rollup['eta_mape']:.3f}")
    for alarm in artifact["alarms"]:
        print(f"  alarm: {alarm['detector']} on {alarm['metric']} at "
              f"route {alarm['observations']} "
              f"(statistic {alarm['statistic']:.1f} > "
              f"{alarm['threshold']:.1f})")
    print(f"wrote {args.out}")
    return 0


def cmd_deploy(args: argparse.Namespace) -> int:
    registry = ModelRegistry(args.registry)
    action = args.deploy_command

    if action == "list":
        active = registry.active()
        pinned = registry.pinned()
        if not registry.versions():
            print(f"registry {args.registry}: empty")
            return 0
        for version in registry.versions():
            manifest = registry.manifest(version)
            flags = "".join([
                " [active]" if version == active else "",
                " [pinned]" if version == pinned else "",
            ])
            metrics = ", ".join(f"{k}={v:.3g}"
                                for k, v in sorted(manifest.metrics.items()))
            print(f"{version:12s} seq={manifest.sequence:<3d} "
                  f"created={manifest.created_at or '-':20s} "
                  f"sha256={manifest.checkpoint_sha256[:12]} "
                  f"{metrics}{flags}")
        return 0

    if action == "register":
        model = _load_model(Path(args.model))
        metrics = json.loads(args.metrics) if args.metrics else {}
        manifest = registry.register(
            model, version=args.version, metrics=metrics,
            data_seed=args.data_seed, created_at=args.created_at,
            notes=args.notes)
        print(f"registered {manifest.version} "
              f"(sha256 {manifest.checkpoint_sha256[:12]})")
        return 0

    if action == "promote":
        registry.activate(args.version)
        print(f"active -> {registry.active()}")
        return 0

    if action == "rollback":
        previous = registry.rollback_active()
        print(f"rolled back; active -> {previous}")
        return 0

    if action == "serve":
        _select_kernels(args)
        dataset = read_csv(args.data)
        _, _, test = dataset.split_by_day()
        resilience = ResilienceConfig(
            deadline_ms=args.deadline_ms,
            max_queue_depth=args.max_queue_depth)
        policy = RolloutPolicy(
            canary_fraction=args.canary_frac,
            min_requests=args.min_requests)
        initial = None
        if args.candidate and registry.active() is None:
            # No ACTIVE pointer yet: serve the newest non-candidate
            # version so the rollout compares two distinct versions.
            candidate_version = registry.resolve(args.candidate)
            others = [v for v in registry.versions()
                      if v != candidate_version]
            if not others:
                print(f"error: {candidate_version} is the only registered "
                      "version; nothing to roll out over", file=sys.stderr)
                return 1
            initial = others[-1]
        controller = DeploymentController(
            registry, resilience=resilience, policy=policy,
            fallback=FallbackPredictor.from_dataset(dataset),
            initial=initial, seed=args.seed)
        fault_injector = None
        if args.fault_error_rate > 0 or args.fault_spike_rate > 0:
            fault_injector = FaultInjector(FaultPlan(
                error_rate=args.fault_error_rate,
                spike_rate=args.fault_spike_rate,
                latency_spike_ms=args.fault_spike_ms), seed=args.seed)
        if args.candidate:
            if args.shadow:
                controller.start_shadow(args.candidate, fault_injector)
            else:
                controller.start_canary(args.candidate,
                                        fault_injector=fault_injector)
            print(f"{'shadow' if args.shadow else 'canary'} rollout of "
                  f"{args.candidate} over primary {controller.active_version}")
        instances = list(test)
        degraded = 0
        for index in range(args.queries):
            instance = instances[index % len(instances)]
            response = controller.handle(RTPRequest.from_instance(instance))
            degraded += int(response.degraded)
        print(f"served {args.queries} queries, active {controller.active_version}, "
              f"degraded {degraded} "
              f"({100.0 * degraded / max(args.queries, 1):.1f}%)")
        for decision in controller.decisions:
            print(f"decision: {decision.action} {decision.version} "
                  f"({decision.reason})")
        if args.shadow and controller.shadow_stats.requests:
            stats = controller.shadow_stats
            print(f"shadow divergence: route mismatch "
                  f"{100.0 * stats.route_mismatch_rate:.1f}%, "
                  f"ETA MAE {stats.eta_mae:.2f} min "
                  f"over {stats.requests} requests")
        if args.metrics_out:
            Path(args.metrics_out).write_text(
                controller.render_metrics() + "\n")
            print(f"wrote metrics exposition to {args.metrics_out}")
        return 0

    raise ValueError(f"unknown deploy action {action!r}")


def cmd_load(args: argparse.Namespace) -> int:
    from . import load as load_harness

    if args.list:
        for name, scenario in sorted(load_harness.SCENARIOS.items()):
            print(f"{name:24s} {scenario.description}")
        return 0
    if args.scenario is None:
        print("error: --scenario is required (or use --list)",
              file=sys.stderr)
        return 2
    _select_kernels(args)
    virtual = args.mode == "virtual" or (args.smoke and args.mode is None)
    rate = args.rate
    duration = args.duration
    if args.smoke:
        rate = rate if rate is not None else 40.0
        duration = duration if duration is not None else 1.0
    config = load_harness.LoadRunConfig(
        rate=rate if rate is not None else 40.0,
        phase_duration_s=duration if duration is not None else 5.0,
        seed=args.seed, virtual=virtual,
        deadline_ms=args.deadline_ms,
        max_queue_depth=args.max_queue_depth,
        num_shards=args.shards,
        closed_loop=args.closed_loop,
        slo=load_harness.SLOPolicy(
            p99_ms=args.slo_p99_ms,
            max_degraded_fraction=args.slo_max_degraded))
    model = _load_model(Path(args.model)) if args.model else None
    result = load_harness.run_scenario(args.scenario, config, model=model)

    artifact = result.artifact
    print(f"scenario {args.scenario} ({config.mode} clock, "
          f"seed {config.seed})")
    header = (f"{'phase':18s} {'rate':>7s} {'req':>6s} {'p50ms':>8s} "
              f"{'p95ms':>8s} {'p99ms':>8s} {'degr%':>7s} {'shed':>5s} "
              f"{'backlog':>7s}")
    print(header)
    for phase in artifact["phases"]:
        latency = phase["latency_ms"]
        mark = "" if phase["slo"] else "  (no SLO)"
        print(f"{phase['name']:18s} {phase['rate_rps']:>7.1f} "
              f"{phase['requests']:>6d} {latency['p50']:>8.1f} "
              f"{latency['p95']:>8.1f} {latency['p99']:>8.1f} "
              f"{100.0 * phase['degraded']['fraction']:>6.1f}% "
              f"{phase['degraded']['by_reason'].get('shed', 0):>5d} "
              f"{phase['max_backlog']:>7d}{mark}")
    for event in artifact["events"]:
        print(f"event [{event['phase']}] {event['event']}: "
              f"{event['detail']}")
    for decision in artifact["decisions"]:
        print(f"decision: {decision['action']} {decision['version']} "
              f"({decision['reason']})")
    slo = artifact["slo"]
    verdict = "PASS" if slo["passed"] else "FAIL"
    print(f"SLO {verdict}: p99 {slo['p99_ms']:.1f} ms "
          f"(bound {slo['policy']['p99_ms']:.0f}), degraded "
          f"{100.0 * slo['degraded_fraction']:.1f}% "
          f"(bound {100.0 * slo['policy']['max_degraded_fraction']:.0f}%)"
          + (f"; violations: {'; '.join(slo['violations'])}"
             if slo["violations"] else ""))
    out = args.out or f"load_{args.scenario}.json"
    load_harness.write_artifact(artifact, Path(out))
    print(f"wrote artifact to {out}")
    if args.enforce_slo and not slo["passed"]:
        return 1
    return 0


def cmd_online(args: argparse.Namespace) -> int:
    from . import load as load_harness
    from .online import load_loop_state

    registry_dir = Path(args.registry)

    if args.online_action == "run":
        _select_kernels(args)
        config = load_harness.LoadRunConfig(
            phase_duration_s=1.0 if args.smoke else args.duration,
            seed=args.seed, virtual=args.mode != "wall")
        result = load_harness.run_scenario(
            args.scenario, config, registry_dir=registry_dir)
        artifact = result.artifact
        for event in artifact["events"]:
            print(f"event [{event['phase']}] {event['event']}: "
                  f"{event['detail']}")
        for decision in artifact["decisions"]:
            print(f"decision: {decision['action']} {decision['version']} "
                  f"({decision['reason']})")
        result.context.online.persist()
        status = result.context.online.status()
        print(f"active version {status['active_version']}, "
              f"{status['retrains']} retrain(s), "
              f"{len(status['candidates'])} candidate(s)")
        if args.out:
            load_harness.write_artifact(artifact, Path(args.out))
            print(f"wrote artifact to {args.out}")
        return 0

    if args.online_action == "status":
        state = load_loop_state(registry_dir / "online_jobs")
        if state is None:
            print(f"no online-loop state under {registry_dir} "
                  f"(run `repro-rtp online run --registry ...` first)")
            return 1
        buffer = state["buffer"]
        print(f"active version   {state['active_version']}")
        print(f"retrains         {state['retrains']}")
        print(f"pending alarms   {state['pending_alarms']}")
        print(f"experience buffer {buffer['window']} window / "
              f"{buffer['reservoir']} reservoir "
              f"({buffer['ingested']} ingested, {buffer['dropped']} dropped)")
        registry = ModelRegistry(registry_dir)
        for record in state["candidates"]:
            gate = record["gate"]
            verdict = ("canaried" if record["canaried"]
                       else "rejected by gate")
            print(f"  candidate {record['version']} "
                  f"(job {record['job']}, parent {record['parent']}, "
                  f"{record['trigger']}): {verdict}; "
                  f"holdout mae {gate['student_mae']:.1f} vs parent "
                  f"{gate['parent_mae']:.1f}")
            manifest = registry.manifest(str(record["version"]))
            if manifest.notes:
                lineage = json.loads(manifest.notes)
                print(f"    lineage: window {lineage['window_span']}, "
                      f"{lineage['train_samples']} train / "
                      f"{lineage['holdout_samples']} holdout, "
                      f"trigger {lineage['trigger_reason']!r}")
        return 0

    if args.online_action == "zoo":
        from .online.zoo import ModelZoo

        if not registry_dir.exists():
            print(f"no registry under {registry_dir} "
                  f"(run `repro-rtp online run --registry ...` first)")
            return 1
        registry = ModelRegistry(registry_dir)
        zoo = ModelZoo(registry)
        zoo.refresh()
        active = registry.active()
        print(f"registry         {registry_dir}")
        print(f"active version   {active or '(none)'}")
        print(f"zoo entries      {len(zoo)}")
        for regime in zoo.regimes():
            version = zoo.version_for(regime)
            manifest = registry.manifest(version)
            marker = " (active)" if version == active else ""
            line = f"  {regime:16s} -> {version}{marker}"
            clean = manifest.metrics.get("gate_clean_mae_ratio")
            shifted = manifest.metrics.get("gate_mae_ratio")
            if shifted is not None:
                line += f"  gate shifted ratio {shifted:.3f}"
            if clean is not None:
                line += f", clean ratio {clean:.3f}"
            print(line)
        untagged = [v for v in registry.versions()
                    if not registry.manifest(v).regime]
        if untagged:
            print(f"untagged         {', '.join(sorted(untagged))}")
        return 0

    raise ValueError(f"unknown online action {args.online_action!r}")


def cmd_info(args: argparse.Namespace) -> int:
    dataset = read_csv(args.data)
    for key, value in dataset.summary().items():
        print(f"{key:28s} {value}")
    print(f"{'kernel_backend_active':28s} {kernels.active_name()}")
    for name, error in sorted(kernels.available_backends().items()):
        status = "available" if error is None else f"unavailable: {error}"
        print(f"{'kernel_backend_' + name:28s} {status}")
    fallback = kernels.fallback_reason()
    if fallback:
        print(f"{'kernel_backend_fallback':28s} {fallback}")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-rtp",
        description="M2G4RTP route-and-time prediction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic dataset CSV")
    generate.add_argument("--out", required=True)
    generate.add_argument("--aois", type=int, default=60)
    generate.add_argument("--couriers", type=int, default=6)
    generate.add_argument("--days", type=int, default=10)
    generate.add_argument("--per-day", type=int, default=2)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=cmd_generate)

    train = sub.add_parser("train", help="train M2G4RTP on a CSV dataset")
    train.add_argument("--data", required=True)
    train.add_argument("--out", required=True)
    train.add_argument("--epochs", type=int, default=12)
    train.add_argument("--lr", type=float, default=3e-3)
    train.add_argument("--hidden-dim", type=int, default=32)
    train.add_argument("--batch-size", type=int, default=1)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--quiet", action="store_true")
    train.add_argument("--workers", type=int, default=0,
                       help="gradient worker processes (0 = sequential)")
    train.add_argument("--prefetch", type=int, default=4,
                       help="max in-flight batches in the data pipeline")
    train.add_argument("--loader-workers", type=int, default=0,
                       help="graph-building worker processes (0 = inline)")
    train.add_argument("--step-deadline-ms", type=float, default=0.0,
                       help="per-step straggler deadline; late shards are "
                            "dropped and the gradient rescaled (0 = wait)")
    train.add_argument("--accumulate", type=int, default=1,
                       help="gradient-accumulation micro-batches per step")
    train.add_argument("--events", default=None, metavar="PATH",
                       help="write per-epoch telemetry JSONL here")
    train.add_argument("--trace", default=None, metavar="PATH",
                       help="enable tracing; write span JSONL here")
    train.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write Prometheus exposition here after training")
    train.set_defaults(func=cmd_train)

    evaluate = sub.add_parser("evaluate", help="evaluate a trained model")
    evaluate.add_argument("--data", required=True)
    evaluate.add_argument("--model", required=True)
    evaluate.add_argument("--kernels", choices=list(kernels.BACKENDS),
                          default=None,
                          help="inference kernel backend (default: fused, "
                               "or the REPRO_KERNELS env var)")
    evaluate.set_defaults(func=cmd_evaluate)

    serve = sub.add_parser("serve", help="replay requests through the service")
    serve.add_argument("--data", required=True)
    serve.add_argument("--model", required=True)
    serve.add_argument("--queries", type=int, default=3)
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="enable tracing; write span JSONL here")
    serve.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write Prometheus exposition here after serving")
    serve.add_argument("--shards", type=int, default=0,
                       help="serve through N worker-process shards "
                            "(0 = single in-process service)")
    serve.add_argument("--profile-ops", action="store_true",
                       help="profile autodiff ops and print the top-k table")
    serve.add_argument("--top-ops", type=int, default=10,
                       help="rows in the op-profile table")
    serve.add_argument("--kernels", choices=list(kernels.BACKENDS),
                       default=None,
                       help="inference kernel backend (default: fused, "
                            "or the REPRO_KERNELS env var)")
    serve.set_defaults(func=cmd_serve)

    obs = sub.add_parser(
        "obs", help="summarise a trace/event JSONL, or emit a quality "
                    "report (obs report)")
    obs.add_argument("--file",
                     help="JSONL written by --trace or --events")
    obs.add_argument("--show-trees", type=int, default=1,
                     help="number of span trees to print for traces")
    obs.set_defaults(func=cmd_obs)
    obs_sub = obs.add_subparsers(dest="obs_command")
    obs_report = obs_sub.add_parser(
        "report", help="serve queries against ground truth and emit the "
                       "schema-pinned quality/drift JSON artifact")
    obs_report.add_argument("--data",
                            help="dataset CSV (default: synthetic pool)")
    obs_report.add_argument("--model",
                            help="trained checkpoint (default: untrained "
                                 "serving-shaped model)")
    obs_report.add_argument("--out", default="obs_quality.json",
                            help="artifact path (default: %(default)s)")
    obs_report.add_argument("--queries", type=int, default=96,
                            help="routes to serve (default: %(default)s)")
    obs_report.add_argument("--window", type=int, default=32,
                            help="quality rollup window "
                                 "(default: %(default)s)")
    obs_report.add_argument("--shift-after", type=int, default=None,
                            help="inject a label shift after this many "
                                 "routes (default: no shift)")
    obs_report.add_argument("--shift-minutes", type=float, default=480.0,
                            help="size of the injected shift "
                                 "(default: %(default)s)")
    obs_report.add_argument("--seed", type=int, default=0)
    obs_report.set_defaults(func=cmd_obs_report)

    deploy = sub.add_parser(
        "deploy", help="model registry and canary/shadow rollout")
    deploy_sub = deploy.add_subparsers(dest="deploy_command", required=True)

    deploy_list = deploy_sub.add_parser("list", help="list registry versions")
    deploy_list.add_argument("--registry", required=True)
    deploy_list.set_defaults(func=cmd_deploy)

    deploy_register = deploy_sub.add_parser(
        "register", help="register a trained checkpoint as a new version")
    deploy_register.add_argument("--registry", required=True)
    deploy_register.add_argument("--model", required=True,
                                 help="checkpoint written by `train`")
    deploy_register.add_argument("--version", default=None)
    deploy_register.add_argument("--metrics", default=None,
                                 help='JSON dict, e.g. \'{"mae": 22.4}\'')
    deploy_register.add_argument("--data-seed", type=int, default=None)
    deploy_register.add_argument("--created-at", default="",
                                 help="timestamp string stored verbatim")
    deploy_register.add_argument("--notes", default="")
    deploy_register.set_defaults(func=cmd_deploy)

    deploy_promote = deploy_sub.add_parser(
        "promote", help="point ACTIVE at a version")
    deploy_promote.add_argument("--registry", required=True)
    deploy_promote.add_argument("--version", required=True)
    deploy_promote.set_defaults(func=cmd_deploy)

    deploy_rollback = deploy_sub.add_parser(
        "rollback", help="re-activate the previously active version")
    deploy_rollback.add_argument("--registry", required=True)
    deploy_rollback.set_defaults(func=cmd_deploy)

    deploy_serve = deploy_sub.add_parser(
        "serve", help="replay queries through the deployment controller")
    deploy_serve.add_argument("--registry", required=True)
    deploy_serve.add_argument("--data", required=True)
    deploy_serve.add_argument("--queries", type=int, default=50)
    deploy_serve.add_argument("--candidate", default=None,
                              help="version ref to canary/shadow")
    deploy_serve.add_argument("--canary-frac", type=float, default=0.2)
    deploy_serve.add_argument("--shadow", action="store_true",
                              help="duplicate traffic instead of splitting")
    deploy_serve.add_argument("--min-requests", type=int, default=20)
    deploy_serve.add_argument("--deadline-ms", type=float, default=250.0)
    deploy_serve.add_argument("--max-queue-depth", type=int, default=64)
    deploy_serve.add_argument("--fault-error-rate", type=float, default=0.0)
    deploy_serve.add_argument("--fault-spike-rate", type=float, default=0.0)
    deploy_serve.add_argument("--fault-spike-ms", type=float, default=0.0)
    deploy_serve.add_argument("--seed", type=int, default=0)
    deploy_serve.add_argument("--metrics-out", default=None, metavar="PATH")
    deploy_serve.add_argument("--kernels", choices=list(kernels.BACKENDS),
                              default=None,
                              help="inference kernel backend (default: "
                                   "fused, or the REPRO_KERNELS env var)")
    deploy_serve.set_defaults(func=cmd_deploy)

    load_cmd = sub.add_parser(
        "load", help="constant-rate load & scenario replay (repro.load)")
    load_cmd.add_argument("--scenario", default=None,
                          help="scenario name (see --list)")
    load_cmd.add_argument("--list", action="store_true",
                          help="list available scenarios and exit")
    load_cmd.add_argument("--rate", type=float, default=None,
                          help="base arrival rate, requests/s (default 40)")
    load_cmd.add_argument("--duration", type=float, default=None,
                          help="full-weight phase duration, s (default 5)")
    load_cmd.add_argument("--seed", type=int, default=0)
    load_cmd.add_argument("--mode", choices=["wall", "virtual"], default=None,
                          help="clock: wall (real time) or virtual "
                               "(deterministic; default with --smoke)")
    load_cmd.add_argument("--smoke", action="store_true",
                          help="short deterministic run (1 s phases, "
                               "virtual clock unless --mode wall)")
    load_cmd.add_argument("--model", default=None, metavar="PATH",
                          help="trained checkpoint to serve (default: "
                               "small fresh model)")
    load_cmd.add_argument("--out", default=None, metavar="PATH",
                          help="artifact path (default load_<scenario>.json)")
    load_cmd.add_argument("--deadline-ms", type=float, default=250.0)
    load_cmd.add_argument("--max-queue-depth", type=int, default=32)
    load_cmd.add_argument("--shards", type=int, default=2,
                          help="shard count for shard_* scenarios")
    load_cmd.add_argument("--closed-loop", action="store_true",
                          help="naive closed-loop generator instead of the "
                               "open-loop schedule (coordinated-omission "
                               "comparison mode)")
    load_cmd.add_argument("--slo-p99-ms", type=float, default=250.0)
    load_cmd.add_argument("--slo-max-degraded", type=float, default=0.2)
    load_cmd.add_argument("--enforce-slo", action="store_true",
                          help="exit non-zero when the SLO verdict fails")
    load_cmd.add_argument("--kernels", choices=list(kernels.BACKENDS),
                          default=None,
                          help="inference kernel backend (default: fused, "
                               "or the REPRO_KERNELS env var)")
    load_cmd.set_defaults(func=cmd_load)

    online = sub.add_parser(
        "online",
        help="online continual-learning loop (repro.online)")
    online_sub = online.add_subparsers(dest="online_action", required=True)
    online_run = online_sub.add_parser(
        "run", help="drive a continual-learning scenario: serve, drift, "
                    "fine-tune, gate, canary-promote (and, for "
                    "regime_cycle, zoo-reactivate on regime return)")
    online_run.add_argument("--registry", required=True,
                            help="model registry directory (created if "
                                 "missing; loop state persists under "
                                 "<registry>/online_jobs)")
    online_run.add_argument("--scenario",
                            choices=["continual_drift", "regime_cycle"],
                            default="continual_drift")
    online_run.add_argument("--seed", type=int, default=0)
    online_run.add_argument("--duration", type=float, default=5.0,
                            help="full-weight phase duration, s")
    online_run.add_argument("--smoke", action="store_true",
                            help="short deterministic run (1 s phases)")
    online_run.add_argument("--mode", choices=["wall", "virtual"],
                            default="virtual")
    online_run.add_argument("--out", default=None, metavar="PATH",
                            help="also write the JSON run artifact here")
    online_run.add_argument("--kernels", choices=list(kernels.BACKENDS),
                            default=None,
                            help="inference kernel backend")
    online_run.set_defaults(func=cmd_online)
    online_status = online_sub.add_parser(
        "status", help="inspect persisted loop state and candidate lineage")
    online_status.add_argument("--registry", required=True)
    online_status.set_defaults(func=cmd_online)
    online_zoo = online_sub.add_parser(
        "zoo", help="show the per-regime model zoo: which registered "
                    "version serves each weather regime")
    online_zoo.add_argument("--registry", required=True)
    online_zoo.set_defaults(func=cmd_online)

    info = sub.add_parser("info", help="summarise a CSV dataset")
    info.add_argument("--data", required=True)
    info.set_defaults(func=cmd_info)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
