"""Batched inference engine for M²G4RTP.

The online service (paper Section VI) answers each query with one
encoder + decoder pass.  Sequential per-request execution leaves most
of the numpy substrate idle: every matmul is tiny and Python overhead
dominates.  This module packs a list of :class:`MultiLevelGraph`
instances into padded batch tensors with validity masks, runs the
*same* parameters through batched versions of the forward passes
(`forward_batch` on the encoder/decoder modules), and unpads the
per-instance predictions.

Parity contract — enforced by ``tests/test_core_batching.py``:

* decoded routes are identical to sequential :meth:`M2G4RTP.predict`;
* arrival times match within 1e-6;
* padding positions receive exactly zero attention probability (GAT-e
  and pointer attention) and exactly zero gradient
  (:func:`repro.autodiff.masked_softmax` / ``padded_gather``).

Padding convention: node features are zero, discrete ids are 0 (a valid
embedding row), adjacency rows/columns are all ``False`` and padded
nodes start out "visited" in the decoders, so no padding position can
ever receive probability mass or influence a real node.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from ..autodiff import Tensor, concat, no_grad, padded_gather
from ..graphs import LevelGraph, MultiLevelGraph
from ..obs.tracing import span
from .decoder import positional_guidance
from .model import M2G4RTP, M2G4RTPOutput


@dataclasses.dataclass
class LevelBatch:
    """One padded level (location or AOI) of a graph batch."""

    continuous: np.ndarray     # (B, n, d_cont), zero-padded
    discrete: np.ndarray       # (B, n, 2) int, zero-padded
    edge_features: np.ndarray  # (B, n, n, 3), zero-padded
    adjacency: np.ndarray      # (B, n, n) bool, False at padding
    mask: np.ndarray           # (B, n) bool, True at real nodes
    lengths: np.ndarray        # (B,) int real node counts

    @property
    def max_nodes(self) -> int:
        return self.continuous.shape[1]

    @staticmethod
    def from_levels(levels: Sequence[LevelGraph]) -> "LevelBatch":
        batch = len(levels)
        lengths = np.array([level.num_nodes for level in levels], dtype=np.int64)
        n = int(lengths.max())
        d_cont = levels[0].continuous.shape[1]
        continuous = np.zeros((batch, n, d_cont))
        discrete = np.zeros((batch, n, levels[0].discrete.shape[1]), dtype=np.int64)
        edge_features = np.zeros((batch, n, n, levels[0].edge_features.shape[-1]))
        adjacency = np.zeros((batch, n, n), dtype=bool)
        mask = np.zeros((batch, n), dtype=bool)
        for b, level in enumerate(levels):
            k = level.num_nodes
            continuous[b, :k] = level.continuous
            discrete[b, :k] = level.discrete
            edge_features[b, :k, :k] = level.edge_features
            adjacency[b, :k, :k] = level.adjacency
            mask[b, :k] = True
        return LevelBatch(continuous=continuous, discrete=discrete,
                          edge_features=edge_features, adjacency=adjacency,
                          mask=mask, lengths=lengths)


@dataclasses.dataclass
class GraphBatch:
    """A list of :class:`MultiLevelGraph` padded into batch tensors."""

    graphs: List[MultiLevelGraph]
    location: LevelBatch
    aoi: LevelBatch
    aoi_of_location: np.ndarray   # (B, n) int, 0 at padding
    courier_ids: np.ndarray       # (B,) int
    courier_profiles: np.ndarray  # (B, 3)
    global_continuous: np.ndarray  # (B, 3)
    global_discrete: np.ndarray    # (B, 2) int

    def __len__(self) -> int:
        return len(self.graphs)

    @staticmethod
    def from_graphs(graphs: Sequence[MultiLevelGraph]) -> "GraphBatch":
        if not graphs:
            raise ValueError("cannot batch zero graphs")
        graphs = list(graphs)
        location = LevelBatch.from_levels([g.location for g in graphs])
        aoi = LevelBatch.from_levels([g.aoi for g in graphs])
        aoi_of_location = np.zeros((len(graphs), location.max_nodes),
                                   dtype=np.int64)
        for b, graph in enumerate(graphs):
            aoi_of_location[b, :graph.num_locations] = graph.aoi_of_location
        return GraphBatch(
            graphs=graphs,
            location=location,
            aoi=aoi,
            aoi_of_location=aoi_of_location,
            courier_ids=np.array([g.courier_id for g in graphs], dtype=np.int64),
            courier_profiles=np.stack([g.courier_profile for g in graphs]),
            global_continuous=np.stack([g.global_continuous for g in graphs]),
            global_discrete=np.stack([g.global_discrete for g in graphs]),
        )


class BatchedM2G4RTP:
    """Runs a trained :class:`M2G4RTP` over whole graph batches.

    The engine owns no parameters — it reads the wrapped model's modules
    through their ``forward_batch`` methods, so any model (any ablation
    variant, either decoder cell type) batches without retraining or
    weight copies.
    """

    def __init__(self, model: M2G4RTP):
        self.model = model

    # ------------------------------------------------------------------
    def predict(self, graphs: Sequence[MultiLevelGraph]) -> List[M2G4RTPOutput]:
        """Batched equivalent of ``[model.predict(g) for g in graphs]``."""
        if not graphs:
            return []
        model = self.model
        was_training = model.training
        model.eval()
        try:
            with no_grad():
                return self._predict(GraphBatch.from_graphs(graphs))
        finally:
            if was_training:
                model.train()

    # ------------------------------------------------------------------
    def _predict(self, batch: GraphBatch) -> List[M2G4RTPOutput]:
        from .. import kernels

        model = self.model
        cfg = model.config
        size = len(batch)
        n = batch.location.max_nodes
        backend = kernels.active_name()

        with span("encoder", batch_size=size, kernel_backend=backend):
            location_reps, aoi_reps = model.encoder.forward_batch(batch)
        courier_embed = model.courier_embedding(
            batch.courier_ids % cfg.num_couriers)
        courier = concat([courier_embed, Tensor(batch.courier_profiles)], axis=-1)

        aoi_routes = None
        aoi_times = None
        if cfg.use_aoi:
            with span("route_decode", level="aoi", kernel_backend=backend):
                aoi_routes = model.aoi_route_decoder.forward_batch(
                    aoi_reps, courier, batch.aoi.lengths,
                    adjacency=batch.aoi.adjacency)
            with span("time_decode", level="aoi", kernel_backend=backend):
                aoi_times = model.aoi_time_decoder.forward_batch(
                    aoi_reps, aoi_routes, batch.aoi.lengths)

            # Guidance (Eq. 34), per instance over real AOIs only.
            positions = np.zeros((size, batch.aoi.max_nodes, cfg.position_dim))
            for b in range(size):
                m_b = int(batch.aoi.lengths[b])
                positions[b, :m_b] = positional_guidance(
                    aoi_routes[b, :m_b], cfg.position_dim)
            per_location_positions = positions[
                np.arange(size)[:, None], batch.aoi_of_location]
            per_location_eta = padded_gather(
                aoi_times, batch.aoi_of_location, valid=batch.location.mask)
            location_inputs = concat(
                [location_reps, Tensor(per_location_positions),
                 per_location_eta.reshape(size, n, 1)],
                axis=-1)
        else:
            location_inputs = location_reps

        with span("route_decode", level="location", kernel_backend=backend):
            routes = model.location_route_decoder.forward_batch(
                location_inputs, courier, batch.location.lengths,
                adjacency=batch.location.adjacency)
        with span("time_decode", level="location", kernel_backend=backend):
            times = model.location_time_decoder.forward_batch(
                location_inputs, routes, batch.location.lengths)

        outputs: List[M2G4RTPOutput] = []
        for b in range(size):
            n_b = int(batch.location.lengths[b])
            m_b = int(batch.aoi.lengths[b])
            outputs.append(M2G4RTPOutput(
                route=routes[b, :n_b].copy(),
                arrival_times=times.data[b, :n_b] * cfg.time_scale,
                aoi_route=(aoi_routes[b, :m_b].copy()
                           if aoi_routes is not None else None),
                aoi_arrival_times=(aoi_times.data[b, :m_b] * cfg.time_scale
                                   if aoi_times is not None else None),
            ))
        return outputs
