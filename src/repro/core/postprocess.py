"""Route post-processing and sampling-based uncertainty.

* :func:`enforce_aoi_contiguity` — repair operator motivated by the
  paper's first case study: real couriers finish an AOI before moving
  on, so a predicted route that bounces between AOIs (as Graph2Route's
  did in Fig. 6) can be repaired by grouping each AOI's locations at
  the position of its first occurrence, preserving within-AOI order.
* :func:`sample_route` / :func:`predict_with_uncertainty` —
  temperature sampling from the pointer decoder produces a route
  *distribution*; running SortLSTM on each sample yields an ETA
  distribution whose spread is a usable per-location uncertainty
  estimate (useful for the minute-level ETA product: wide intervals →
  fall back to a coarser promise).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..autodiff import Tensor, concat, no_grad
from .decoder import RouteDecoder, positional_guidance


def enforce_aoi_contiguity(route: Sequence[int],
                           aoi_of: Sequence[int]) -> np.ndarray:
    """Reorder a route so each AOI's locations are contiguous.

    AOIs keep the order of their first appearance in the input route;
    locations keep their relative order within each AOI.  A route that
    is already AOI-contiguous is returned unchanged.
    """
    route = np.asarray(route, dtype=np.int64)
    aoi_of = np.asarray(aoi_of, dtype=np.int64)
    if sorted(route.tolist()) != list(range(route.size)):
        raise ValueError("route must be a permutation of node indices")
    aoi_order: List[int] = []
    members: dict = {}
    for node in route:
        aoi = int(aoi_of[node])
        if aoi not in members:
            members[aoi] = []
            aoi_order.append(aoi)
        members[aoi].append(int(node))
    repaired = [node for aoi in aoi_order for node in members[aoi]]
    return np.asarray(repaired, dtype=np.int64)


def sample_route(decoder: RouteDecoder, nodes: Tensor, courier: Tensor,
                 rng: np.random.Generator,
                 adjacency: Optional[np.ndarray] = None,
                 temperature: float = 1.0) -> np.ndarray:
    """Sample one route from the decoder's step distributions.

    ``temperature`` < 1 sharpens toward greedy; > 1 flattens.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    n = nodes.shape[0]
    visited = np.zeros(n, dtype=bool)
    state = None
    step_input = decoder.start_token
    previous: Optional[int] = None
    route = np.empty(n, dtype=np.int64)
    with no_grad():
        for step in range(n):
            h, state = decoder.recurrent.step(step_input, state)
            query = concat([h, courier], axis=-1)
            mask = decoder._candidate_mask(visited, previous, adjacency)
            log_probs = decoder.attention.log_probs(nodes, query, mask).data
            scaled = log_probs / temperature
            scaled = scaled - scaled.max()
            probs = np.where(mask, np.exp(scaled), 0.0)
            probs /= probs.sum()
            chosen = int(rng.choice(n, p=probs))
            route[step] = chosen
            visited[chosen] = True
            previous = chosen
            step_input = nodes[chosen]
    return route


@dataclasses.dataclass
class UncertaintyPrediction:
    """Monte-Carlo prediction: modal route plus per-location ETA spread."""

    route: np.ndarray                # modal (most frequent first-step) sample
    eta_mean: np.ndarray             # minutes, per location
    eta_std: np.ndarray              # minutes, per location
    eta_low: np.ndarray              # 10th percentile
    eta_high: np.ndarray             # 90th percentile
    num_samples: int


def predict_with_uncertainty(model, graph, num_samples: int = 16,
                             temperature: float = 1.0,
                             seed: int = 0) -> UncertaintyPrediction:
    """Monte-Carlo joint prediction.

    Samples ``num_samples`` location routes (conditioned on the greedy
    AOI-level guidance), runs the time decoder on each, and aggregates
    the per-location ETA distribution.
    """
    if num_samples < 2:
        raise ValueError("need at least two samples for a spread estimate")
    cfg = model.config
    rng = np.random.default_rng(seed)
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            location_reps, aoi_reps = model.encoder(graph)
            courier = model._courier_vector(graph)
            if cfg.use_aoi:
                aoi_decode = model.aoi_route_decoder(
                    aoi_reps, courier, adjacency=graph.aoi.adjacency)
                aoi_times = model.aoi_time_decoder(aoi_reps, aoi_decode.route)
                positions = positional_guidance(aoi_decode.route,
                                                cfg.position_dim)
                location_inputs = concat([
                    location_reps,
                    Tensor(positions[graph.aoi_of_location]),
                    aoi_times[graph.aoi_of_location].reshape(-1, 1),
                ], axis=-1)
            else:
                location_inputs = location_reps

            samples = []
            times = []
            for _ in range(num_samples):
                route = sample_route(
                    model.location_route_decoder, location_inputs, courier,
                    rng, adjacency=graph.location.adjacency,
                    temperature=temperature)
                eta = model.location_time_decoder(location_inputs, route)
                samples.append(route)
                times.append(eta.data * cfg.time_scale)
    finally:
        if was_training:
            model.train()

    times_arr = np.stack(times)
    # Modal route: the sample with the highest agreement to the others
    # (mean pairwise position agreement).
    agreement = np.zeros(num_samples)
    routes_arr = np.stack(samples)
    for i in range(num_samples):
        agreement[i] = np.mean(routes_arr == routes_arr[i])
    modal = routes_arr[int(np.argmax(agreement))]
    return UncertaintyPrediction(
        route=modal,
        eta_mean=times_arr.mean(axis=0),
        eta_std=times_arr.std(axis=0),
        eta_low=np.percentile(times_arr, 10, axis=0),
        eta_high=np.percentile(times_arr, 90, axis=0),
        num_samples=num_samples,
    )
