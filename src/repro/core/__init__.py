"""The paper's primary contribution: the M²G4RTP model family."""

from .gat_e import GATEHead, GATELayer, GATEEncoder
from .encoder import (
    EncoderConfig,
    GlobalFeatureEncoder,
    LevelEncoder,
    MultiLevelEncoder,
    SequenceEncoder,
)
from .decoder import RouteDecoder, RouteDecoderOutput, SortLSTM, positional_guidance
from .uncertainty import FixedWeighting, UncertaintyWeighting, TASKS
from .model import (
    M2G4RTP,
    M2G4RTPConfig,
    M2G4RTPOutput,
    RTPTargets,
    VARIANT_NAMES,
    make_variant,
)
from .batching import BatchedM2G4RTP, GraphBatch, LevelBatch
from .fallback import DEFAULT_SPEED, FallbackPredictor, FallbackPrediction
from .beam import beam_search_route, beam_search_predict
from .ensemble import EnsemblePredictor, borda_aggregate
from .postprocess import (
    UncertaintyPrediction,
    enforce_aoi_contiguity,
    predict_with_uncertainty,
    sample_route,
)

__all__ = [
    "GATEHead", "GATELayer", "GATEEncoder",
    "EncoderConfig", "GlobalFeatureEncoder", "LevelEncoder",
    "MultiLevelEncoder", "SequenceEncoder",
    "RouteDecoder", "RouteDecoderOutput", "SortLSTM", "positional_guidance",
    "FixedWeighting", "UncertaintyWeighting", "TASKS",
    "M2G4RTP", "M2G4RTPConfig", "M2G4RTPOutput", "RTPTargets",
    "VARIANT_NAMES", "make_variant",
    "BatchedM2G4RTP", "GraphBatch", "LevelBatch",
    "FallbackPredictor", "FallbackPrediction", "DEFAULT_SPEED",
    "beam_search_route", "beam_search_predict",
    "UncertaintyPrediction", "enforce_aoi_contiguity",
    "predict_with_uncertainty", "sample_route",
    "EnsemblePredictor", "borda_aggregate",
]
