"""Multi-level graph encoder (paper Section IV-B).

Embeds raw node/edge/global features (Eqs. 18-19), runs the GAT-e stack
at the location level and the AOI level, and returns the encoded
representations ``x~^l`` and ``x~^a`` consumed by the decoders.

A :class:`SequenceEncoder` (bidirectional LSTM over the deadline-sorted
node sequence) implements the paper's "w/o graph" ablation.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from ..autodiff import Tensor, concat, is_grad_enabled, padded_gather, stack
from ..graphs import LevelGraph, MultiLevelGraph
from ..nn import BiLSTM, FeatureEncoder, Linear, Module
from ..obs.tracing import span
from .gat_e import GATEEncoder


@dataclasses.dataclass
class EncoderConfig:
    """Width/depth hyper-parameters shared by both levels."""

    hidden_dim: int = 32
    num_layers: int = 2
    num_heads: int = 4
    continuous_embed_dim: int = 16
    discrete_embed_dim: int = 8
    num_aoi_ids: int = 256
    num_aoi_types: int = 8
    num_weather: int = 8
    num_weekdays: int = 7


class GlobalFeatureEncoder(Module):
    """Encodes the global context ``x^g`` of Eq. 17 into one vector."""

    def __init__(self, config: EncoderConfig, rng: np.random.Generator):
        super().__init__()
        self.encoder = FeatureEncoder(
            continuous_dim=3,
            discrete_cardinalities=[config.num_weather, config.num_weekdays],
            continuous_out=config.continuous_embed_dim,
            discrete_out=config.discrete_embed_dim,
            rng=rng,
        )
        self.output_dim = self.encoder.output_dim

    def forward(self, graph: MultiLevelGraph) -> Tensor:
        return self.encoder(Tensor(graph.global_continuous), graph.global_discrete)

    def forward_batch(self, global_continuous: np.ndarray,
                      global_discrete: np.ndarray) -> Tensor:
        """Batched global context: ``(B, 3)`` continuous, ``(B, 2)`` discrete → ``(B, g)``."""
        return self.encoder(Tensor(global_continuous), global_discrete)


class LevelEncoder(Module):
    """Feature embedding + GAT-e for one graph level."""

    def __init__(self, continuous_dim: int, config: EncoderConfig,
                 global_dim: int, rng: np.random.Generator):
        super().__init__()
        self.node_features = FeatureEncoder(
            continuous_dim=continuous_dim,
            discrete_cardinalities=[config.num_aoi_ids, config.num_aoi_types],
            continuous_out=config.continuous_embed_dim,
            discrete_out=config.discrete_embed_dim,
            rng=rng,
        )
        self.node_proj = Linear(self.node_features.output_dim + global_dim,
                                config.hidden_dim, rng)
        self.edge_proj = Linear(3, config.hidden_dim, rng)
        self.gat = GATEEncoder(config.hidden_dim, config.num_layers,
                               config.num_heads, rng)

    def forward(self, level: LevelGraph, global_vector: Tensor) -> Tensor:
        n = level.num_nodes
        node_embed = self.node_features(Tensor(level.continuous), level.discrete)
        tiled_global = global_vector.reshape(1, -1) * Tensor(np.ones((n, 1)))
        nodes = self.node_proj(concat([node_embed, tiled_global], axis=-1))
        edges = self.edge_proj(Tensor(level.edge_features))
        encoded_nodes, _ = self.gat(nodes, edges, level.adjacency)
        return encoded_nodes

    def _embed_tensor(self, continuous: np.ndarray, discrete: np.ndarray,
                      edge_features: np.ndarray,
                      global_vector: Tensor) -> Tuple[Tensor, Tensor]:
        """Tensor-path feature embedding for one padded level batch."""
        batch, n = continuous.shape[:2]
        node_embed = self.node_features(Tensor(continuous), discrete)
        tiled_global = global_vector.reshape(batch, 1, -1) * Tensor(np.ones((batch, n, 1)))
        nodes = self.node_proj(concat([node_embed, tiled_global], axis=-1))
        edges = self.edge_proj(Tensor(edge_features))
        return nodes, edges

    def forward_batch(self, level, global_vector: Tensor) -> Tensor:
        """Batched :meth:`forward` over a padded level batch.

        ``level`` is duck-typed (see ``repro.core.batching.LevelBatch``):
        ``continuous (B, n, c)``, ``discrete (B, n, 2)``,
        ``edge_features (B, n, n, 3)`` and ``adjacency (B, n, n)`` whose
        padding rows/columns are all ``False``.

        When gradients are disabled the feature embedding runs through
        the active kernel backend (:mod:`repro.kernels`), bit-identical
        to the Tensor glue; training keeps the Tensor path.
        """
        if not is_grad_enabled():
            from .. import kernels
            backend = kernels.active()
            with span("kernel.level_embed", backend=kernels.active_name(),
                      batch_size=level.continuous.shape[0]):
                node_data, edge_data = backend.level_embed(
                    self, level.continuous, level.discrete,
                    level.edge_features, global_vector.data)
            nodes, edges = Tensor(node_data), Tensor(edge_data)
        else:
            nodes, edges = self._embed_tensor(
                level.continuous, level.discrete, level.edge_features,
                global_vector)
        encoded_nodes, _ = self.gat.forward_batch(nodes, edges, level.adjacency,
                                                  need_edges=False)
        return encoded_nodes


class SequenceEncoder(Module):
    """BiLSTM over deadline-ordered nodes — the "w/o graph" ablation.

    Nodes are fed in deadline order (the natural sequence a dispatcher
    would read) and the bidirectional states are projected back to
    ``hidden_dim`` in the original node order.
    """

    def __init__(self, continuous_dim: int, config: EncoderConfig,
                 global_dim: int, rng: np.random.Generator):
        super().__init__()
        self.node_features = FeatureEncoder(
            continuous_dim=continuous_dim,
            discrete_cardinalities=[config.num_aoi_ids, config.num_aoi_types],
            continuous_out=config.continuous_embed_dim,
            discrete_out=config.discrete_embed_dim,
            rng=rng,
        )
        self.node_proj = Linear(self.node_features.output_dim + global_dim,
                                config.hidden_dim, rng)
        self.bilstm = BiLSTM(config.hidden_dim, config.hidden_dim, rng)
        self.out_proj = Linear(2 * config.hidden_dim, config.hidden_dim, rng)

    def forward(self, level: LevelGraph, global_vector: Tensor) -> Tensor:
        n = level.num_nodes
        node_embed = self.node_features(Tensor(level.continuous), level.discrete)
        tiled_global = global_vector.reshape(1, -1) * Tensor(np.ones((n, 1)))
        nodes = self.node_proj(concat([node_embed, tiled_global], axis=-1))
        # Column 2 is distance-to-courier at both levels; feeding nodes
        # nearest-first gives the BiLSTM a meaningful sequence.
        order = np.argsort(level.continuous[:, 2], kind="stable")
        states = self.bilstm(nodes[order])
        inverse = np.argsort(order, kind="stable")
        return self.out_proj(states[inverse])

    def forward_batch(self, level, global_vector: Tensor) -> Tensor:
        """Batched :meth:`forward` over a padded level batch.

        Real nodes are ordered nearest-first per instance exactly as in
        the sequential path; padding nodes sort last (key ``inf``), so
        they only ever sit *after* the real prefix in both LSTM
        directions and cannot influence any real node's state.
        """
        batch, n = level.continuous.shape[:2]
        lengths = np.asarray(level.lengths, dtype=np.int64)
        node_embed = self.node_features(Tensor(level.continuous), level.discrete)
        tiled_global = global_vector.reshape(batch, 1, -1) * Tensor(np.ones((batch, n, 1)))
        nodes = self.node_proj(concat([node_embed, tiled_global], axis=-1))

        key = np.where(level.mask, level.continuous[:, :, 2], np.inf)
        order = np.argsort(key, axis=1, kind="stable")           # (B, n)
        steps = np.arange(n)
        step_valid = steps[None, :] < lengths[:, None]           # (B, n)
        # Position s of the *reversed* real prefix reads position
        # len-1-s of the forward one; padding positions read themselves.
        reversed_positions = np.where(
            step_valid, lengths[:, None] - 1 - steps[None, :], steps[None, :])
        reversed_order = np.take_along_axis(order, reversed_positions, axis=1)

        forward_seq = padded_gather(nodes, order, valid=step_valid)
        backward_seq = padded_gather(nodes, reversed_order, valid=step_valid)
        forward_states = _unroll_lstm_batch(self.bilstm.forward_lstm.cell, forward_seq)
        backward_states = _unroll_lstm_batch(self.bilstm.backward_lstm.cell, backward_seq)
        # Re-reverse the backward states so step s aligns with order[:, s].
        backward_states = padded_gather(backward_states, reversed_positions,
                                        valid=step_valid)
        projected = self.out_proj(concat([forward_states, backward_states], axis=-1))
        # Scatter step-ordered outputs back to node order.
        inverse = np.argsort(order, axis=1, kind="stable")
        return padded_gather(projected, inverse, valid=level.mask)


def _unroll_lstm_batch(cell, sequence: Tensor) -> Tensor:
    """Run an LSTM cell over ``(B, n, d)`` steps; returns ``(B, n, hidden)``.

    When gradients are disabled the unroll runs through the active
    kernel backend (:mod:`repro.kernels`), bit-identical to the Tensor
    loop below.
    """
    if not is_grad_enabled():
        from .. import kernels
        with span("kernel.lstm_unroll", backend=kernels.active_name(),
                  batch_size=sequence.shape[0]):
            return Tensor(kernels.active().lstm_unroll(cell, sequence.data))
    batch = sequence.shape[0]
    state = cell.initial_state((batch,))
    outputs = []
    for step in range(sequence.shape[1]):
        h, c = cell(sequence[:, step, :], state)
        state = (h, c)
        outputs.append(h)
    return stack(outputs, axis=1)


class MultiLevelEncoder(Module):
    """The full encoder: global context + one :class:`LevelEncoder` per level.

    With ``use_graph=False`` both levels use :class:`SequenceEncoder`
    instead of GAT-e (the "w/o graph" ablation).
    """

    def __init__(self, config: Optional[EncoderConfig] = None,
                 rng: Optional[np.random.Generator] = None,
                 use_graph: bool = True):
        super().__init__()
        self.config = config or EncoderConfig()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.global_encoder = GlobalFeatureEncoder(self.config, rng)
        encoder_cls = LevelEncoder if use_graph else SequenceEncoder
        self.location_encoder = encoder_cls(
            6, self.config, self.global_encoder.output_dim, rng)
        self.aoi_encoder = encoder_cls(
            6, self.config, self.global_encoder.output_dim, rng)

    def forward(self, graph: MultiLevelGraph) -> Tuple[Tensor, Tensor]:
        """Return (location representations, AOI representations)."""
        global_vector = self.global_encoder(graph)
        locations = self.location_encoder(graph.location, global_vector)
        aois = self.aoi_encoder(graph.aoi, global_vector)
        return locations, aois

    def forward_batch(self, batch) -> Tuple[Tensor, Tensor]:
        """Batched :meth:`forward` over a ``repro.core.batching.GraphBatch``.

        ``batch`` is duck-typed: it provides ``global_continuous``,
        ``global_discrete`` and padded ``location`` / ``aoi`` level
        batches.  Returns ``(B, n, d)`` location and ``(B, m, d)`` AOI
        representations; rows at padding positions carry finite values
        that downstream masks ignore.
        """
        global_vector = self.global_encoder.forward_batch(
            batch.global_continuous, batch.global_discrete)
        locations = self.location_encoder.forward_batch(batch.location, global_vector)
        aois = self.aoi_encoder.forward_batch(batch.aoi, global_vector)
        return locations, aois
