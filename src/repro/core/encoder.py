"""Multi-level graph encoder (paper Section IV-B).

Embeds raw node/edge/global features (Eqs. 18-19), runs the GAT-e stack
at the location level and the AOI level, and returns the encoded
representations ``x~^l`` and ``x~^a`` consumed by the decoders.

A :class:`SequenceEncoder` (bidirectional LSTM over the deadline-sorted
node sequence) implements the paper's "w/o graph" ablation.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from ..autodiff import Tensor, concat
from ..graphs import LevelGraph, MultiLevelGraph
from ..nn import BiLSTM, FeatureEncoder, Linear, Module
from .gat_e import GATEEncoder


@dataclasses.dataclass
class EncoderConfig:
    """Width/depth hyper-parameters shared by both levels."""

    hidden_dim: int = 32
    num_layers: int = 2
    num_heads: int = 4
    continuous_embed_dim: int = 16
    discrete_embed_dim: int = 8
    num_aoi_ids: int = 256
    num_aoi_types: int = 8
    num_weather: int = 8
    num_weekdays: int = 7


class GlobalFeatureEncoder(Module):
    """Encodes the global context ``x^g`` of Eq. 17 into one vector."""

    def __init__(self, config: EncoderConfig, rng: np.random.Generator):
        super().__init__()
        self.encoder = FeatureEncoder(
            continuous_dim=3,
            discrete_cardinalities=[config.num_weather, config.num_weekdays],
            continuous_out=config.continuous_embed_dim,
            discrete_out=config.discrete_embed_dim,
            rng=rng,
        )
        self.output_dim = self.encoder.output_dim

    def forward(self, graph: MultiLevelGraph) -> Tensor:
        return self.encoder(Tensor(graph.global_continuous), graph.global_discrete)


class LevelEncoder(Module):
    """Feature embedding + GAT-e for one graph level."""

    def __init__(self, continuous_dim: int, config: EncoderConfig,
                 global_dim: int, rng: np.random.Generator):
        super().__init__()
        self.node_features = FeatureEncoder(
            continuous_dim=continuous_dim,
            discrete_cardinalities=[config.num_aoi_ids, config.num_aoi_types],
            continuous_out=config.continuous_embed_dim,
            discrete_out=config.discrete_embed_dim,
            rng=rng,
        )
        self.node_proj = Linear(self.node_features.output_dim + global_dim,
                                config.hidden_dim, rng)
        self.edge_proj = Linear(3, config.hidden_dim, rng)
        self.gat = GATEEncoder(config.hidden_dim, config.num_layers,
                               config.num_heads, rng)

    def forward(self, level: LevelGraph, global_vector: Tensor) -> Tensor:
        n = level.num_nodes
        node_embed = self.node_features(Tensor(level.continuous), level.discrete)
        tiled_global = global_vector.reshape(1, -1) * Tensor(np.ones((n, 1)))
        nodes = self.node_proj(concat([node_embed, tiled_global], axis=-1))
        edges = self.edge_proj(Tensor(level.edge_features))
        encoded_nodes, _ = self.gat(nodes, edges, level.adjacency)
        return encoded_nodes


class SequenceEncoder(Module):
    """BiLSTM over deadline-ordered nodes — the "w/o graph" ablation.

    Nodes are fed in deadline order (the natural sequence a dispatcher
    would read) and the bidirectional states are projected back to
    ``hidden_dim`` in the original node order.
    """

    def __init__(self, continuous_dim: int, config: EncoderConfig,
                 global_dim: int, rng: np.random.Generator):
        super().__init__()
        self.node_features = FeatureEncoder(
            continuous_dim=continuous_dim,
            discrete_cardinalities=[config.num_aoi_ids, config.num_aoi_types],
            continuous_out=config.continuous_embed_dim,
            discrete_out=config.discrete_embed_dim,
            rng=rng,
        )
        self.node_proj = Linear(self.node_features.output_dim + global_dim,
                                config.hidden_dim, rng)
        self.bilstm = BiLSTM(config.hidden_dim, config.hidden_dim, rng)
        self.out_proj = Linear(2 * config.hidden_dim, config.hidden_dim, rng)

    def forward(self, level: LevelGraph, global_vector: Tensor) -> Tensor:
        n = level.num_nodes
        node_embed = self.node_features(Tensor(level.continuous), level.discrete)
        tiled_global = global_vector.reshape(1, -1) * Tensor(np.ones((n, 1)))
        nodes = self.node_proj(concat([node_embed, tiled_global], axis=-1))
        # Column 2 is distance-to-courier at both levels; feeding nodes
        # nearest-first gives the BiLSTM a meaningful sequence.
        order = np.argsort(level.continuous[:, 2], kind="stable")
        states = self.bilstm(nodes[order])
        inverse = np.argsort(order, kind="stable")
        return self.out_proj(states[inverse])


class MultiLevelEncoder(Module):
    """The full encoder: global context + one :class:`LevelEncoder` per level.

    With ``use_graph=False`` both levels use :class:`SequenceEncoder`
    instead of GAT-e (the "w/o graph" ablation).
    """

    def __init__(self, config: Optional[EncoderConfig] = None,
                 rng: Optional[np.random.Generator] = None,
                 use_graph: bool = True):
        super().__init__()
        self.config = config or EncoderConfig()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.global_encoder = GlobalFeatureEncoder(self.config, rng)
        encoder_cls = LevelEncoder if use_graph else SequenceEncoder
        self.location_encoder = encoder_cls(
            6, self.config, self.global_encoder.output_dim, rng)
        self.aoi_encoder = encoder_cls(
            6, self.config, self.global_encoder.output_dim, rng)

    def forward(self, graph: MultiLevelGraph) -> Tuple[Tensor, Tensor]:
        """Return (location representations, AOI representations)."""
        global_vector = self.global_encoder(graph)
        locations = self.location_encoder(graph.location, global_vector)
        aois = self.aoi_encoder(graph.aoi, global_vector)
        return locations, aois
