"""Homoscedastic-uncertainty loss weighting (paper Eq. 41).

Following Kendall, Gal & Cipolla (2018), each task loss is weighted by a
learned noise parameter: classification losses get ``1/(2 sigma^2)``,
regression losses ``1/sigma^2``, plus a ``log sigma`` regulariser that
stops the weights collapsing to zero.  We parameterise
``s = log(sigma)`` for unconstrained optimisation.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..autodiff import Tensor
from ..nn import Module
from ..nn.module import Parameter

#: Order of the four tasks in the sigma vector.
TASKS = ("aoi_route", "location_route", "aoi_time", "location_time")
_CLASSIFICATION = {"aoi_route", "location_route"}


class UncertaintyWeighting(Module):
    """Learnable multi-task loss combiner (Eq. 41)."""

    def __init__(self):
        super().__init__()
        self.log_sigma = Parameter(np.zeros(len(TASKS)))

    def forward(self, losses: Dict[str, Tensor]) -> Tensor:
        unknown = set(losses) - set(TASKS)
        if unknown:
            raise KeyError(f"unknown task losses: {sorted(unknown)}")
        total: Tensor = None  # type: ignore[assignment]
        for index, task in enumerate(TASKS):
            if task not in losses:
                continue
            log_sigma_i = self.log_sigma[index]
            precision = (log_sigma_i * -2.0).exp()
            coefficient = 0.5 if task in _CLASSIFICATION else 1.0
            term = losses[task] * precision * coefficient + log_sigma_i
            total = term if total is None else total + term
        if total is None:
            raise ValueError("no losses provided")
        return total

    def sigmas(self) -> Dict[str, float]:
        """Current per-task sigma values (for logging/analysis)."""
        return {
            task: float(np.exp(self.log_sigma.data[index]))
            for index, task in enumerate(TASKS)
        }


class FixedWeighting(Module):
    """The paper's "w/o uncertainty" ablation: fixed 100:1 route:time."""

    def __init__(self, route_weight: float = 100.0, time_weight: float = 1.0):
        super().__init__()
        self.route_weight = route_weight
        self.time_weight = time_weight

    def forward(self, losses: Dict[str, Tensor]) -> Tensor:
        total: Tensor = None  # type: ignore[assignment]
        for task, loss in losses.items():
            weight = self.route_weight if task in _CLASSIFICATION else self.time_weight
            term = loss * weight
            total = term if total is None else total + term
        if total is None:
            raise ValueError("no losses provided")
        return total
