"""Beam-search decoding for the pointer route decoder.

The paper decodes greedily (Eq. 31 takes the argmax at each step).
Beam search is the natural inference-time extension: keep the ``width``
most probable partial routes and return the complete route with the
highest total log-probability.  It reuses the trained
:class:`~repro.core.decoder.RouteDecoder` unchanged — only the search
strategy differs — so it can be toggled per query.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import List, Optional, Tuple

import numpy as np

from ..autodiff import Tensor, concat, no_grad
from .decoder import RouteDecoder


@dataclasses.dataclass
class _Beam:
    """One partial route hypothesis."""

    log_prob: float
    route: List[int]
    visited: np.ndarray
    state: Optional[Tuple[Tensor, Tensor]]
    previous: Optional[int]

    def key(self) -> Tuple[int, ...]:
        return tuple(self.route)


def beam_search_route(decoder: RouteDecoder, nodes: Tensor, courier: Tensor,
                      adjacency: Optional[np.ndarray] = None,
                      width: int = 4) -> Tuple[np.ndarray, float]:
    """Decode a route with beam search.

    Parameters
    ----------
    decoder:
        A trained :class:`RouteDecoder`.
    nodes / courier / adjacency:
        Exactly the arguments :meth:`RouteDecoder.forward` takes.
    width:
        Beam width; ``width=1`` reduces to greedy decoding.

    Returns
    -------
    (route, log_prob):
        The best complete route and its total log probability.
    """
    if width < 1:
        raise ValueError(f"beam width must be >= 1, got {width}")
    n = nodes.shape[0]

    with no_grad():
        beams = [_Beam(log_prob=0.0, route=[], visited=np.zeros(n, dtype=bool),
                       state=None, previous=None)]
        for _ in range(n):
            candidates: List[_Beam] = []
            for beam in beams:
                step_input = (decoder.start_token if beam.previous is None
                              else nodes[beam.previous])
                h, new_state = decoder.recurrent.step(step_input, beam.state)
                query = concat([h, courier], axis=-1)
                mask = decoder._candidate_mask(beam.visited, beam.previous,
                                               adjacency)
                log_probs = decoder.attention.log_probs(nodes, query, mask).data
                feasible = np.flatnonzero(mask)
                # Expand only the top-``width`` children of this beam —
                # more can never survive the global prune.
                order = feasible[np.argsort(log_probs[feasible])[::-1][:width]]
                for child in order:
                    visited = beam.visited.copy()
                    visited[child] = True
                    candidates.append(_Beam(
                        log_prob=beam.log_prob + float(log_probs[child]),
                        route=beam.route + [int(child)],
                        visited=visited,
                        state=new_state,
                        previous=int(child),
                    ))
            # Global prune to the best ``width`` hypotheses.
            candidates.sort(key=lambda b: -b.log_prob)
            # Deduplicate identical prefixes (can appear when two parents
            # expand into the same ordering).
            seen = set()
            beams = []
            for candidate in candidates:
                key = candidate.key()
                if key in seen:
                    continue
                seen.add(key)
                beams.append(candidate)
                if len(beams) == width:
                    break

    best = max(beams, key=lambda b: b.log_prob)
    return np.array(best.route, dtype=np.int64), best.log_prob


def beam_search_predict(model, graph, width: int = 4):
    """Full-model inference with beam-searched routes at both levels.

    Runs the encoder once, beam-searches the AOI route (when the model
    has an AOI level), rebuilds the guidance inputs from that route,
    then beam-searches the location route and runs the SortLSTMs on the
    beam results.  Returns an :class:`~repro.core.model.M2G4RTPOutput`.
    """
    from .decoder import positional_guidance
    from .model import M2G4RTPOutput

    cfg = model.config
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            location_reps, aoi_reps = model.encoder(graph)
            courier = model._courier_vector(graph)

            aoi_route = None
            aoi_times = None
            if cfg.use_aoi:
                aoi_route, _ = beam_search_route(
                    model.aoi_route_decoder, aoi_reps, courier,
                    adjacency=graph.aoi.adjacency, width=width)
                aoi_times = model.aoi_time_decoder(aoi_reps, aoi_route)
                positions = positional_guidance(aoi_route, cfg.position_dim)
                per_location_positions = Tensor(positions[graph.aoi_of_location])
                per_location_eta = aoi_times[graph.aoi_of_location]
                location_inputs = concat(
                    [location_reps, per_location_positions,
                     per_location_eta.reshape(-1, 1)], axis=-1)
            else:
                location_inputs = location_reps

            route, _ = beam_search_route(
                model.location_route_decoder, location_inputs, courier,
                adjacency=graph.location.adjacency, width=width)
            times = model.location_time_decoder(location_inputs, route)

        return M2G4RTPOutput(
            route=route,
            arrival_times=times.data * cfg.time_scale,
            aoi_route=aoi_route,
            aoi_arrival_times=(aoi_times.data * cfg.time_scale
                               if aoi_times is not None else None),
        )
    finally:
        if was_training:
            model.train()
