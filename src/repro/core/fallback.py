"""Cheap degraded-mode predictor for the resilience layer.

When the learned model is unavailable — circuit breaker open, deadline
budget blown, queue shedding load — the service must still answer every
request (paper Section VI serves couriers live; an empty answer is
worse than a rough one).  :class:`FallbackPredictor` is that answer: a
distance-greedy route (chain the nearest unvisited location) with ETAs
from a single historical-average effective speed, the same shape as the
paper's Distance-Greedy baseline.  It runs in microseconds, uses no
autodiff, and cannot fail on well-formed requests.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

#: Fallback effective speed (metres/minute) when nothing was fitted.
DEFAULT_SPEED = 150.0


@dataclasses.dataclass
class FallbackPrediction:
    """Route permutation plus per-location arrival times (minutes)."""

    route: np.ndarray
    eta_minutes: np.ndarray


class FallbackPredictor:
    """Distance-greedy route + historical-average-speed ETA.

    Duck-typed over anything exposing ``courier_position``,
    ``locations`` (each with ``coord`` and ``distance_to``) and
    ``num_locations`` — i.e. both :class:`~repro.service.RTPRequest`
    and :class:`~repro.data.RTPInstance`.
    """

    def __init__(self, speed: float = DEFAULT_SPEED,
                 service_time: float = 0.0):
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        if service_time < 0:
            raise ValueError("service_time must be non-negative")
        self.speed = speed
        self.service_time = service_time

    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, train, default: float = DEFAULT_SPEED,
                     service_time: float = 0.0) -> "FallbackPredictor":
        """Fit the effective speed from historical routes.

        Total chained route distance over total elapsed minutes — the
        historical average a single fixed-speed constant can capture.
        Falls back to ``default`` on empty or degenerate data.
        """
        total_distance = 0.0
        total_minutes = 0.0
        for instance in train:
            position = instance.courier_position
            for location_index in instance.route:
                location = instance.locations[int(location_index)]
                total_distance += location.distance_to(*position)
                position = location.coord
            if len(instance.arrival_times):
                total_minutes += float(np.max(instance.arrival_times))
        speed = total_distance / total_minutes if total_minutes > 0 else default
        return cls(speed=speed if speed > 0 else default,
                   service_time=service_time)

    # ------------------------------------------------------------------
    def predict(self, request) -> FallbackPrediction:
        """Nearest-unvisited greedy route with cumulative-travel ETAs."""
        n = request.num_locations
        remaining = set(range(n))
        position = request.courier_position
        route = np.empty(n, dtype=np.int64)
        etas = np.zeros(n)
        clock = 0.0
        for step in range(n):
            best = min(
                remaining,
                key=lambda i: request.locations[i].distance_to(*position),
            )
            location = request.locations[best]
            clock += location.distance_to(*position) / self.speed
            route[step] = best
            etas[best] = clock
            clock += self.service_time
            remaining.remove(best)
            position = location.coord
        return FallbackPrediction(route=route, eta_minutes=etas)
