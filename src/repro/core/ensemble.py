"""Model ensembling: rank-aggregated routes and averaged ETAs.

Production serving commonly ensembles a few independently trained
models.  Routes are permutations, so they cannot be averaged directly;
we aggregate them with a Borda count (each member votes ``n - position``
points for every node) which yields a consensus permutation, and we
average the members' per-location ETAs.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..graphs import MultiLevelGraph
from .model import M2G4RTP, M2G4RTPOutput


def borda_aggregate(routes: Sequence[np.ndarray]) -> np.ndarray:
    """Consensus permutation from member routes via Borda count.

    Ties break toward the order of the first member (stable argsort of
    negated scores).
    """
    if not routes:
        raise ValueError("need at least one route to aggregate")
    n = len(routes[0])
    scores = np.zeros(n)
    for route in routes:
        route = np.asarray(route)
        if sorted(route.tolist()) != list(range(n)):
            raise ValueError("all routes must be permutations of equal length")
        for position, node in enumerate(route):
            scores[int(node)] += n - position
    first = np.asarray(routes[0])
    first_rank = np.empty(n)
    first_rank[first] = np.arange(n)
    # Sort by descending score; break ties by the first member's order.
    order = sorted(range(n), key=lambda i: (-scores[i], first_rank[i]))
    return np.asarray(order, dtype=np.int64)


class EnsemblePredictor:
    """Joint prediction from several trained :class:`M2G4RTP` models."""

    def __init__(self, models: Sequence[M2G4RTP]):
        if not models:
            raise ValueError("ensemble needs at least one model")
        self.models: List[M2G4RTP] = list(models)

    def predict(self, graph: MultiLevelGraph) -> M2G4RTPOutput:
        outputs = [model.predict(graph) for model in self.models]
        route = borda_aggregate([output.route for output in outputs])
        times = np.mean([output.arrival_times for output in outputs], axis=0)
        if outputs[0].aoi_route is not None:
            aoi_route = borda_aggregate(
                [output.aoi_route for output in outputs])
            aoi_times = np.mean(
                [output.aoi_arrival_times for output in outputs], axis=0)
        else:
            aoi_route = None
            aoi_times = None
        return M2G4RTPOutput(
            route=route,
            arrival_times=times,
            aoi_route=aoi_route,
            aoi_arrival_times=aoi_times,
        )

    def __len__(self) -> int:
        return len(self.models)
