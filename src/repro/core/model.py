"""M²G4RTP: the full multi-level multi-task model (paper Section IV).

Composition::

    MultiLevelEncoder ──> AOI RouteDecoder ──> AOI SortLSTM ─┐
                     │          (guidance: position enc + ETA)│
                     └─> Location RouteDecoder ──> Location SortLSTM

Training produces four losses (route cross-entropy and time MAE at each
level, Eqs. 37-40) combined by homoscedastic-uncertainty weighting
(Eq. 41).  The ablation variants of the paper's Section V-E are exposed
through :class:`M2G4RTPConfig` flags and :func:`make_variant`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..autodiff import Tensor, concat, no_grad, stack
from ..data.entities import RTPInstance
from ..graphs import MultiLevelGraph
from ..obs.tracing import span
from ..nn import Embedding, Linear, Module
from .decoder import RouteDecoder, SortLSTM, positional_guidance
from .encoder import EncoderConfig, MultiLevelEncoder
from .uncertainty import FixedWeighting, UncertaintyWeighting


@dataclasses.dataclass
class M2G4RTPConfig:
    """Hyper-parameters and ablation switches for :class:`M2G4RTP`."""

    hidden_dim: int = 32
    num_encoder_layers: int = 2
    num_heads: int = 4
    continuous_embed_dim: int = 16
    discrete_embed_dim: int = 8
    position_dim: int = 8
    courier_embed_dim: int = 8
    num_couriers: int = 64
    num_aoi_ids: int = 256
    num_aoi_types: int = 8
    time_scale: float = 60.0
    restrict_to_neighbors: bool = False
    cell_type: str = "lstm"   # "lstm" or "gru" for both decoders
    seed: int = 0
    # Ablation switches (paper Section V-E).
    use_aoi: bool = True          # False -> "w/o AOI" variant
    use_graph: bool = True        # False -> "w/o graph" (BiLSTM encoder)
    use_uncertainty: bool = True  # False -> fixed 100:1 weights
    detach_time_inputs: bool = False  # True -> "two-step" training

    def encoder_config(self) -> EncoderConfig:
        return EncoderConfig(
            hidden_dim=self.hidden_dim,
            num_layers=self.num_encoder_layers,
            num_heads=self.num_heads,
            continuous_embed_dim=self.continuous_embed_dim,
            discrete_embed_dim=self.discrete_embed_dim,
            num_aoi_ids=self.num_aoi_ids,
            num_aoi_types=self.num_aoi_types,
        )


@dataclasses.dataclass
class RTPTargets:
    """Ground-truth labels for one instance, in model conventions."""

    route: np.ndarray
    arrival_times: np.ndarray
    aoi_route: np.ndarray
    aoi_arrival_times: np.ndarray

    @staticmethod
    def from_instance(instance: RTPInstance) -> "RTPTargets":
        return RTPTargets(
            route=instance.route,
            arrival_times=instance.arrival_times,
            aoi_route=instance.aoi_route,
            aoi_arrival_times=instance.aoi_arrival_times,
        )


@dataclasses.dataclass
class M2G4RTPOutput:
    """Predictions (and, when targets were given, the task losses)."""

    route: np.ndarray
    arrival_times: np.ndarray
    aoi_route: Optional[np.ndarray]
    aoi_arrival_times: Optional[np.ndarray]
    losses: Dict[str, Tensor] = dataclasses.field(default_factory=dict)
    total_loss: Optional[Tensor] = None


class M2G4RTP(Module):
    """Multi-level, multi-task graph model for route & time prediction."""

    def __init__(self, config: Optional[M2G4RTPConfig] = None):
        super().__init__()
        self.config = config or M2G4RTPConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        self.encoder = MultiLevelEncoder(
            cfg.encoder_config(), rng, use_graph=cfg.use_graph)
        self.courier_embedding = Embedding(cfg.num_couriers,
                                           cfg.courier_embed_dim, rng)
        courier_dim = cfg.courier_embed_dim + 3

        d = cfg.hidden_dim
        if cfg.use_aoi:
            self.aoi_route_decoder = RouteDecoder(
                d, d, courier_dim, rng,
                restrict_to_neighbors=cfg.restrict_to_neighbors,
                cell_type=cfg.cell_type)
            self.aoi_time_decoder = SortLSTM(d, d, cfg.position_dim, rng,
                                             cell_type=cfg.cell_type)
            location_input_dim = d + cfg.position_dim + 1
        else:
            self.aoi_route_decoder = None
            self.aoi_time_decoder = None
            location_input_dim = d

        self.location_route_decoder = RouteDecoder(
            location_input_dim, d, courier_dim, rng,
            restrict_to_neighbors=cfg.restrict_to_neighbors,
            cell_type=cfg.cell_type)
        self.location_time_decoder = SortLSTM(
            location_input_dim, d, cfg.position_dim, rng,
            cell_type=cfg.cell_type)

        self.loss_weighting = (
            UncertaintyWeighting() if cfg.use_uncertainty else FixedWeighting())

    # ------------------------------------------------------------------
    def _courier_vector(self, graph: MultiLevelGraph) -> Tensor:
        embedding = self.courier_embedding(
            graph.courier_id % self.config.num_couriers)
        return concat([embedding, Tensor(graph.courier_profile)], axis=-1)

    @staticmethod
    def _route_loss(step_log_probs: List[Tensor],
                    teacher_route: np.ndarray) -> Tensor:
        """Mean step cross-entropy (Eqs. 37-38)."""
        terms = [
            -log_probs[int(target)]
            for log_probs, target in zip(step_log_probs, teacher_route)
        ]
        return stack(terms, axis=0).mean()

    def _time_loss(self, predicted: Tensor, target_minutes: np.ndarray) -> Tensor:
        """MAE in scaled time units (Eqs. 39-40)."""
        target = Tensor(np.asarray(target_minutes) / self.config.time_scale)
        return (predicted - target).abs().mean()

    # ------------------------------------------------------------------
    def forward(self, graph: MultiLevelGraph,
                targets: Optional[RTPTargets] = None,
                sample_prob: float = 0.0,
                rng: Optional[np.random.Generator] = None) -> M2G4RTPOutput:
        """Run the model; with ``targets`` also compute the four losses.

        With targets the decoders are teacher-forced and the SortLSTMs
        sort by the ground-truth routes; without targets the model runs
        fully autoregressively on its own predictions.  ``sample_prob``
        enables scheduled sampling during training (see
        :meth:`RouteDecoder.forward`).
        """
        cfg = self.config
        with span("encoder"):
            location_reps, aoi_reps = self.encoder(graph)
        courier = self._courier_vector(graph)
        losses: Dict[str, Tensor] = {}

        aoi_route: Optional[np.ndarray] = None
        aoi_times_tensor: Optional[Tensor] = None
        if cfg.use_aoi:
            assert self.aoi_route_decoder is not None
            with span("route_decode", level="aoi"):
                aoi_decode = self.aoi_route_decoder(
                    aoi_reps, courier, adjacency=graph.aoi.adjacency,
                    teacher_route=(targets.aoi_route
                                   if targets is not None else None),
                    sample_prob=sample_prob, rng=rng)
            aoi_route = aoi_decode.route
            sort_route = targets.aoi_route if targets is not None else aoi_route
            time_inputs = aoi_reps.detach() if cfg.detach_time_inputs else aoi_reps
            with span("time_decode", level="aoi"):
                aoi_times_tensor = self.aoi_time_decoder(time_inputs, sort_route)
            if targets is not None:
                losses["aoi_route"] = self._route_loss(
                    aoi_decode.step_log_probs, aoi_decode.step_targets)
                losses["aoi_time"] = self._time_loss(
                    aoi_times_tensor, targets.aoi_arrival_times)

            # Guidance (Eq. 34): position of each location's AOI in the
            # AOI route, plus that AOI's predicted arrival time.
            guidance_route = sort_route
            aoi_positions = positional_guidance(guidance_route, cfg.position_dim)
            per_location_positions = Tensor(
                aoi_positions[graph.aoi_of_location])
            per_location_eta = aoi_times_tensor[graph.aoi_of_location]
            location_inputs = concat(
                [location_reps, per_location_positions,
                 per_location_eta.reshape(-1, 1)],
                axis=-1)
        else:
            location_inputs = location_reps

        with span("route_decode", level="location"):
            location_decode = self.location_route_decoder(
                location_inputs, courier, adjacency=graph.location.adjacency,
                teacher_route=targets.route if targets is not None else None,
                sample_prob=sample_prob, rng=rng)
        route = location_decode.route
        location_sort = targets.route if targets is not None else route
        time_inputs = (location_inputs.detach()
                       if cfg.detach_time_inputs else location_inputs)
        with span("time_decode", level="location"):
            location_times_tensor = self.location_time_decoder(
                time_inputs, location_sort)

        if targets is not None:
            losses["location_route"] = self._route_loss(
                location_decode.step_log_probs, location_decode.step_targets)
            losses["location_time"] = self._time_loss(
                location_times_tensor, targets.arrival_times)

        total = self.loss_weighting(losses) if losses else None
        return M2G4RTPOutput(
            route=route,
            arrival_times=location_times_tensor.data * cfg.time_scale,
            aoi_route=aoi_route,
            aoi_arrival_times=(aoi_times_tensor.data * cfg.time_scale
                               if aoi_times_tensor is not None else None),
            losses=losses,
            total_loss=total,
        )

    # ------------------------------------------------------------------
    def predict(self, graph: MultiLevelGraph) -> M2G4RTPOutput:
        """Inference: autoregressive decoding without the tape."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                return self.forward(graph)
        finally:
            if was_training:
                self.train()

    def predict_batch(self, graphs) -> List[M2G4RTPOutput]:
        """Batched inference over a list of graphs.

        Equivalent to ``[self.predict(g) for g in graphs]`` (routes
        identical, times within 1e-6) but executed as padded batch
        tensors — see :mod:`repro.core.batching`.
        """
        from .batching import BatchedM2G4RTP  # local import: avoids cycle
        return BatchedM2G4RTP(self).predict(graphs)

    # ------------------------------------------------------------------
    # Parameter groups for the two-step ablation trainer
    # ------------------------------------------------------------------
    def time_parameters(self):
        """Parameters of the time decoders (the SortLSTMs + heads)."""
        modules = [self.location_time_decoder]
        if self.aoi_time_decoder is not None:
            modules.append(self.aoi_time_decoder)
        parameters = []
        for module in modules:
            parameters.extend(module.parameters())
        return parameters

    def route_parameters(self):
        """All parameters except the time decoders."""
        time_ids = {id(p) for p in self.time_parameters()}
        return [p for p in self.parameters() if id(p) not in time_ids]


def make_variant(name: str, base: Optional[M2G4RTPConfig] = None) -> M2G4RTPConfig:
    """Config for a paper ablation variant (Section V-E).

    ``name`` is one of ``full``, ``two-step``, ``w/o aoi``, ``w/o graph``,
    ``w/o uncertainty``.
    """
    config = dataclasses.replace(base) if base is not None else M2G4RTPConfig()
    normalized = name.strip().lower()
    if normalized == "full":
        return config
    if normalized in ("two-step", "two_step"):
        return dataclasses.replace(config, detach_time_inputs=True)
    if normalized in ("w/o aoi", "wo_aoi"):
        return dataclasses.replace(config, use_aoi=False)
    if normalized in ("w/o graph", "wo_graph"):
        return dataclasses.replace(config, use_graph=False)
    if normalized in ("w/o uncertainty", "wo_uncertainty"):
        return dataclasses.replace(config, use_uncertainty=False)
    raise ValueError(f"unknown variant {name!r}")


VARIANT_NAMES = ("full", "two-step", "w/o aoi", "w/o graph", "w/o uncertainty")
