"""GAT-e: graph attention with edge features and edge updates (Eqs. 20-26).

The paper's improvement over vanilla GAT is twofold:

* edge embeddings enter the attention logits (Eq. 20), so the network
  sees distance / deadline-gap / connectivity when weighting neighbours;
* edge embeddings are themselves updated from the incident node
  embeddings each layer (Eq. 23), giving an information-passing path
  along edges.

Multi-head behaviour follows Eqs. 24-26: intermediate layers concatenate
P head outputs, the final layer averages them and delays the ReLU.

Note on Eq. 22: the paper writes the aggregation as
``sum_j alpha_ij W2 h_i`` — aggregating the *centre* node.  As in the
original GAT (Velickovic et al., 2018) the sum must run over the
*neighbour* embeddings ``h_j`` for the attention weights to matter; we
follow the GAT semantics.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..autodiff import Tensor, concat, is_grad_enabled, masked_softmax, softmax, stack
from ..nn import Linear, Module
from ..nn.init import xavier_uniform
from ..nn.module import Parameter
from ..obs.tracing import span


class GATEHead(Module):
    """One attention head of a GAT-e layer.

    Produces updated node embeddings ``(n, out_dim)`` and updated edge
    embeddings ``(n, n, out_dim)`` from inputs of width ``in_dim``.
    """

    def __init__(self, in_dim: int, out_dim: int, rng: np.random.Generator,
                 leaky_slope: float = 0.2):
        super().__init__()
        self.leaky_slope = leaky_slope
        # W1 and the split attention vector a_v = [a_src ; a_dst] (Eq. 20).
        self.w1 = Parameter(xavier_uniform(rng, in_dim, in_dim))
        self.a_src = Parameter(xavier_uniform(rng, in_dim, 1, shape=(in_dim,)))
        self.a_dst = Parameter(xavier_uniform(rng, in_dim, 1, shape=(in_dim,)))
        self.a_edge = Parameter(xavier_uniform(rng, in_dim, 1, shape=(in_dim,)))
        # W2 (node messages) and W3/W4/W5 (edge update, Eq. 23).
        self.w2 = Parameter(xavier_uniform(rng, in_dim, out_dim))
        self.w3 = Parameter(xavier_uniform(rng, in_dim, out_dim))
        self.w4 = Parameter(xavier_uniform(rng, in_dim, out_dim))
        self.w5 = Parameter(xavier_uniform(rng, in_dim, out_dim))

    def attention(self, nodes: Tensor, edges: Tensor,
                  adjacency: np.ndarray) -> Tensor:
        """Masked attention matrix ``alpha`` of Eq. 21, shape ``(n, n)``."""
        transformed = nodes @ self.w1
        source_score = transformed @ self.a_src      # (n,)
        target_score = transformed @ self.a_dst      # (n,)
        edge_score = edges @ self.a_edge             # (n, n)
        n = nodes.shape[0]
        logits = (source_score.reshape(n, 1) + target_score.reshape(1, n)
                  + edge_score).leaky_relu(self.leaky_slope)
        return softmax(logits, axis=1, mask=np.asarray(adjacency, dtype=bool))

    def forward(self, nodes: Tensor, edges: Tensor,
                adjacency: np.ndarray) -> Tuple[Tensor, Tensor, Tensor]:
        """Return (pre-activation node update, edge update, alpha)."""
        alpha = self.attention(nodes, edges, adjacency)
        node_update = alpha @ (nodes @ self.w2)
        n = nodes.shape[0]
        edge_update = (
            edges @ self.w3
            + (nodes @ self.w4).reshape(n, 1, -1)
            + (nodes @ self.w5).reshape(1, n, -1)
        )
        return node_update, edge_update, alpha

    def attention_batch(self, nodes: Tensor, edges: Tensor,
                        adjacency: np.ndarray) -> Tensor:
        """Batched masked attention, ``(B, n, n)``.

        ``adjacency`` rows belonging to padding nodes are entirely
        ``False``; :func:`masked_softmax` gives those rows an all-zero
        output instead of NaN, and padding columns get probability
        exactly zero for every real row.
        """
        transformed = nodes @ self.w1
        source_score = transformed @ self.a_src      # (B, n)
        target_score = transformed @ self.a_dst      # (B, n)
        edge_score = edges @ self.a_edge             # (B, n, n)
        batch, n = source_score.shape
        logits = (source_score.reshape(batch, n, 1)
                  + target_score.reshape(batch, 1, n)
                  + edge_score).leaky_relu(self.leaky_slope)
        return masked_softmax(logits, np.asarray(adjacency, dtype=bool), axis=2)

    def forward_batch(self, nodes: Tensor, edges: Tensor,
                      adjacency: np.ndarray,
                      need_edges: bool = True) -> Tuple[Tensor, Optional[Tensor], Tensor]:
        """Batched :meth:`forward` over ``(B, n, d)`` nodes and ``(B, n, n, d)`` edges.

        ``need_edges=False`` skips the edge update (the node update never
        reads it, so node outputs are unchanged) — used for the last
        encoder layer, whose edge output is discarded.
        """
        alpha = self.attention_batch(nodes, edges, adjacency)
        node_update = alpha @ (nodes @ self.w2)
        if not need_edges:
            return node_update, None, alpha
        batch, n = alpha.shape[0], alpha.shape[1]
        edge_update = (
            edges @ self.w3
            + (nodes @ self.w4).reshape(batch, n, 1, -1)
            + (nodes @ self.w5).reshape(batch, 1, n, -1)
        )
        return node_update, edge_update, alpha


class GATELayer(Module):
    """Multi-head GAT-e layer.

    Parameters
    ----------
    dim:
        Node/edge embedding width (kept constant across layers).
    num_heads:
        ``P`` in Eqs. 24-25.  Must divide ``dim`` for concat layers.
    final:
        If ``True``, heads are averaged (each producing the full
        ``dim``) and the ReLU is delayed until after the average
        (Eq. 26); otherwise head outputs of ``dim // P`` are
        concatenated with per-head ReLU (Eqs. 24-25).
    """

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator,
                 final: bool = False):
        super().__init__()
        if not final and dim % num_heads != 0:
            raise ValueError(f"dim {dim} must be divisible by num_heads {num_heads}")
        self.final = final
        head_dim = dim if final else dim // num_heads
        self.heads = [GATEHead(dim, head_dim, rng) for _ in range(num_heads)]

    def forward(self, nodes: Tensor, edges: Tensor,
                adjacency: np.ndarray) -> Tuple[Tensor, Tensor]:
        node_updates = []
        edge_updates = []
        for head in self.heads:
            node_update, edge_update, _ = head(nodes, edges, adjacency)
            if not self.final:
                node_update = node_update.relu()
                edge_update = edge_update.relu()
            node_updates.append(node_update)
            edge_updates.append(edge_update)
        if self.final:
            count = float(len(self.heads))
            node_out = node_updates[0]
            edge_out = edge_updates[0]
            for node_update, edge_update in zip(node_updates[1:], edge_updates[1:]):
                node_out = node_out + node_update
                edge_out = edge_out + edge_update
            return (node_out * (1.0 / count)).relu(), (edge_out * (1.0 / count)).relu()
        return concat(node_updates, axis=-1), concat(edge_updates, axis=-1)

    def forward_batch(self, nodes: Tensor, edges: Tensor,
                      adjacency: np.ndarray,
                      need_edges: bool = True) -> Tuple[Tensor, Optional[Tensor]]:
        """Batched :meth:`forward`; head combination is unchanged."""
        node_updates = []
        edge_updates = []
        for head in self.heads:
            node_update, edge_update, _ = head.forward_batch(
                nodes, edges, adjacency, need_edges=need_edges)
            if not self.final:
                node_update = node_update.relu()
                if need_edges:
                    edge_update = edge_update.relu()
            node_updates.append(node_update)
            edge_updates.append(edge_update)
        if self.final:
            count = float(len(self.heads))
            node_out = node_updates[0]
            for node_update in node_updates[1:]:
                node_out = node_out + node_update
            node_out = (node_out * (1.0 / count)).relu()
            if not need_edges:
                return node_out, None
            edge_out = edge_updates[0]
            for edge_update in edge_updates[1:]:
                edge_out = edge_out + edge_update
            return node_out, (edge_out * (1.0 / count)).relu()
        if not need_edges:
            return concat(node_updates, axis=-1), None
        return concat(node_updates, axis=-1), concat(edge_updates, axis=-1)


class GATEEncoder(Module):
    """A stack of GAT-e layers with residual connections.

    The last layer uses the averaging/delayed-activation form of Eq. 26.
    Residual connections are not in the paper's equations but are
    standard for deep GATs and keep the K-layer stack trainable; they
    preserve the paper's information flow.
    """

    def __init__(self, dim: int, num_layers: int, num_heads: int,
                 rng: np.random.Generator):
        super().__init__()
        if num_layers < 1:
            raise ValueError("encoder needs at least one layer")
        self.layers = [
            GATELayer(dim, num_heads, rng, final=(i == num_layers - 1))
            for i in range(num_layers)
        ]

    def forward(self, nodes: Tensor, edges: Tensor,
                adjacency: np.ndarray) -> Tuple[Tensor, Tensor]:
        for layer in self.layers:
            node_update, edge_update = layer(nodes, edges, adjacency)
            nodes = nodes + node_update
            edges = edges + edge_update
        return nodes, edges

    def forward_batch(self, nodes: Tensor, edges: Tensor,
                      adjacency: np.ndarray,
                      need_edges: bool = True) -> Tuple[Tensor, Optional[Tensor]]:
        """Batched stack over ``(B, n, d)`` / ``(B, n, n, d)`` inputs.

        With ``need_edges=False`` the last layer's edge update — whose
        output no caller reads — is skipped; node outputs are identical.

        When gradients are disabled, the stack runs through the active
        kernel backend (:mod:`repro.kernels`) — bit-identical results,
        no tape; training keeps the Tensor path below.
        """
        if not is_grad_enabled():
            from .. import kernels
            backend = kernels.active()
            with span("kernel.gat_encoder", backend=kernels.active_name(),
                      batch_size=nodes.shape[0], layers=len(self.layers)):
                out_nodes, out_edges = backend.gat_encoder_forward(
                    self, nodes.data, edges.data,
                    np.asarray(adjacency, dtype=bool), need_edges=need_edges)
            return Tensor(out_nodes), (
                None if out_edges is None else Tensor(out_edges))
        return self._forward_batch_tensor(nodes, edges, adjacency,
                                          need_edges=need_edges)

    def _forward_batch_tensor(self, nodes: Tensor, edges: Tensor,
                              adjacency: np.ndarray,
                              need_edges: bool = True
                              ) -> Tuple[Tensor, Optional[Tensor]]:
        """Tensor-op stack: the autodiff path and the reference kernel."""
        last = len(self.layers) - 1
        for index, layer in enumerate(self.layers):
            layer_need_edges = need_edges or index < last
            node_update, edge_update = layer.forward_batch(
                nodes, edges, adjacency, need_edges=layer_need_edges)
            nodes = nodes + node_update
            if layer_need_edges:
                edges = edges + edge_update
        return nodes, edges if need_edges else None
