"""Multi-task decoders (paper Section IV-C).

* :class:`RouteDecoder` — the recurrent masked-pointer decoder of
  Eqs. 27-31: an LSTM aggregates the already-decoded prefix into the
  current state, additive attention scores every feasible candidate,
  and the argmax (inference) or the ground truth (teacher forcing)
  becomes the next step's input.
* :class:`SortLSTM` — the time decoder of Eqs. 32-33: node embeddings
  are fed *in route order*, each concatenated with the sinusoidal
  encoding of its position, and an LSTM emits one arrival time per
  step.  Outputs are not forced monotone, which gives the module the
  error-correction slack the paper highlights.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autodiff import Tensor, concat, stack
from ..nn import AdditivePointerAttention, GRUCell, Linear, LSTMCell, Module
from ..nn.init import normal
from ..nn.module import Parameter
from ..nn.positional import sinusoidal_position_encoding


class RecurrentCell(Module):
    """Uniform step interface over LSTM and GRU cells.

    ``step(x, state) -> (hidden, new_state)`` hides the difference
    between the LSTM's ``(h, c)`` state and the GRU's plain ``h``.
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator, cell_type: str = "lstm"):
        super().__init__()
        if cell_type == "lstm":
            self.cell = LSTMCell(input_dim, hidden_dim, rng)
        elif cell_type == "gru":
            self.cell = GRUCell(input_dim, hidden_dim, rng)
        else:
            raise ValueError(f"cell_type must be 'lstm' or 'gru', got {cell_type!r}")
        self.cell_type = cell_type

    def step(self, x: Tensor, state):
        if self.cell_type == "lstm":
            h, c = self.cell(x, state)
            return h, (h, c)
        h = self.cell(x, state)
        return h, h


@dataclasses.dataclass
class RouteDecoderOutput:
    """Result of one route decoding pass.

    ``route[j]`` is the node index decoded at step ``j``;
    ``step_log_probs[j]`` is the masked log-probability vector of step
    ``j`` (a Tensor over all nodes, infeasible ones at -inf), used for
    the route cross-entropy loss.  When a teacher route was supplied,
    ``step_targets[j]`` is the supervised label of step ``j`` — under
    plain teacher forcing it equals ``teacher_route[j]``; under
    scheduled sampling it is the oracle label re-aligned to the decoded
    prefix (the earliest still-unvisited node of the true route).
    """

    route: np.ndarray
    step_log_probs: List[Tensor]
    step_targets: Optional[np.ndarray] = None


class RouteDecoder(Module):
    """Pointer-network route decoder with feasibility masking.

    Parameters
    ----------
    node_dim:
        Width of the (possibly guidance-augmented) node inputs.
    state_dim:
        LSTM hidden width.
    courier_dim:
        Width of the courier vector ``u`` concatenated to the query
        (Eq. 28).
    restrict_to_neighbors:
        When ``True``, candidates are additionally restricted to graph
        neighbours of the previously decoded node (the paper's
        "most likely neighbor of the (s-1)-th output"), falling back to
        all unvisited nodes when no unvisited neighbour exists.
    """

    def __init__(self, node_dim: int, state_dim: int, courier_dim: int,
                 rng: np.random.Generator,
                 restrict_to_neighbors: bool = True,
                 cell_type: str = "lstm"):
        super().__init__()
        self.recurrent = RecurrentCell(node_dim, state_dim, rng, cell_type)
        self.attention = AdditivePointerAttention(
            key_dim=node_dim, query_dim=state_dim + courier_dim,
            hidden_dim=state_dim, rng=rng)
        self.start_token = Parameter(normal(rng, (node_dim,), std=0.1))
        self.restrict_to_neighbors = restrict_to_neighbors

    def _candidate_mask(self, visited: np.ndarray, previous: Optional[int],
                        adjacency: Optional[np.ndarray]) -> np.ndarray:
        unvisited = ~visited
        if (self.restrict_to_neighbors and previous is not None
                and adjacency is not None):
            neighbors = np.asarray(adjacency[previous], dtype=bool) & unvisited
            if neighbors.any():
                return neighbors
        return unvisited

    def forward(self, nodes: Tensor, courier: Tensor,
                adjacency: Optional[np.ndarray] = None,
                teacher_route: Optional[np.ndarray] = None,
                sample_prob: float = 0.0,
                rng: Optional[np.random.Generator] = None
                ) -> RouteDecoderOutput:
        """Decode a full route over ``nodes``.

        With ``teacher_route`` given, the decoder is teacher-forced: the
        supervised node is fed forward at each step while the log
        probabilities are still produced for the loss.  With
        ``sample_prob > 0`` (scheduled sampling), each step instead
        feeds the model's own argmax with that probability, and the
        supervision label is re-aligned to the decoded prefix — the
        earliest still-unvisited node of the true route — so training
        sees its own mistakes (DAgger-style oracle labelling).
        """
        n = nodes.shape[0]
        visited = np.zeros(n, dtype=bool)
        state = None
        step_input = self.start_token
        previous: Optional[int] = None
        route = np.empty(n, dtype=np.int64)
        step_log_probs: List[Tensor] = []
        step_targets: Optional[np.ndarray] = None
        true_rank: Optional[np.ndarray] = None
        if teacher_route is not None:
            step_targets = np.empty(n, dtype=np.int64)
            true_rank = np.empty(n, dtype=np.int64)
            true_rank[np.asarray(teacher_route)] = np.arange(n)
            if sample_prob > 0.0 and rng is None:
                raise ValueError("scheduled sampling requires an rng")

        for step in range(n):
            h, state = self.recurrent.step(step_input, state)
            query = concat([h, courier], axis=-1)
            mask = self._candidate_mask(visited, previous, adjacency)
            log_probs = self.attention.log_probs(nodes, query, mask)
            step_log_probs.append(log_probs)

            if teacher_route is not None:
                unvisited = np.flatnonzero(~visited)
                target = int(unvisited[np.argmin(true_rank[unvisited])])
                step_targets[step] = target
                if sample_prob > 0.0 and rng.random() < sample_prob:
                    chosen = int(np.argmax(log_probs.data))
                else:
                    chosen = target
            else:
                chosen = int(np.argmax(log_probs.data))
            route[step] = chosen
            visited[chosen] = True
            previous = chosen
            step_input = nodes[chosen]

        return RouteDecoderOutput(route=route, step_log_probs=step_log_probs,
                                  step_targets=step_targets)


class SortLSTM(Module):
    """RNN with a sorting function (Eqs. 32-33).

    Consumes node embeddings *sorted by a route*, concatenated with the
    positional encoding of each step, and emits one arrival-time scalar
    per step.  The returned tensor is re-scattered to node order, i.e.
    ``output[i]`` is the predicted arrival time of node ``i``.
    """

    def __init__(self, node_dim: int, state_dim: int, position_dim: int,
                 rng: np.random.Generator, cell_type: str = "lstm"):
        super().__init__()
        if position_dim < 2:
            raise ValueError("position_dim must be >= 2")
        self.position_dim = position_dim
        self.recurrent = RecurrentCell(node_dim + position_dim, state_dim,
                                       rng, cell_type)
        self.head = Linear(state_dim, 1, rng)

    def forward(self, nodes: Tensor, route: np.ndarray) -> Tensor:
        """Predict arrival times; ``route`` orders the input nodes."""
        n = nodes.shape[0]
        route = np.asarray(route, dtype=np.int64)
        if sorted(route.tolist()) != list(range(n)):
            raise ValueError("route must be a permutation of the node indices")
        state = None
        times_by_step: List[Tensor] = []
        for position, node_index in enumerate(route, start=1):
            encoding = Tensor(
                sinusoidal_position_encoding(position, self.position_dim))
            step_input = concat([nodes[int(node_index)], encoding], axis=-1)
            h, state = self.recurrent.step(step_input, state)
            times_by_step.append(self.head(h).reshape(()))
        by_step = stack(times_by_step, axis=0)
        # Scatter step-ordered times back to node order.
        inverse = np.empty(n, dtype=np.int64)
        inverse[route] = np.arange(n)
        return by_step[inverse]


def positional_guidance(route: np.ndarray, dim: int) -> np.ndarray:
    """Per-node positional encodings given a route (used as AOI guidance).

    ``result[i]`` is the encoding of node ``i``'s 1-indexed position in
    ``route`` — the ``p_aoi`` of Eq. 34.
    """
    route = np.asarray(route, dtype=np.int64)
    n = route.size
    result = np.zeros((n, dim))
    for position, node_index in enumerate(route, start=1):
        result[node_index] = sinusoidal_position_encoding(position, dim)
    return result
