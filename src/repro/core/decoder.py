"""Multi-task decoders (paper Section IV-C).

* :class:`RouteDecoder` — the recurrent masked-pointer decoder of
  Eqs. 27-31: an LSTM aggregates the already-decoded prefix into the
  current state, additive attention scores every feasible candidate,
  and the argmax (inference) or the ground truth (teacher forcing)
  becomes the next step's input.
* :class:`SortLSTM` — the time decoder of Eqs. 32-33: node embeddings
  are fed *in route order*, each concatenated with the sinusoidal
  encoding of its position, and an LSTM emits one arrival time per
  step.  Outputs are not forced monotone, which gives the module the
  error-correction slack the paper highlights.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autodiff import Tensor, concat, is_grad_enabled, padded_gather, stack
from ..nn import AdditivePointerAttention, GRUCell, Linear, LSTMCell, Module
from ..nn.init import normal
from ..nn.module import Parameter
from ..nn.positional import sinusoidal_position_encoding
from ..obs.tracing import span


class RecurrentCell(Module):
    """Uniform step interface over LSTM and GRU cells.

    ``step(x, state) -> (hidden, new_state)`` hides the difference
    between the LSTM's ``(h, c)`` state and the GRU's plain ``h``.
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator, cell_type: str = "lstm"):
        super().__init__()
        if cell_type == "lstm":
            self.cell = LSTMCell(input_dim, hidden_dim, rng)
        elif cell_type == "gru":
            self.cell = GRUCell(input_dim, hidden_dim, rng)
        else:
            raise ValueError(f"cell_type must be 'lstm' or 'gru', got {cell_type!r}")
        self.cell_type = cell_type

    def step(self, x: Tensor, state):
        if self.cell_type == "lstm":
            h, c = self.cell(x, state)
            return h, (h, c)
        h = self.cell(x, state)
        return h, h

    def initial_state(self, batch_shape: Tuple[int, ...] = ()):
        """Explicit zero state (needed when the first input is unbatched)."""
        return self.cell.initial_state(batch_shape)


@dataclasses.dataclass
class RouteDecoderOutput:
    """Result of one route decoding pass.

    ``route[j]`` is the node index decoded at step ``j``;
    ``step_log_probs[j]`` is the masked log-probability vector of step
    ``j`` (a Tensor over all nodes, infeasible ones at -inf), used for
    the route cross-entropy loss.  When a teacher route was supplied,
    ``step_targets[j]`` is the supervised label of step ``j`` — under
    plain teacher forcing it equals ``teacher_route[j]``; under
    scheduled sampling it is the oracle label re-aligned to the decoded
    prefix (the earliest still-unvisited node of the true route).
    """

    route: np.ndarray
    step_log_probs: List[Tensor]
    step_targets: Optional[np.ndarray] = None


class RouteDecoder(Module):
    """Pointer-network route decoder with feasibility masking.

    Parameters
    ----------
    node_dim:
        Width of the (possibly guidance-augmented) node inputs.
    state_dim:
        LSTM hidden width.
    courier_dim:
        Width of the courier vector ``u`` concatenated to the query
        (Eq. 28).
    restrict_to_neighbors:
        When ``True``, candidates are additionally restricted to graph
        neighbours of the previously decoded node (the paper's
        "most likely neighbor of the (s-1)-th output"), falling back to
        all unvisited nodes when no unvisited neighbour exists.
    """

    def __init__(self, node_dim: int, state_dim: int, courier_dim: int,
                 rng: np.random.Generator,
                 restrict_to_neighbors: bool = True,
                 cell_type: str = "lstm"):
        super().__init__()
        self.recurrent = RecurrentCell(node_dim, state_dim, rng, cell_type)
        self.attention = AdditivePointerAttention(
            key_dim=node_dim, query_dim=state_dim + courier_dim,
            hidden_dim=state_dim, rng=rng)
        self.start_token = Parameter(normal(rng, (node_dim,), std=0.1))
        self.restrict_to_neighbors = restrict_to_neighbors

    def _candidate_mask(self, visited: np.ndarray, previous: Optional[int],
                        adjacency: Optional[np.ndarray]) -> np.ndarray:
        unvisited = ~visited
        if (self.restrict_to_neighbors and previous is not None
                and adjacency is not None):
            neighbors = np.asarray(adjacency[previous], dtype=bool) & unvisited
            if neighbors.any():
                return neighbors
        return unvisited

    def forward(self, nodes: Tensor, courier: Tensor,
                adjacency: Optional[np.ndarray] = None,
                teacher_route: Optional[np.ndarray] = None,
                sample_prob: float = 0.0,
                rng: Optional[np.random.Generator] = None
                ) -> RouteDecoderOutput:
        """Decode a full route over ``nodes``.

        With ``teacher_route`` given, the decoder is teacher-forced: the
        supervised node is fed forward at each step while the log
        probabilities are still produced for the loss.  With
        ``sample_prob > 0`` (scheduled sampling), each step instead
        feeds the model's own argmax with that probability, and the
        supervision label is re-aligned to the decoded prefix — the
        earliest still-unvisited node of the true route — so training
        sees its own mistakes (DAgger-style oracle labelling).
        """
        n = nodes.shape[0]
        visited = np.zeros(n, dtype=bool)
        state = None
        step_input = self.start_token
        previous: Optional[int] = None
        route = np.empty(n, dtype=np.int64)
        step_log_probs: List[Tensor] = []
        step_targets: Optional[np.ndarray] = None
        true_rank: Optional[np.ndarray] = None
        if teacher_route is not None:
            step_targets = np.empty(n, dtype=np.int64)
            true_rank = np.empty(n, dtype=np.int64)
            true_rank[np.asarray(teacher_route)] = np.arange(n)
            if sample_prob > 0.0 and rng is None:
                raise ValueError("scheduled sampling requires an rng")

        for step in range(n):
            h, state = self.recurrent.step(step_input, state)
            query = concat([h, courier], axis=-1)
            mask = self._candidate_mask(visited, previous, adjacency)
            log_probs = self.attention.log_probs(nodes, query, mask)
            step_log_probs.append(log_probs)

            if teacher_route is not None:
                unvisited = np.flatnonzero(~visited)
                target = int(unvisited[np.argmin(true_rank[unvisited])])
                step_targets[step] = target
                if sample_prob > 0.0 and rng.random() < sample_prob:
                    chosen = int(np.argmax(log_probs.data))
                else:
                    chosen = target
            else:
                chosen = int(np.argmax(log_probs.data))
            route[step] = chosen
            visited[chosen] = True
            previous = chosen
            step_input = nodes[chosen]

        return RouteDecoderOutput(route=route, step_log_probs=step_log_probs,
                                  step_targets=step_targets)

    def _candidate_mask_batch(self, visited: np.ndarray,
                              previous: Optional[np.ndarray],
                              adjacency: Optional[np.ndarray]) -> np.ndarray:
        """Row-wise :meth:`_candidate_mask` over a ``(B, n)`` batch."""
        unvisited = ~visited
        if (self.restrict_to_neighbors and previous is not None
                and adjacency is not None):
            batch = visited.shape[0]
            neighbors = (np.asarray(adjacency[np.arange(batch), previous],
                                    dtype=bool) & unvisited)
            has_neighbor = neighbors.any(axis=1, keepdims=True)
            return np.where(has_neighbor, neighbors, unvisited)
        return unvisited

    def forward_batch(self, nodes: Tensor, courier: Tensor,
                      lengths: np.ndarray,
                      adjacency: Optional[np.ndarray] = None) -> np.ndarray:
        """Greedy (inference-only) batched decode.

        ``nodes`` is ``(B, n, d)`` padded node inputs, ``courier``
        ``(B, c)``, ``lengths`` the per-instance real node counts and
        ``adjacency`` the optional ``(B, n, n)`` padded connectivity.
        Returns an ``(B, n)`` int array whose row ``b`` holds the decoded
        route in its first ``lengths[b]`` entries.

        Padding nodes start out "visited" so they are never feasible;
        instances that finish early keep stepping on a dummy candidate
        whose inputs are zeroed (:func:`padded_gather`), which cannot
        affect any still-active instance.

        When gradients are disabled, decoding runs through the active
        kernel backend (:mod:`repro.kernels`): the ``reference``
        backend is the raw-numpy replica proven bit-identical to the
        Tensor path below, the ``fused`` backend decodes incrementally
        over preallocated buffers.
        """
        if not is_grad_enabled():
            from .. import kernels
            with span("kernel.pointer_decode",
                      backend=kernels.active_name(),
                      batch_size=nodes.shape[0]):
                return kernels.active().pointer_decode(
                    self, nodes.data, courier.data, lengths, adjacency)
        batch, n = nodes.shape[0], nodes.shape[1]
        lengths = np.asarray(lengths, dtype=np.int64)
        visited = np.arange(n)[None, :] >= lengths[:, None]   # padding pre-visited
        state = self.recurrent.initial_state((batch,))
        step_input: Tensor = self.start_token
        previous: Optional[np.ndarray] = None
        routes = np.zeros((batch, n), dtype=np.int64)

        for step in range(n):
            h, state = self.recurrent.step(step_input, state)
            query = concat([h, courier], axis=-1)
            feasible = self._candidate_mask_batch(visited, previous, adjacency)
            # Finished instances get a dummy candidate at index 0 so the
            # masked log-softmax stays well-defined; their argmax is the
            # dummy and the result is never read (row b is sliced to
            # lengths[b]).
            done = ~feasible.any(axis=1)
            if done.any():
                feasible = feasible.copy()
                feasible[done, 0] = True
            log_probs = self.attention.log_probs_batch(nodes, query, feasible)
            chosen = np.argmax(log_probs.data, axis=1)
            routes[:, step] = chosen
            visited[np.arange(batch), chosen] = True
            previous = chosen
            active = (step + 1 < lengths)[:, None]
            step_input = padded_gather(nodes, chosen[:, None],
                                       valid=active)[:, 0, :]

        return routes


class SortLSTM(Module):
    """RNN with a sorting function (Eqs. 32-33).

    Consumes node embeddings *sorted by a route*, concatenated with the
    positional encoding of each step, and emits one arrival-time scalar
    per step.  The returned tensor is re-scattered to node order, i.e.
    ``output[i]`` is the predicted arrival time of node ``i``.
    """

    def __init__(self, node_dim: int, state_dim: int, position_dim: int,
                 rng: np.random.Generator, cell_type: str = "lstm"):
        super().__init__()
        if position_dim < 2:
            raise ValueError("position_dim must be >= 2")
        self.position_dim = position_dim
        self.recurrent = RecurrentCell(node_dim + position_dim, state_dim,
                                       rng, cell_type)
        self.head = Linear(state_dim, 1, rng)

    def forward(self, nodes: Tensor, route: np.ndarray) -> Tensor:
        """Predict arrival times; ``route`` orders the input nodes."""
        n = nodes.shape[0]
        route = np.asarray(route, dtype=np.int64)
        if sorted(route.tolist()) != list(range(n)):
            raise ValueError("route must be a permutation of the node indices")
        state = None
        times_by_step: List[Tensor] = []
        for position, node_index in enumerate(route, start=1):
            encoding = Tensor(
                sinusoidal_position_encoding(position, self.position_dim))
            step_input = concat([nodes[int(node_index)], encoding], axis=-1)
            h, state = self.recurrent.step(step_input, state)
            times_by_step.append(self.head(h).reshape(()))
        by_step = stack(times_by_step, axis=0)
        # Scatter step-ordered times back to node order.
        inverse = np.empty(n, dtype=np.int64)
        inverse[route] = np.arange(n)
        return by_step[inverse]

    def forward_batch(self, nodes: Tensor, routes: np.ndarray,
                      lengths: np.ndarray) -> Tensor:
        """Batched :meth:`forward` over padded routes.

        ``nodes`` is ``(B, n, d)``, ``routes`` ``(B, n)`` with row ``b``
        a permutation of ``range(lengths[b])`` in its first ``lengths[b]``
        entries.  Returns ``(B, n)`` arrival times in node order;
        padding entries are exactly zero.

        When gradients are disabled, the pass runs through the active
        kernel backend (:mod:`repro.kernels`), bit-identical to the
        Tensor path below.
        """
        if not is_grad_enabled():
            from .. import kernels
            with span("kernel.sort_rnn",
                      backend=kernels.active_name(),
                      batch_size=nodes.shape[0]):
                return Tensor(kernels.active().sort_rnn_forward(
                    self, nodes.data, routes, lengths))
        batch, n = nodes.shape[0], nodes.shape[1]
        routes = np.asarray(routes, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        steps = np.arange(n)
        step_valid = steps[None, :] < lengths[:, None]        # (B, n)
        state = self.recurrent.initial_state((batch,))
        times_by_step: List[Tensor] = []
        for position in range(1, n + 1):
            step_nodes = padded_gather(
                nodes, routes[:, position - 1][:, None],
                valid=step_valid[:, position - 1][:, None])[:, 0, :]
            encoding = Tensor(np.tile(
                sinusoidal_position_encoding(position, self.position_dim),
                (batch, 1)))
            step_input = concat([step_nodes, encoding], axis=-1)
            h, state = self.recurrent.step(step_input, state)
            times_by_step.append(self.head(h).reshape(batch))
        by_step = stack(times_by_step, axis=1)                # (B, n)
        # Scatter step-ordered times back to node order per instance.
        inverse = np.zeros((batch, n), dtype=np.int64)
        row_index, step_index = np.nonzero(step_valid)
        inverse[row_index, routes[row_index, step_index]] = step_index
        # Node i is real exactly when i < lengths, the same mask as the
        # steps (real node ids are 0..lengths-1).
        return padded_gather(by_step, inverse, valid=step_valid)


def positional_guidance(route: np.ndarray, dim: int) -> np.ndarray:
    """Per-node positional encodings given a route (used as AOI guidance).

    ``result[i]`` is the encoding of node ``i``'s 1-indexed position in
    ``route`` — the ``p_aoi`` of Eq. 34.
    """
    route = np.asarray(route, dtype=np.int64)
    n = route.size
    result = np.zeros((n, dim))
    for position, node_index in enumerate(route, start=1):
        result[node_index] = sinusoidal_position_encoding(position, dim)
    return result
