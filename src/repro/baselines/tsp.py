"""Shortest-route heuristic baseline — the OR-Tools stand-in.

The paper uses Google OR-Tools as a "find the shortest route" baseline.
OR-Tools is not available offline, so we implement the same class of
heuristic from scratch: nearest-neighbour construction followed by
2-opt local search on the *open* travelling-salesman path that starts
at the courier's position.  At the paper's instance sizes (n ≤ 20) this
is near-optimal, which is all the baseline requires.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dataset import RTPDataset
from ..data.entities import RTPInstance, pairwise_distance_matrix, geo_distance_meters
from .base import (
    BaselinePrediction,
    RTPBaseline,
    estimate_effective_speed,
    route_travel_times,
)


def nearest_neighbor_path(start_costs: np.ndarray,
                          distance: np.ndarray) -> np.ndarray:
    """Greedy open-path construction from a virtual start node."""
    n = distance.shape[0]
    remaining = set(range(n))
    path = np.empty(n, dtype=np.int64)
    current = int(np.argmin(start_costs))
    path[0] = current
    remaining.remove(current)
    for step in range(1, n):
        costs = [(distance[current, j], j) for j in remaining]
        current = min(costs)[1]
        path[step] = current
        remaining.remove(current)
    return path


def path_length(path: np.ndarray, start_costs: np.ndarray,
                distance: np.ndarray) -> float:
    """Total length of an open path including the start leg."""
    total = float(start_costs[path[0]])
    for a, b in zip(path[:-1], path[1:]):
        total += float(distance[a, b])
    return total


def two_opt(path: np.ndarray, start_costs: np.ndarray, distance: np.ndarray,
            max_rounds: int = 30) -> np.ndarray:
    """2-opt local search for open paths (reverses route segments)."""
    path = path.copy()
    n = path.size
    if n < 3:
        return path
    for _ in range(max_rounds):
        improved = False
        for i in range(n - 1):
            before_i = start_costs[path[i]] if i == 0 else distance[path[i - 1], path[i]]
            for j in range(i + 1, n):
                # Reverse segment [i, j]; compute the length delta.
                new_before = (start_costs[path[j]] if i == 0
                              else distance[path[i - 1], path[j]])
                old_after = distance[path[j], path[j + 1]] if j < n - 1 else 0.0
                new_after = distance[path[i], path[j + 1]] if j < n - 1 else 0.0
                delta = (new_before + new_after) - (before_i + old_after)
                if delta < -1e-9:
                    path[i:j + 1] = path[i:j + 1][::-1]
                    improved = True
                    before_i = (start_costs[path[i]] if i == 0
                                else distance[path[i - 1], path[i]])
        if not improved:
            break
    return path


def held_karp_path(start_costs: np.ndarray, distance: np.ndarray,
                   max_nodes: int = 15) -> np.ndarray:
    """Exact open-path TSP via Held-Karp dynamic programming.

    O(n^2 2^n) — used in tests and benches to measure the heuristic's
    optimality gap; refuses instances beyond ``max_nodes``.
    """
    n = distance.shape[0]
    if n > max_nodes:
        raise ValueError(f"Held-Karp limited to {max_nodes} nodes, got {n}")
    if n == 1:
        return np.array([0], dtype=np.int64)

    full = 1 << n
    cost = np.full((full, n), np.inf)
    parent = np.full((full, n), -1, dtype=np.int64)
    for j in range(n):
        cost[1 << j, j] = start_costs[j]
    for subset in range(full):
        active = cost[subset]
        if not np.isfinite(active).any():
            continue
        for last in range(n):
            if not np.isfinite(cost[subset, last]):
                continue
            base = cost[subset, last]
            for nxt in range(n):
                if subset & (1 << nxt):
                    continue
                nxt_subset = subset | (1 << nxt)
                candidate = base + distance[last, nxt]
                if candidate < cost[nxt_subset, nxt]:
                    cost[nxt_subset, nxt] = candidate
                    parent[nxt_subset, nxt] = last

    subset = full - 1
    last = int(np.argmin(cost[subset]))
    path = [last]
    while parent[subset, last] >= 0:
        previous = int(parent[subset, last])
        subset ^= 1 << last
        last = previous
        path.append(last)
    return np.array(path[::-1], dtype=np.int64)


def or_opt(path: np.ndarray, start_costs: np.ndarray, distance: np.ndarray,
           segment_lengths=(1, 2, 3), max_rounds: int = 10) -> np.ndarray:
    """Or-opt local search: relocate short segments within the path.

    Complements 2-opt (which only reverses); together they escape more
    local minima of the open-path objective.
    """
    path = list(path)
    n = len(path)

    def length(order) -> float:
        return path_length(np.asarray(order), start_costs, distance)

    for _ in range(max_rounds):
        improved = False
        best_length = length(path)
        for seg_len in segment_lengths:
            if seg_len >= n:
                continue
            for i in range(n - seg_len + 1):
                segment = path[i:i + seg_len]
                rest = path[:i] + path[i + seg_len:]
                for j in range(len(rest) + 1):
                    if j == i:
                        continue
                    candidate = rest[:j] + segment + rest[j:]
                    candidate_length = length(candidate)
                    if candidate_length < best_length - 1e-9:
                        path = candidate
                        best_length = candidate_length
                        improved = True
        if not improved:
            break
    return np.array(path, dtype=np.int64)


class ShortestRouteTSP(RTPBaseline):
    """Nearest-neighbour + 2-opt shortest-route heuristic ("OR-Tools")."""

    name = "OR-Tools"

    def __init__(self, speed: Optional[float] = None, max_rounds: int = 30):
        self.speed = speed
        self.max_rounds = max_rounds

    def fit(self, train: RTPDataset,
            validation: Optional[RTPDataset] = None) -> "ShortestRouteTSP":
        if self.speed is None:
            self.speed = estimate_effective_speed(train)
        return self

    def solve(self, instance: RTPInstance) -> np.ndarray:
        """Return the heuristic shortest open route for an instance."""
        distance = pairwise_distance_matrix(instance.location_coords())
        start_costs = np.array([
            geo_distance_meters(*instance.courier_position, *loc.coord)
            for loc in instance.locations
        ])
        path = nearest_neighbor_path(start_costs, distance)
        return two_opt(path, start_costs, distance, self.max_rounds)

    def predict(self, instance: RTPInstance) -> BaselinePrediction:
        speed = self.speed if self.speed is not None else 150.0
        route = self.solve(instance)
        times = route_travel_times(instance, route, speed)
        return BaselinePrediction(route=route, arrival_times=times)
