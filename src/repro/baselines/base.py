"""Common interface for every route/time baseline (paper Section V-B)."""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from ..data.dataset import RTPDataset
from ..data.entities import RTPInstance


@dataclasses.dataclass
class BaselinePrediction:
    """Route permutation plus per-location arrival times (minutes)."""

    route: np.ndarray
    arrival_times: np.ndarray


class RTPBaseline:
    """A model that predicts route and arrival times for an instance.

    Subclasses implement :meth:`fit` (may be a no-op for heuristics)
    and :meth:`predict`.
    """

    name: str = "baseline"

    def fit(self, train: RTPDataset,
            validation: Optional[RTPDataset] = None) -> "RTPBaseline":
        return self

    def predict(self, instance: RTPInstance) -> BaselinePrediction:
        raise NotImplementedError

    def predict_many(self, instances: Sequence[RTPInstance]):
        return [self.predict(instance) for instance in instances]


def route_travel_times(instance: RTPInstance, route: np.ndarray,
                       speed: float, service_time: float = 0.0) -> np.ndarray:
    """Arrival times from chaining distances along ``route`` at ``speed``.

    The "fixed speed" time predictor the paper attaches to the greedy
    and OR-Tools baselines: arrival[i] is the cumulative travel (plus
    optional per-stop service time) when the courier reaches location
    ``i``.
    """
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")
    position = instance.courier_position
    clock = 0.0
    arrivals = np.zeros(instance.num_locations)
    for step, location_index in enumerate(route):
        location = instance.locations[int(location_index)]
        clock += location.distance_to(*position) / speed
        arrivals[int(location_index)] = clock
        clock += service_time
        position = location.coord
    return arrivals


def estimate_effective_speed(train: RTPDataset,
                             default: float = 150.0) -> float:
    """Effective metres/minute over the training routes.

    Total chained route distance divided by total elapsed time — this
    folds service stops into the speed, which is exactly what a single
    "fixed speed" constant can capture.
    """
    total_distance = 0.0
    total_minutes = 0.0
    for instance in train:
        position = instance.courier_position
        for location_index in instance.route:
            location = instance.locations[int(location_index)]
            total_distance += location.distance_to(*position)
            position = location.coord
        total_minutes += float(np.max(instance.arrival_times))
    if total_minutes <= 0:
        return default
    return max(total_distance / total_minutes, 1e-6)
