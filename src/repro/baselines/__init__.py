"""Baselines of Section V-B: greedy, heuristic, tree-based, deep."""

from .base import (
    BaselinePrediction,
    RTPBaseline,
    estimate_effective_speed,
    route_travel_times,
)
from .greedy import DistanceGreedy, TimeGreedy
from .tsp import (
    ShortestRouteTSP,
    held_karp_path,
    nearest_neighbor_path,
    or_opt,
    path_length,
    two_opt,
)
from .gbdt import GBDTBinaryClassifier, GBDTRegressor, RegressionTree
from .osquare import OSquare
from .deep_common import DeepBaselineConfig, DeepRouteTimeBaseline, PluginTimeHead
from .deeproute import DeepRoute
from .deepeta import DeepETA
from .fdnet import FDNET
from .graph2route import Graph2Route

__all__ = [
    "BaselinePrediction", "RTPBaseline",
    "estimate_effective_speed", "route_travel_times",
    "DistanceGreedy", "TimeGreedy",
    "ShortestRouteTSP", "nearest_neighbor_path", "two_opt", "or_opt",
    "held_karp_path", "path_length",
    "GBDTBinaryClassifier", "GBDTRegressor", "RegressionTree",
    "OSquare",
    "DeepBaselineConfig", "DeepRouteTimeBaseline", "PluginTimeHead",
    "DeepRoute", "DeepETA", "FDNET", "Graph2Route",
]
