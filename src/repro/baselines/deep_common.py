"""Shared machinery for the deep baselines (DeepRoute, FDNET, Graph2Route).

Each baseline is a *route-only* model: an encoder produces location
representations and the same masked-pointer decoder used by M²G4RTP
(Section IV-C) emits the route.  Per the paper's Section V-B, a
separate three-layer fully-connected time head is then trained on the
frozen representations ("the plugged time prediction module ... is
trained separately from the original model") — the error-accumulation
weakness the paper attributes to two-step designs is therefore
faithfully present.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autodiff import Adam, Tensor, clip_grad_norm, concat, no_grad, stack
from ..data.dataset import RTPDataset
from ..data.entities import RTPInstance
from ..graphs import GraphBuilder, MultiLevelGraph
from ..nn import FeatureEncoder, Linear, MLP, Module
from ..nn.positional import sinusoidal_position_encoding
from ..core.decoder import RouteDecoder
from .base import BaselinePrediction, RTPBaseline

_KM = 1000.0


@dataclasses.dataclass
class DeepBaselineConfig:
    """Training/shape hyper-parameters shared by the deep baselines."""

    hidden_dim: int = 32
    continuous_embed_dim: int = 16
    discrete_embed_dim: int = 8
    num_aoi_ids: int = 256
    num_aoi_types: int = 8
    position_dim: int = 8
    epochs: int = 10
    time_epochs: int = 8
    learning_rate: float = 3e-3
    grad_clip: float = 5.0
    time_scale: float = 60.0
    seed: int = 0


class LocationInputEncoder(Module):
    """Raw location features -> ``(n, hidden_dim)`` inputs (Eq. 18 style)."""

    def __init__(self, config: DeepBaselineConfig, rng: np.random.Generator):
        super().__init__()
        self.features = FeatureEncoder(
            continuous_dim=6,
            discrete_cardinalities=[config.num_aoi_ids, config.num_aoi_types],
            continuous_out=config.continuous_embed_dim,
            discrete_out=config.discrete_embed_dim,
            rng=rng,
        )
        self.proj = Linear(self.features.output_dim, config.hidden_dim, rng)

    def forward(self, graph: MultiLevelGraph) -> Tensor:
        level = graph.location
        return self.proj(self.features(Tensor(level.continuous), level.discrete))


class PluginTimeHead(Module):
    """Three-layer MLP time predictor plugged after a route model.

    Inputs per location: frozen representation, positional encoding of
    its (predicted) route position, and leg/cumulative distances.
    """

    def __init__(self, rep_dim: int, config: DeepBaselineConfig,
                 rng: np.random.Generator):
        super().__init__()
        self.position_dim = config.position_dim
        input_dim = rep_dim + config.position_dim + 3
        self.mlp = MLP([input_dim, 2 * config.hidden_dim, config.hidden_dim, 1], rng)

    def forward(self, representations: Tensor, route: np.ndarray,
                instance: RTPInstance) -> Tensor:
        """Arrival times (scaled units) in node order."""
        n = representations.shape[0]
        legs, cumulative = _route_distances(instance, route)
        outputs: List[Tensor] = []
        for position, node in enumerate(route, start=1):
            encoding = sinusoidal_position_encoding(position, self.position_dim)
            extras = np.array([
                position / n, cumulative[position - 1], legs[position - 1],
            ])
            row = concat([
                representations[int(node)], Tensor(encoding), Tensor(extras)
            ], axis=-1)
            outputs.append(self.mlp(row).reshape(()))
        by_step = stack(outputs, axis=0)
        inverse = np.empty(n, dtype=np.int64)
        inverse[np.asarray(route)] = np.arange(n)
        return by_step[inverse]


def _route_distances(instance: RTPInstance,
                     route: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Per-leg and cumulative km along a route from the courier position."""
    legs = np.zeros(len(route))
    position = instance.courier_position
    for step, node in enumerate(route):
        location = instance.locations[int(node)]
        legs[step] = location.distance_to(*position) / _KM
        position = location.coord
    return legs, np.cumsum(legs)


class DeepRouteTimeBaseline(RTPBaseline):
    """Template: encoder + pointer route decoder + separate time head.

    Subclasses override :meth:`_build_encoder` and :meth:`_encode`.
    """

    name = "deep-baseline"
    #: Whether the pointer decoder may use the location adjacency mask.
    uses_adjacency = False

    def __init__(self, config: Optional[DeepBaselineConfig] = None,
                 builder: Optional[GraphBuilder] = None):
        self.config = config or DeepBaselineConfig()
        self.builder = builder or GraphBuilder(num_aoi_ids=self.config.num_aoi_ids)
        rng = np.random.default_rng(self.config.seed)
        self.input_encoder = LocationInputEncoder(self.config, rng)
        self.encoder = self._build_encoder(rng)
        self.decoder = RouteDecoder(
            node_dim=self.config.hidden_dim, state_dim=self.config.hidden_dim,
            courier_dim=3, rng=rng, restrict_to_neighbors=False)
        self.time_head = PluginTimeHead(self.config.hidden_dim, self.config, rng)

    # -- subclass hooks -------------------------------------------------
    def _build_encoder(self, rng: np.random.Generator) -> Module:
        raise NotImplementedError

    def _encode(self, inputs: Tensor, graph: MultiLevelGraph) -> Tensor:
        raise NotImplementedError

    # -- training --------------------------------------------------------
    def _route_parameters(self):
        return (self.input_encoder.parameters() + self.encoder.parameters()
                + self.decoder.parameters())

    def fit(self, train: RTPDataset,
            validation: Optional[RTPDataset] = None) -> "DeepRouteTimeBaseline":
        cfg = self.config
        graphs = [self.builder.build(instance) for instance in train]

        # Stage 1: route model (teacher-forced cross-entropy).
        optimizer = Adam(self._route_parameters(), lr=cfg.learning_rate)
        for _ in range(cfg.epochs):
            for instance, graph in zip(train, graphs):
                optimizer.zero_grad()
                representations = self._representations(graph)
                decode = self.decoder(
                    representations, Tensor(graph.courier_profile),
                    adjacency=graph.location.adjacency if self.uses_adjacency else None,
                    teacher_route=instance.route)
                loss = stack([
                    -log_probs[int(target)]
                    for log_probs, target in zip(decode.step_log_probs,
                                                 instance.route)
                ], axis=0).mean()
                loss.backward()
                clip_grad_norm(optimizer.parameters, cfg.grad_clip)
                optimizer.step()

        # Stage 2: time head on frozen representations (two-step, as in
        # the paper's plugged module).
        time_optimizer = Adam(self.time_head.parameters(), lr=cfg.learning_rate)
        for _ in range(cfg.time_epochs):
            for instance, graph in zip(train, graphs):
                time_optimizer.zero_grad()
                with no_grad():
                    representations = self._representations(graph)
                predicted = self.time_head(
                    representations.detach(), instance.route, instance)
                target = Tensor(instance.arrival_times / cfg.time_scale)
                loss = (predicted - target).abs().mean()
                loss.backward()
                clip_grad_norm(time_optimizer.parameters, cfg.grad_clip)
                time_optimizer.step()
        return self

    def _representations(self, graph: MultiLevelGraph) -> Tensor:
        return self._encode(self.input_encoder(graph), graph)

    # -- inference --------------------------------------------------------
    def predict(self, instance: RTPInstance) -> BaselinePrediction:
        graph = self.builder.build(instance)
        with no_grad():
            representations = self._representations(graph)
            decode = self.decoder(
                representations, Tensor(graph.courier_profile),
                adjacency=graph.location.adjacency if self.uses_adjacency else None)
            times = self.time_head(representations, decode.route, instance)
        return BaselinePrediction(
            route=decode.route,
            arrival_times=times.data * self.config.time_scale,
        )
