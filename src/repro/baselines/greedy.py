"""Greedy baselines: Time-Greedy and Distance-Greedy (paper Section V-B).

* Time-Greedy orders locations by remaining time until deadline.
* Distance-Greedy chains nearest-unvisited step by step.

Both use the fixed-speed travel-time predictor for arrival times; the
speed is estimated from the training routes in :meth:`fit`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dataset import RTPDataset
from ..data.entities import RTPInstance
from .base import (
    BaselinePrediction,
    RTPBaseline,
    estimate_effective_speed,
    route_travel_times,
)


class TimeGreedy(RTPBaseline):
    """Visit locations in order of increasing deadline."""

    name = "Time-Greedy"

    def __init__(self, speed: Optional[float] = None):
        self.speed = speed

    def fit(self, train: RTPDataset,
            validation: Optional[RTPDataset] = None) -> "TimeGreedy":
        if self.speed is None:
            self.speed = estimate_effective_speed(train)
        return self

    def predict(self, instance: RTPInstance) -> BaselinePrediction:
        speed = self.speed if self.speed is not None else 150.0
        deadlines = np.array([loc.deadline for loc in instance.locations])
        route = np.argsort(deadlines, kind="stable").astype(np.int64)
        times = route_travel_times(instance, route, speed)
        return BaselinePrediction(route=route, arrival_times=times)


class DistanceGreedy(RTPBaseline):
    """Step-by-step nearest-unvisited-location route."""

    name = "Distance-Greedy"

    def __init__(self, speed: Optional[float] = None):
        self.speed = speed

    def fit(self, train: RTPDataset,
            validation: Optional[RTPDataset] = None) -> "DistanceGreedy":
        if self.speed is None:
            self.speed = estimate_effective_speed(train)
        return self

    def predict(self, instance: RTPInstance) -> BaselinePrediction:
        speed = self.speed if self.speed is not None else 150.0
        n = instance.num_locations
        remaining = set(range(n))
        position = instance.courier_position
        route = np.empty(n, dtype=np.int64)
        for step in range(n):
            best = min(
                remaining,
                key=lambda i: instance.locations[i].distance_to(*position),
            )
            route[step] = best
            remaining.remove(best)
            position = instance.locations[best].coord
        times = route_travel_times(instance, route, speed)
        return BaselinePrediction(route=route, arrival_times=times)
