"""DeepRoute baseline (Wen et al., ICDE 2021).

Transformer encoder over all unvisited locations plus an
attention-based pointer decoder — sequence-based, single level, route
only; the time head is the separately trained plug-in module.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..graphs import MultiLevelGraph
from ..nn import Module, TransformerEncoderLayer
from .deep_common import DeepBaselineConfig, DeepRouteTimeBaseline


class _TransformerStack(Module):
    def __init__(self, dim: int, num_layers: int, num_heads: int,
                 rng: np.random.Generator):
        super().__init__()
        self.layers = [
            TransformerEncoderLayer(dim, num_heads, 2 * dim, rng)
            for _ in range(num_layers)
        ]

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class DeepRoute(DeepRouteTimeBaseline):
    """Transformer encoder + pointer decoder."""

    name = "DeepRoute"

    def __init__(self, config: DeepBaselineConfig = None, builder=None,
                 num_layers: int = 2, num_heads: int = 4):
        self._num_layers = num_layers
        self._num_heads = num_heads
        super().__init__(config, builder)

    def _build_encoder(self, rng: np.random.Generator) -> Module:
        return _TransformerStack(self.config.hidden_dim, self._num_layers,
                                 self._num_heads, rng)

    def _encode(self, inputs: Tensor, graph: MultiLevelGraph) -> Tensor:
        return self.encoder(inputs)
