"""OSquare baseline (Zhang et al., 2019): tree model, one step at a time.

Route prediction: a boosted-tree classifier scores every unvisited
candidate as "is this the next location?" given the courier's current
position and the candidate's spatio-temporal features; the route is
generated recurrently by taking the top-scored candidate.  Time
prediction: a second boosted-tree regressor (trained separately, as in
the paper) maps route-position features to arrival minutes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..data.dataset import RTPDataset
from ..data.entities import RTPInstance, geo_distance_meters
from .base import BaselinePrediction, RTPBaseline
from .gbdt import GBDTBinaryClassifier, GBDTRegressor

_KM = 1000.0
_HOUR = 60.0


def _candidate_features(instance: RTPInstance, candidate: int,
                        position: Tuple[float, float], step: int,
                        remaining: int, previous_aoi: Optional[int]) -> List[float]:
    """Features describing one next-location candidate at one step."""
    location = instance.locations[candidate]
    t = instance.request_time
    return [
        location.distance_to(*position) / _KM,
        (location.deadline - t) / _HOUR,
        (t - location.accept_time) / _HOUR,
        location.distance_to(*instance.courier_position) / _KM,
        1.0 if previous_aoi is not None and location.aoi_id == previous_aoi else 0.0,
        float(step),
        float(remaining),
        float(instance.num_locations),
        instance.courier.speed / 300.0,
    ]


def _time_features(instance: RTPInstance, location_index: int, position: int,
                   cumulative_km: float, leg_km: float) -> List[float]:
    """Features for arrival-time regression of one routed location."""
    location = instance.locations[location_index]
    t = instance.request_time
    return [
        float(position),
        cumulative_km,
        leg_km,
        (location.deadline - t) / _HOUR,
        float(instance.num_locations),
        float(instance.num_aois),
        instance.courier.speed / 300.0,
        instance.courier.service_time_mean / 10.0,
        float(instance.weather),
    ]


class OSquare(RTPBaseline):
    """XGBoost-style next-location ranking plus separate time regression."""

    name = "OSquare"

    def __init__(self, n_estimators: int = 40, max_depth: int = 4,
                 learning_rate: float = 0.15, max_negatives: int = 6,
                 seed: int = 0):
        self.route_model = GBDTBinaryClassifier(
            n_estimators=n_estimators, max_depth=max_depth,
            learning_rate=learning_rate)
        self.time_model = GBDTRegressor(
            n_estimators=n_estimators, max_depth=max_depth,
            learning_rate=learning_rate)
        self.max_negatives = max_negatives
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def fit(self, train: RTPDataset,
            validation: Optional[RTPDataset] = None) -> "OSquare":
        route_rows, route_labels = [], []
        time_rows, time_targets = [], []
        for instance in train:
            position = instance.courier_position
            previous_aoi: Optional[int] = None
            unvisited = set(range(instance.num_locations))
            cumulative_km = 0.0
            for step, true_next in enumerate(instance.route):
                true_next = int(true_next)
                remaining = len(unvisited)
                # Positive example plus a sample of negatives per step.
                negatives = [c for c in unvisited if c != true_next]
                if len(negatives) > self.max_negatives:
                    negatives = list(self._rng.choice(
                        negatives, size=self.max_negatives, replace=False))
                for candidate, label in [(true_next, 1.0)] + [
                        (c, 0.0) for c in negatives]:
                    route_rows.append(_candidate_features(
                        instance, candidate, position, step, remaining,
                        previous_aoi))
                    route_labels.append(label)

                leg_km = instance.locations[true_next].distance_to(*position) / _KM
                cumulative_km += leg_km
                time_rows.append(_time_features(
                    instance, true_next, step, cumulative_km, leg_km))
                time_targets.append(float(instance.arrival_times[true_next]))

                unvisited.remove(true_next)
                previous_aoi = instance.locations[true_next].aoi_id
                position = instance.locations[true_next].coord

        self.route_model.fit(np.array(route_rows), np.array(route_labels))
        self.time_model.fit(np.array(time_rows), np.array(time_targets))
        return self

    # ------------------------------------------------------------------
    def predict(self, instance: RTPInstance) -> BaselinePrediction:
        n = instance.num_locations
        position = instance.courier_position
        previous_aoi: Optional[int] = None
        unvisited = list(range(n))
        route = np.empty(n, dtype=np.int64)
        time_rows = []
        cumulative_km = 0.0
        for step in range(n):
            rows = np.array([
                _candidate_features(instance, candidate, position, step,
                                    len(unvisited), previous_aoi)
                for candidate in unvisited
            ])
            scores = self.route_model.decision_function(rows)
            chosen = unvisited[int(np.argmax(scores))]
            route[step] = chosen

            leg_km = instance.locations[chosen].distance_to(*position) / _KM
            cumulative_km += leg_km
            time_rows.append(_time_features(
                instance, chosen, step, cumulative_km, leg_km))

            unvisited.remove(chosen)
            previous_aoi = instance.locations[chosen].aoi_id
            position = instance.locations[chosen].coord

        times_by_step = self.time_model.predict(np.array(time_rows))
        arrival_times = np.zeros(n)
        arrival_times[route] = times_by_step
        return BaselinePrediction(route=route, arrival_times=arrival_times)
