"""DeepETA-style time-only baseline (Wu & Wu, AAAI 2019).

The paper's Table I lists DeepETA as the representative *time-only*
method: recurrent cells over the route plus attention layers that
pick out the most informative steps.  It cannot produce a route, so —
as with the other route-only/time-only baselines — we compose it with a
route provider (the shortest-route heuristic by default) to participate
in joint evaluations.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..autodiff import Adam, Tensor, clip_grad_norm, concat, no_grad, stack
from ..data.dataset import RTPDataset
from ..data.entities import RTPInstance
from ..graphs import GraphBuilder
from ..nn import Linear, LSTM, Module, MultiHeadSelfAttention
from ..nn.positional import sinusoidal_position_encoding
from .base import BaselinePrediction, RTPBaseline
from .deep_common import DeepBaselineConfig, LocationInputEncoder
from .tsp import ShortestRouteTSP


class _DeepETANet(Module):
    """Recurrent + attention ETA network over a route-ordered sequence."""

    def __init__(self, config: DeepBaselineConfig, rng: np.random.Generator):
        super().__init__()
        d = config.hidden_dim
        self.position_dim = config.position_dim
        self.input_encoder = LocationInputEncoder(config, rng)
        self.recurrent = LSTM(d + config.position_dim, d, rng)
        self.attention = MultiHeadSelfAttention(d, num_heads=2, rng=rng)
        self.head = Linear(d, 1, rng)

    def forward(self, graph, route: np.ndarray) -> Tensor:
        """Per-location ETA (scaled units) in node order."""
        inputs = self.input_encoder(graph)
        n = inputs.shape[0]
        encodings = Tensor(np.stack([
            sinusoidal_position_encoding(position, self.position_dim)
            for position in range(1, n + 1)
        ]))
        ordered = concat([inputs[np.asarray(route)], encodings], axis=-1)
        states, _ = self.recurrent(ordered)
        attended = states + self.attention(states)
        by_step = self.head(attended).reshape(-1)
        inverse = np.empty(n, dtype=np.int64)
        inverse[np.asarray(route)] = np.arange(n)
        return by_step[inverse]


class DeepETA(RTPBaseline):
    """Time-only ETA model composed with a pluggable route provider."""

    name = "DeepETA"

    def __init__(self, config: Optional[DeepBaselineConfig] = None,
                 route_provider: Optional[RTPBaseline] = None,
                 builder: Optional[GraphBuilder] = None):
        self.config = config or DeepBaselineConfig()
        self.builder = builder or GraphBuilder(
            num_aoi_ids=self.config.num_aoi_ids)
        self.route_provider = route_provider or ShortestRouteTSP()
        rng = np.random.default_rng(self.config.seed)
        self.network = _DeepETANet(self.config, rng)

    def fit(self, train: RTPDataset,
            validation: Optional[RTPDataset] = None) -> "DeepETA":
        cfg = self.config
        self.route_provider.fit(train, validation)
        graphs = [self.builder.build(instance) for instance in train]
        optimizer = Adam(self.network.parameters(), lr=cfg.learning_rate)
        for _ in range(cfg.epochs):
            for instance, graph in zip(train, graphs):
                optimizer.zero_grad()
                predicted = self.network(graph, instance.route)
                target = Tensor(instance.arrival_times / cfg.time_scale)
                loss = (predicted - target).abs().mean()
                loss.backward()
                clip_grad_norm(optimizer.parameters, cfg.grad_clip)
                optimizer.step()
        return self

    def predict(self, instance: RTPInstance) -> BaselinePrediction:
        route = self.route_provider.predict(instance).route
        graph = self.builder.build(instance)
        with no_grad():
            times = self.network(graph, route)
        return BaselinePrediction(
            route=route,
            arrival_times=times.data * self.config.time_scale,
        )
