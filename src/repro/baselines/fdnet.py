"""FDNET baseline (Gao et al., KDD 2021).

LSTM-based encoder plus attention decoder, designed for food delivery
where route sizes are small.  The paper finds its RNN encoder
aggravates error accumulation at logistics scale — we reproduce the
architecture (unidirectional LSTM over the distance-ordered sequence)
and its two-step time module.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..graphs import MultiLevelGraph
from ..nn import LSTM, Module
from .deep_common import DeepBaselineConfig, DeepRouteTimeBaseline


class _LSTMEncoder(Module):
    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.lstm = LSTM(dim, dim, rng)

    def forward(self, x: Tensor, order: np.ndarray) -> Tensor:
        states, _ = self.lstm(x[order])
        inverse = np.argsort(order, kind="stable")
        return states[inverse]


class FDNET(DeepRouteTimeBaseline):
    """Unidirectional LSTM encoder + pointer decoder + two-step time MLP."""

    name = "FDNET"

    def _build_encoder(self, rng: np.random.Generator) -> Module:
        return _LSTMEncoder(self.config.hidden_dim, rng)

    def _encode(self, inputs: Tensor, graph: MultiLevelGraph) -> Tensor:
        # FDNET consumes orders in dispatch (input) order; the
        # unidirectional pass over an uninformative ordering is the
        # error-accumulation weakness the paper highlights.
        order = np.arange(graph.num_locations)
        return self.encoder(inputs, order)
