"""Gradient-boosted decision trees from scratch (the XGBoost stand-in).

The OSquare baseline is "a machine learning model, XGBoost" used once
for next-location ranking and once for time regression.  This module
implements exact-split CART regression trees plus gradient boosting
with squared loss (:class:`GBDTRegressor`) and logistic loss
(:class:`GBDTBinaryClassifier`), which is behaviourally equivalent at
the paper's data scale.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np


@dataclasses.dataclass
class _Node:
    """A tree node; leaves have ``feature == -1``."""

    feature: int = -1
    threshold: float = 0.0
    value: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


class RegressionTree:
    """CART regression tree with exact greedy splits.

    Fits first-order residuals; with ``hessians`` given, leaf values use
    the Newton step ``sum(g) / sum(h)`` (needed for logistic boosting).
    """

    def __init__(self, max_depth: int = 4, min_samples_leaf: int = 5,
                 min_gain: float = 1e-12):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self._root: Optional[_Node] = None

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, gradients: np.ndarray,
            hessians: Optional[np.ndarray] = None) -> "RegressionTree":
        features = np.asarray(features, dtype=np.float64)
        gradients = np.asarray(gradients, dtype=np.float64)
        if hessians is None:
            hessians = np.ones_like(gradients)
        if features.ndim != 2:
            raise ValueError("features must be 2-D (rows, columns)")
        if features.shape[0] != gradients.shape[0]:
            raise ValueError("features and gradients disagree on sample count")
        index = np.arange(features.shape[0])
        self._root = self._grow(features, gradients, hessians, index, depth=0)
        return self

    def _leaf_value(self, gradients: np.ndarray, hessians: np.ndarray) -> float:
        denominator = float(hessians.sum())
        if denominator <= 1e-12:
            return 0.0
        return float(gradients.sum() / denominator)

    def _grow(self, features: np.ndarray, gradients: np.ndarray,
              hessians: np.ndarray, index: np.ndarray, depth: int) -> _Node:
        node_gradients = gradients[index]
        node_hessians = hessians[index]
        leaf = _Node(value=self._leaf_value(node_gradients, node_hessians))
        if depth >= self.max_depth or index.size < 2 * self.min_samples_leaf:
            return leaf

        best_gain = self.min_gain
        best_feature, best_threshold = -1, 0.0
        total_g = node_gradients.sum()
        total_h = node_hessians.sum()
        parent_score = total_g ** 2 / max(total_h, 1e-12)

        for feature in range(features.shape[1]):
            order = np.argsort(features[index, feature], kind="stable")
            sorted_values = features[index[order], feature]
            sorted_g = node_gradients[order]
            sorted_h = node_hessians[order]
            cum_g = np.cumsum(sorted_g)
            cum_h = np.cumsum(sorted_h)
            # Candidate split after position i (left gets 0..i).
            for i in range(self.min_samples_leaf - 1,
                           index.size - self.min_samples_leaf):
                if sorted_values[i] == sorted_values[i + 1]:
                    continue
                left_g, left_h = cum_g[i], cum_h[i]
                right_g, right_h = total_g - left_g, total_h - left_h
                gain = (left_g ** 2 / max(left_h, 1e-12)
                        + right_g ** 2 / max(right_h, 1e-12)
                        - parent_score)
                if gain > best_gain:
                    best_gain = gain
                    best_feature = feature
                    best_threshold = 0.5 * (sorted_values[i] + sorted_values[i + 1])

        if best_feature < 0:
            return leaf
        goes_left = features[index, best_feature] <= best_threshold
        left_index = index[goes_left]
        right_index = index[~goes_left]
        return _Node(
            feature=best_feature,
            threshold=best_threshold,
            value=leaf.value,
            left=self._grow(features, gradients, hessians, left_index, depth + 1),
            right=self._grow(features, gradients, hessians, right_index, depth + 1),
        )

    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        features = np.asarray(features, dtype=np.float64)
        return np.array([self._predict_row(row) for row in features])

    def _predict_row(self, row: np.ndarray) -> float:
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value


class GBDTRegressor:
    """Gradient boosting with squared loss."""

    def __init__(self, n_estimators: int = 50, learning_rate: float = 0.1,
                 max_depth: int = 4, min_samples_leaf: int = 5):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._trees: List[RegressionTree] = []
        self._base: float = 0.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GBDTRegressor":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        self._base = float(targets.mean())
        prediction = np.full(targets.shape, self._base)
        self._trees = []
        for _ in range(self.n_estimators):
            residual = targets - prediction
            tree = RegressionTree(self.max_depth, self.min_samples_leaf)
            tree.fit(features, residual)
            update = tree.predict(features)
            prediction += self.learning_rate * update
            self._trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        prediction = np.full(features.shape[0], self._base)
        for tree in self._trees:
            prediction += self.learning_rate * tree.predict(features)
        return prediction


class GBDTBinaryClassifier:
    """Gradient boosting with logistic loss and Newton leaf values."""

    def __init__(self, n_estimators: int = 50, learning_rate: float = 0.1,
                 max_depth: int = 4, min_samples_leaf: int = 5):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._trees: List[RegressionTree] = []
        self._base: float = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "GBDTBinaryClassifier":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.float64)
        positive_rate = float(np.clip(labels.mean(), 1e-6, 1 - 1e-6))
        self._base = float(np.log(positive_rate / (1.0 - positive_rate)))
        raw = np.full(labels.shape, self._base)
        self._trees = []
        for _ in range(self.n_estimators):
            probability = 1.0 / (1.0 + np.exp(-raw))
            gradient = labels - probability
            hessian = probability * (1.0 - probability)
            tree = RegressionTree(self.max_depth, self.min_samples_leaf)
            tree.fit(features, gradient, hessian)
            raw += self.learning_rate * tree.predict(features)
            self._trees.append(tree)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        raw = np.full(features.shape[0], self._base)
        for tree in self._trees:
            raw += self.learning_rate * tree.predict(features)
        return raw

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-self.decision_function(features)))
