"""Graph2Route baseline (Wen et al., KDD 2022).

GCN encoder over the single-level location graph plus the attention
pointer decoder.  Graph-based like M²G4RTP but without the AOI level,
without edge-feature attention, and route-only (time is the plug-in
head).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..graphs import MultiLevelGraph
from ..nn import GCN, Module
from .deep_common import DeepBaselineConfig, DeepRouteTimeBaseline


class Graph2Route(DeepRouteTimeBaseline):
    """GCN encoder + pointer decoder."""

    name = "Graph2Route"
    uses_adjacency = True

    def __init__(self, config: DeepBaselineConfig = None, builder=None,
                 num_layers: int = 2):
        self._num_layers = num_layers
        super().__init__(config, builder)

    def _build_encoder(self, rng: np.random.Generator) -> Module:
        return GCN(self.config.hidden_dim, self.config.hidden_dim,
                   self._num_layers, rng)

    def _encode(self, inputs: Tensor, graph: MultiLevelGraph) -> Tensor:
        return self.encoder(inputs, graph.location.adjacency)
