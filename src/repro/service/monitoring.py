"""Operational monitoring for the RTP service.

A production RTP service (paper Section VI: "hundreds of thousands of
queries per day") needs observability.  :class:`ServiceMonitor` wraps
an :class:`~repro.service.rtp_service.RTPService` and maintains
latency histograms, throughput counters and error accounting, rendered
in a Prometheus-exposition-like text format.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional

import numpy as np

from .request import RTPRequest
from .rtp_service import RTPResponse, RTPService

#: Latency histogram bucket upper bounds (milliseconds).
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, float("inf"))


@dataclasses.dataclass
class ServiceStats:
    """A snapshot of the monitor's counters."""

    queries: int
    errors: int
    mean_latency_ms: float
    p50_latency_ms: float
    p95_latency_ms: float
    max_latency_ms: float
    mean_route_length: float
    # Build-vs-infer split of the latency (graph building vs model
    # forward) plus the service's graph-cache counters.
    mean_build_ms: float = 0.0
    mean_infer_ms: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0


class ServiceMonitor:
    """Wraps a service; every ``handle`` is timed and counted."""

    def __init__(self, service: RTPService,
                 buckets=DEFAULT_BUCKETS):
        if list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted")
        self.service = service
        self.buckets = tuple(buckets)
        self._bucket_counts = [0] * len(self.buckets)
        self._latencies: List[float] = []
        self._build_times: List[float] = []
        self._infer_times: List[float] = []
        self._route_lengths: List[int] = []
        self._errors = 0

    # ------------------------------------------------------------------
    def handle(self, request: RTPRequest) -> RTPResponse:
        start = time.perf_counter()
        try:
            response = self.service.handle(request)
        except Exception:
            self._errors += 1
            raise
        latency = (time.perf_counter() - start) * 1000.0
        self._observe(latency, len(response.route), response)
        return response

    def handle_batch(self, requests) -> List[RTPResponse]:
        """Timed batched handling; every member is counted individually."""
        start = time.perf_counter()
        try:
            responses = self.service.handle_batch(requests)
        except Exception:
            self._errors += 1
            raise
        elapsed = (time.perf_counter() - start) * 1000.0
        per_request = elapsed / len(responses) if responses else 0.0
        for response in responses:
            self._observe(per_request, len(response.route), response)
        return responses

    def _observe(self, latency_ms: float, route_length: int,
                 response: Optional[RTPResponse] = None) -> None:
        self._latencies.append(latency_ms)
        self._route_lengths.append(route_length)
        if response is not None:
            self._build_times.append(response.build_ms)
            self._infer_times.append(response.infer_ms)
        for index, bound in enumerate(self.buckets):
            if latency_ms <= bound:
                self._bucket_counts[index] += 1
                break

    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        cache_hits = getattr(self.service, "cache_hits", 0)
        cache_misses = getattr(self.service, "cache_misses", 0)
        if not self._latencies:
            return ServiceStats(queries=0, errors=self._errors,
                                mean_latency_ms=0.0, p50_latency_ms=0.0,
                                p95_latency_ms=0.0, max_latency_ms=0.0,
                                mean_route_length=0.0,
                                cache_hits=cache_hits,
                                cache_misses=cache_misses)
        latencies = np.asarray(self._latencies)
        return ServiceStats(
            queries=latencies.size,
            errors=self._errors,
            mean_latency_ms=float(latencies.mean()),
            p50_latency_ms=float(np.percentile(latencies, 50)),
            p95_latency_ms=float(np.percentile(latencies, 95)),
            max_latency_ms=float(latencies.max()),
            mean_route_length=float(np.mean(self._route_lengths)),
            mean_build_ms=(float(np.mean(self._build_times))
                           if self._build_times else 0.0),
            mean_infer_ms=(float(np.mean(self._infer_times))
                           if self._infer_times else 0.0),
            cache_hits=cache_hits,
            cache_misses=cache_misses,
        )

    def render_metrics(self) -> str:
        """Prometheus-exposition-style text of the counters."""
        stats = self.stats()
        lines = [
            "# TYPE rtp_queries_total counter",
            f"rtp_queries_total {stats.queries}",
            "# TYPE rtp_errors_total counter",
            f"rtp_errors_total {stats.errors}",
            "# TYPE rtp_latency_ms histogram",
        ]
        cumulative = 0
        for bound, count in zip(self.buckets, self._bucket_counts):
            cumulative += count
            label = "+Inf" if bound == float("inf") else f"{bound:g}"
            lines.append(f'rtp_latency_ms_bucket{{le="{label}"}} {cumulative}')
        lines.append(f"rtp_latency_ms_sum {sum(self._latencies):.3f}")
        lines.append(f"rtp_latency_ms_count {stats.queries}")
        lines.extend([
            "# TYPE rtp_build_ms summary",
            f"rtp_build_ms_sum {sum(self._build_times):.3f}",
            f"rtp_build_ms_count {len(self._build_times)}",
            "# TYPE rtp_infer_ms summary",
            f"rtp_infer_ms_sum {sum(self._infer_times):.3f}",
            f"rtp_infer_ms_count {len(self._infer_times)}",
            "# TYPE rtp_cache_hits_total counter",
            f"rtp_cache_hits_total {stats.cache_hits}",
            "# TYPE rtp_cache_misses_total counter",
            f"rtp_cache_misses_total {stats.cache_misses}",
        ])
        return "\n".join(lines)

    def reset(self) -> None:
        self._bucket_counts = [0] * len(self.buckets)
        self._latencies.clear()
        self._build_times.clear()
        self._infer_times.clear()
        self._route_lengths.clear()
        self._errors = 0
