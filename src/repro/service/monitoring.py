"""Operational monitoring for the RTP service.

A production RTP service (paper Section VI: "hundreds of thousands of
queries per day") needs observability.  :class:`ServiceMonitor` wraps
an :class:`~repro.service.rtp_service.RTPService` and emits every
counter through a shared :class:`~repro.obs.metrics.MetricsRegistry` —
the same registry family used by the trainer's telemetry and the
autodiff op profiler — rendered in Prometheus exposition format by
:meth:`ServiceMonitor.render_metrics`.

Exposed series: request/error totals, a latency histogram, build/infer
summaries, a per-flush batch-size histogram, a route-length summary and
the service's graph-cache counters.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional

import numpy as np

from ..obs.metrics import MetricsRegistry
from .request import RTPRequest
from .rtp_service import RTPResponse, RTPService

#: Latency histogram bucket upper bounds (milliseconds).
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, float("inf"))

#: Batch-size histogram bucket upper bounds (requests per flush).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, float("inf"))


@dataclasses.dataclass
class ServiceStats:
    """A snapshot of the monitor's counters."""

    queries: int
    errors: int
    mean_latency_ms: float
    p50_latency_ms: float
    p95_latency_ms: float
    max_latency_ms: float
    mean_route_length: float
    # Build-vs-infer split of the latency (graph building vs model
    # forward) plus the service's graph-cache counters.
    mean_build_ms: float = 0.0
    mean_infer_ms: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0


class ServiceMonitor:
    """Wraps a service; every ``handle`` is timed and counted.

    Parameters
    ----------
    registry:
        Metrics registry to emit through.  Pass a shared registry to
        combine service metrics with trainer telemetry and op-profiler
        output in one exposition; by default the monitor owns a fresh
        one (exposed as :attr:`registry`).
    """

    def __init__(self, service: RTPService,
                 buckets=DEFAULT_BUCKETS,
                 registry: Optional[MetricsRegistry] = None):
        if list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted")
        self.service = service
        self.buckets = tuple(buckets)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._queries = self.registry.counter(
            "rtp_queries_total", "Requests handled")
        self._errors = self.registry.counter(
            "rtp_errors_total", "Requests that raised (per enqueued request)")
        # Exemplars: when tracing is on, tail observations keep the
        # trace id of the request that produced them (auto-captured
        # from the active span at observe time).
        self._latency = self.registry.histogram(
            "rtp_latency_ms", "End-to-end request latency",
            buckets=self.buckets, exemplars=8)
        self._build = self.registry.summary(
            "rtp_build_ms", "Graph-building (feature extraction) time")
        self._infer = self.registry.summary(
            "rtp_infer_ms", "Model forward time (amortised for batches)")
        self._route_length = self.registry.summary(
            "rtp_route_length", "Locations per predicted route")
        self._batch_size = self.registry.histogram(
            "rtp_batch_size", "Requests per handle_batch flush",
            buckets=BATCH_SIZE_BUCKETS)
        self._cache_hits = self.registry.gauge(
            "rtp_cache_hits_total", "Graph-cache hits")
        self._cache_misses = self.registry.gauge(
            "rtp_cache_misses_total", "Graph-cache misses")
        self._degraded = self.registry.counter(
            "rtp_degraded_responses_total",
            "Responses served by the degraded fallback path")
        # Export the service's GraphCache counters (hits/misses/
        # evictions/size) as rtp_graph_cache_* through this registry.
        cache = getattr(service, "cache", None)
        if cache is not None and hasattr(cache, "bind_registry"):
            cache.bind_registry(self.registry)
        # Raw latency samples kept for the percentile fields of
        # stats(); the registry holds only bucketed/summed forms.
        self._latencies: List[float] = []
        self._build_times: List[float] = []
        self._infer_times: List[float] = []
        self._route_lengths: List[int] = []

    # ------------------------------------------------------------------
    def handle(self, request: RTPRequest) -> RTPResponse:
        start = time.perf_counter()
        try:
            response = self.service.handle(request)
        except Exception:
            self._errors.inc()
            raise
        latency = (time.perf_counter() - start) * 1000.0
        self._observe(latency, len(response.route), response)
        return response

    def handle_batch(self, requests) -> List[RTPResponse]:
        """Timed batched handling; every member is counted individually.

        A failed batch fails every request in it, so the error counter
        advances by the number of enqueued requests, not by one.
        """
        start = time.perf_counter()
        try:
            responses = self.service.handle_batch(requests)
        except Exception:
            self._errors.inc(len(requests))
            raise
        elapsed = (time.perf_counter() - start) * 1000.0
        per_request = elapsed / len(responses) if responses else 0.0
        self._batch_size.observe(len(requests))
        for response in responses:
            self._observe(per_request, len(response.route), response)
        return responses

    def _observe(self, latency_ms: float, route_length: int,
                 response: Optional[RTPResponse] = None) -> None:
        self._latencies.append(latency_ms)
        self._route_lengths.append(route_length)
        self._queries.inc()
        self._latency.observe(latency_ms)
        self._route_length.observe(route_length)
        if response is not None:
            self._build_times.append(response.build_ms)
            self._infer_times.append(response.infer_ms)
            self._build.observe(response.build_ms)
            self._infer.observe(response.infer_ms)
            if getattr(response, "degraded", False):
                self._degraded.inc()

    def _sync_cache_counters(self) -> None:
        self._cache_hits.set(getattr(self.service, "cache_hits", 0))
        self._cache_misses.set(getattr(self.service, "cache_misses", 0))

    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        cache_hits = getattr(self.service, "cache_hits", 0)
        cache_misses = getattr(self.service, "cache_misses", 0)
        errors = int(self._errors.value)
        if not self._latencies:
            return ServiceStats(queries=0, errors=errors,
                                mean_latency_ms=0.0, p50_latency_ms=0.0,
                                p95_latency_ms=0.0, max_latency_ms=0.0,
                                mean_route_length=0.0,
                                cache_hits=cache_hits,
                                cache_misses=cache_misses)
        latencies = np.asarray(self._latencies)
        return ServiceStats(
            queries=latencies.size,
            errors=errors,
            mean_latency_ms=float(latencies.mean()),
            p50_latency_ms=float(np.percentile(latencies, 50)),
            p95_latency_ms=float(np.percentile(latencies, 95)),
            max_latency_ms=float(latencies.max()),
            mean_route_length=float(np.mean(self._route_lengths)),
            mean_build_ms=(float(np.mean(self._build_times))
                           if self._build_times else 0.0),
            mean_infer_ms=(float(np.mean(self._infer_times))
                           if self._infer_times else 0.0),
            cache_hits=cache_hits,
            cache_misses=cache_misses,
        )

    def render_metrics(self) -> str:
        """Prometheus-exposition text of the shared registry."""
        self._sync_cache_counters()
        return self.registry.render()

    def reset(self) -> None:
        self._latencies.clear()
        self._build_times.clear()
        self._infer_times.clear()
        self._route_lengths.clear()
        self.registry.reset()
