"""Online RTP request shape (paper Section VI, Feature Extraction Layer).

An :class:`RTPRequest` is what the deployed system receives: a courier,
their position, the unvisited locations/AOIs and global context — no
labels.  It is duck-type compatible with the attributes
:class:`~repro.graphs.GraphBuilder` reads, so the same feature pipeline
serves both offline training and online inference.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from ..data.entities import AOI, Courier, Location, RTPInstance


@dataclasses.dataclass
class RTPRequest:
    """A prediction query ``q = (u, t, x^g, V^l)`` (paper Section III-B)."""

    courier: Courier
    request_time: float
    courier_position: Tuple[float, float]
    locations: List[Location]
    aois: List[AOI]
    weather: int = 0
    weekday: int = 0

    def __post_init__(self) -> None:
        if not self.locations:
            raise ValueError("request has no locations")
        aoi_ids = {aoi.aoi_id for aoi in self.aois}
        for location in self.locations:
            if location.aoi_id not in aoi_ids:
                raise ValueError(
                    f"location {location.location_id} references AOI "
                    f"{location.aoi_id} that is not in the request")

    # -- GraphBuilder duck-type surface ---------------------------------
    @property
    def num_locations(self) -> int:
        return len(self.locations)

    @property
    def num_aois(self) -> int:
        return len(self.aois)

    def location_coords(self) -> np.ndarray:
        return np.array([loc.coord for loc in self.locations])

    def aoi_coords(self) -> np.ndarray:
        return np.array([aoi.center for aoi in self.aois])

    def aoi_index_of_location(self) -> np.ndarray:
        by_id: Dict[int, int] = {aoi.aoi_id: i for i, aoi in enumerate(self.aois)}
        return np.array([by_id[loc.aoi_id] for loc in self.locations],
                        dtype=np.int64)

    # -- constructors -----------------------------------------------------
    @staticmethod
    def from_instance(instance: RTPInstance) -> "RTPRequest":
        """Strip the labels off an offline instance (for replay tests)."""
        return RTPRequest(
            courier=instance.courier,
            request_time=instance.request_time,
            courier_position=instance.courier_position,
            locations=list(instance.locations),
            aois=list(instance.aois),
            weather=instance.weather,
            weekday=instance.weekday,
        )
