"""Serving-side batching utilities: graph cache and micro-batching queue.

Two throughput levers for the deployed service (paper Section VI,
"hundreds of thousands of queries per day"):

* :class:`GraphCache` — an LRU cache of built
  :class:`~repro.graphs.MultiLevelGraph` features keyed by a request
  fingerprint.  Couriers poll the service while standing still, so the
  exact same query recurs within seconds; caching skips the feature
  extraction layer entirely.
* :class:`MicroBatcher` — collects incoming requests into a queue and
  flushes them through :meth:`RTPService.handle_batch` when either
  ``max_batch_size`` requests are waiting or the oldest one has waited
  ``max_wait_ms``.  The clock is injectable so tests control time.
"""

from __future__ import annotations

import collections
import hashlib
import struct
import time
from typing import Callable, List, Optional, Tuple

from ..obs import tracing
from ..obs.propagate import current_context
from .request import RTPRequest


def request_fingerprint(request: RTPRequest) -> str:
    """Deterministic content hash of everything the graph builder reads.

    Two requests with equal fingerprints build bit-identical graphs, so
    a cached graph can be substituted without changing any prediction.
    """
    digest = hashlib.sha256()

    def put_floats(*values: float) -> None:
        digest.update(struct.pack(f"<{len(values)}d", *values))

    def put_ints(*values: int) -> None:
        digest.update(struct.pack(f"<{len(values)}q", *values))

    courier = request.courier
    put_ints(courier.courier_id, request.weather, request.weekday)
    put_floats(courier.speed, courier.working_hours, courier.attendance_rate,
               request.request_time,
               request.courier_position[0], request.courier_position[1])
    put_ints(len(request.locations), len(request.aois))
    for location in request.locations:
        put_ints(location.location_id, location.aoi_id)
        put_floats(location.coord[0], location.coord[1],
                   location.accept_time, location.deadline)
    for aoi in request.aois:
        put_ints(aoi.aoi_id, aoi.aoi_type)
        put_floats(aoi.center[0], aoi.center[1])
    return digest.hexdigest()


class GraphCache:
    """LRU cache for built graphs with hit/miss/eviction accounting.

    The counts live on the instance (``hits``/``misses``/``evictions``)
    and, once :meth:`bind_registry` is called, are also exported through
    a shared :class:`~repro.obs.metrics.MetricsRegistry` as the
    ``rtp_graph_cache_*`` counters of the Prometheus exposition.
    """

    def __init__(self, max_size: int):
        if max_size < 1:
            raise ValueError("cache max_size must be >= 1")
        self.max_size = max_size
        self._entries: "collections.OrderedDict[str, object]" = (
            collections.OrderedDict())
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._metric_hits = None
        self._metric_misses = None
        self._metric_evictions = None
        self._metric_size = None

    def bind_registry(self, registry) -> None:
        """Export the counters as ``rtp_graph_cache_*`` instruments.

        Counts accumulated before binding are carried over, so the
        exposition agrees with the instance attributes at all times.
        """
        self._metric_hits = registry.counter(
            "rtp_graph_cache_hits_total", "Graph-cache lookups served")
        self._metric_misses = registry.counter(
            "rtp_graph_cache_misses_total", "Graph-cache lookups missed")
        self._metric_evictions = registry.counter(
            "rtp_graph_cache_evictions_total", "Graph-cache LRU evictions")
        self._metric_size = registry.gauge(
            "rtp_graph_cache_size", "Graphs currently cached")
        self._metric_hits.inc(self.hits)
        self._metric_misses.inc(self.misses)
        self._metric_evictions.inc(self.evictions)
        self._metric_size.set(len(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str):
        """Return the cached value or ``None``; touches LRU order on hit."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            if self._metric_hits is not None:
                self._metric_hits.inc()
            return self._entries[key]
        self.misses += 1
        if self._metric_misses is not None:
            self._metric_misses.inc()
        return None

    def put(self, key: str, value) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.max_size:
            self._entries.popitem(last=False)
            self.evictions += 1
            if self._metric_evictions is not None:
                self._metric_evictions.inc()
        if self._metric_size is not None:
            self._metric_size.set(len(self._entries))

    def keys(self) -> List[str]:
        """Keys in eviction order (least recently used first)."""
        return list(self._entries.keys())

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if self._metric_size is not None:
            self._metric_size.set(0)


class BatchTicket:
    """Handle for one queued request; resolved when its batch flushes.

    ``trace_ctx`` snapshots the submitter's span context (when tracing
    is on): the flush may run on another thread or much later, so the
    batching hop is stitched back under the submitting trace from this
    captured identity, not from whatever span is active at flush time.
    """

    __slots__ = ("request", "enqueued_at", "trace_ctx", "_response")

    def __init__(self, request: RTPRequest, enqueued_at: float):
        self.request = request
        self.enqueued_at = enqueued_at
        self.trace_ctx = current_context()
        self._response = None

    @property
    def done(self) -> bool:
        return self._response is not None

    def result(self):
        if self._response is None:
            raise RuntimeError("batch has not been flushed yet")
        return self._response


class MicroBatcher:
    """Synchronous micro-batching front of an :class:`RTPService`.

    ``submit`` enqueues a request and flushes immediately once
    ``max_batch_size`` requests are waiting.  ``poll`` flushes when the
    oldest queued request has waited at least ``max_wait_ms`` (the
    latency bound); on an empty queue it is a no-op.  ``clock`` returns
    seconds and defaults to ``time.monotonic``.
    """

    def __init__(self, service, max_batch_size: int = 8,
                 max_wait_ms: float = 10.0,
                 clock: Callable[[], float] = time.monotonic):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self.service = service
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.clock = clock
        self._queue: List[BatchTicket] = []
        self.batches_flushed = 0
        self.requests_flushed = 0

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        return len(self._queue)

    def submit(self, request: RTPRequest) -> BatchTicket:
        """Queue one request; flush if the batch is now full."""
        ticket = BatchTicket(request, self.clock())
        self._queue.append(ticket)
        if len(self._queue) >= self.max_batch_size:
            self.flush()
        return ticket

    def poll(self) -> int:
        """Flush if the oldest request has aged out; returns #flushed."""
        if not self._queue:
            return 0
        waited_ms = (self.clock() - self._queue[0].enqueued_at) * 1000.0
        if waited_ms >= self.max_wait_ms:
            return self.flush()
        return 0

    def flush(self) -> int:
        """Run every queued request through one batched call."""
        if not self._queue:
            return 0
        tickets, self._queue = self._queue, []
        flushed_at = self.clock()
        with tracing.span("rtp.batch.flush", batch=len(tickets)) \
                as flush_span:
            responses = self.service.handle_batch(
                [t.request for t in tickets])
        for ticket, response in zip(tickets, responses):
            ticket._response = response
        self._stitch_hops(tickets, flush_span, flushed_at)
        self.batches_flushed += 1
        self.requests_flushed += len(tickets)
        return len(tickets)

    def _stitch_hops(self, tickets, flush_span, flushed_at: float) -> None:
        """Graft a ``service.batch.hop`` span into each submitter's trace.

        The flush serves requests from many traces at once, so one
        span cannot be a child of all of them; instead every submitting
        trace receives a frozen hop span (duration = its queue wait)
        that points at the shared flush span, and the flush span lists
        the traces it served.
        """
        if flush_span.trace_id is None:
            return
        collector = tracing.get_collector()
        if collector is None:
            return
        linked = []
        for ticket in tickets:
            if ticket.trace_ctx is None:
                continue
            wait_ms = max(flushed_at - ticket.enqueued_at, 0.0) * 1000.0
            hop = tracing.Span("service.batch.hop", {
                "wait_ms": round(wait_ms, 3),
                "flush_span": flush_span.span_id,
            })
            hop.freeze(wait_ms)
            collector.attach(hop, parent_id=ticket.trace_ctx.span_id)
            linked.append(ticket.trace_ctx.trace_id)
        if linked:
            flush_span.attrs["linked_traces"] = linked
