"""Deployment-style inference service and applications (Section VI)."""

from .request import RTPRequest
from .rtp_service import (
    ETAEntry,
    ETAService,
    OrderSortingService,
    RTPResponse,
    RTPService,
    SortedOrder,
)
from .batching import (
    BatchTicket,
    GraphCache,
    MicroBatcher,
    request_fingerprint,
)
from .monitoring import ServiceMonitor, ServiceStats, DEFAULT_BUCKETS

__all__ = [
    "RTPRequest",
    "RTPService", "RTPResponse",
    "OrderSortingService", "SortedOrder",
    "ETAService", "ETAEntry",
    "BatchTicket", "GraphCache", "MicroBatcher", "request_fingerprint",
    "ServiceMonitor", "ServiceStats", "DEFAULT_BUCKETS",
]
