"""In-process reproduction of the deployed M²G4RTP service (Section VI).

Pipeline per request: feature extraction (graph building) → model
inference → application responses.  The two deployed applications sit
on top:

* :class:`OrderSortingService` — Intelligent Order Sorting (VI-B):
  ranks the courier's unpicked orders by the predicted route.
* :class:`ETAService` — Minute-Level ETA (VI-C): per-location ETAs and
  "courier is arriving soon" push notifications ahead of arrival.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.batching import BatchedM2G4RTP
from ..core.model import M2G4RTP, M2G4RTPOutput
from ..graphs import GraphBuilder, MultiLevelGraph
from ..obs.tracing import span
from .batching import GraphCache, request_fingerprint
from .request import RTPRequest


@dataclasses.dataclass
class RTPResponse:
    """Route + per-location ETA prediction for one request.

    ``latency_ms`` is split into its two pipeline stages:
    ``build_ms`` (feature extraction / graph building, ~0 on a cache
    hit) and ``infer_ms`` (model forward; for batched handling, the
    batch's inference time amortised over its members).  The stages sum
    to ``latency_ms`` exactly.

    ``degraded`` marks a response produced by the cheap fallback path
    of the resilience layer (:mod:`repro.deploy`) instead of the model
    — still a valid route and ETA vector, flagged so clients and
    monitoring can tell; ``degraded_reason`` names the trigger
    (``breaker_open``/``deadline``/``shed``/``error``).
    ``model_version`` carries the registry version that served the
    request when the service runs under the deployment controller.
    """

    route: np.ndarray
    eta_minutes: np.ndarray
    aoi_route: Optional[np.ndarray]
    aoi_eta_minutes: Optional[np.ndarray]
    latency_ms: float
    build_ms: float = 0.0
    infer_ms: float = 0.0
    cache_hit: bool = False
    batch_size: int = 1
    degraded: bool = False
    degraded_reason: str = ""
    model_version: str = ""


class RTPService:
    """Wraps a trained model behind the online request shape.

    Parameters
    ----------
    cache_size:
        When positive, built graphs are memoised in an LRU cache keyed
        by the request's content fingerprint, skipping feature
        extraction for repeated queries.  ``0`` disables caching; the
        predictions are identical either way.
    """

    def __init__(self, model: M2G4RTP, builder: Optional[GraphBuilder] = None,
                 cache_size: int = 0):
        self.model = model
        self.builder = builder or GraphBuilder(
            num_aoi_ids=model.config.num_aoi_ids)
        self.engine = BatchedM2G4RTP(model)
        self.cache = GraphCache(cache_size) if cache_size > 0 else None
        self._queries_served = 0

    # ------------------------------------------------------------------
    def _build_graph(self, request: RTPRequest) -> Tuple[MultiLevelGraph, bool]:
        """Build (or fetch) the graph; returns (graph, cache_hit)."""
        if self.cache is None:
            return self.builder.build(request), False
        key = request_fingerprint(request)
        graph = self.cache.get(key)
        if graph is not None:
            return graph, True
        graph = self.builder.build(request)
        self.cache.put(key, graph)
        return graph, False

    @staticmethod
    def _response(output: M2G4RTPOutput, build_ms: float, infer_ms: float,
                  cache_hit: bool, batch_size: int) -> RTPResponse:
        return RTPResponse(
            route=output.route,
            eta_minutes=output.arrival_times,
            aoi_route=output.aoi_route,
            aoi_eta_minutes=output.aoi_arrival_times,
            latency_ms=build_ms + infer_ms,
            build_ms=build_ms,
            infer_ms=infer_ms,
            cache_hit=cache_hit,
            batch_size=batch_size,
        )

    # ------------------------------------------------------------------
    def handle(self, request: RTPRequest) -> RTPResponse:
        with span("rtp.request") as request_span:
            start = time.perf_counter()
            with span("graph_build"):
                graph, cache_hit = self._build_graph(request)
            built = time.perf_counter()
            with span("infer"):
                output = self.model.predict(graph)
            done = time.perf_counter()
            request_span.set_attr("num_locations", request.num_locations)
            request_span.set_attr("cache_hit", cache_hit)
        self._queries_served += 1
        return self._response(
            output,
            build_ms=(built - start) * 1000.0,
            infer_ms=(done - built) * 1000.0,
            cache_hit=cache_hit,
            batch_size=1,
        )

    def handle_batch(self, requests: Sequence[RTPRequest]) -> List[RTPResponse]:
        """Answer many requests with one padded batched forward pass.

        Per-request ``infer_ms`` is the batch inference time divided by
        the batch size (the throughput-relevant amortised cost);
        ``build_ms`` is each request's own graph-building time.
        """
        if not requests:
            return []
        build_times: List[float] = []
        cache_hits: List[bool] = []
        graphs: List[MultiLevelGraph] = []
        with span("rtp.batch", batch_size=len(requests)):
            for request in requests:
                start = time.perf_counter()
                with span("graph_build"):
                    graph, cache_hit = self._build_graph(request)
                build_times.append((time.perf_counter() - start) * 1000.0)
                cache_hits.append(cache_hit)
                graphs.append(graph)

            infer_start = time.perf_counter()
            with span("infer"):
                outputs = self.engine.predict(graphs)
            amortised_infer = ((time.perf_counter() - infer_start) * 1000.0
                               / len(requests))
        self._queries_served += len(requests)
        return [
            self._response(output, build_ms=build_ms,
                           infer_ms=amortised_infer, cache_hit=cache_hit,
                           batch_size=len(requests))
            for output, build_ms, cache_hit
            in zip(outputs, build_times, cache_hits)
        ]

    # ------------------------------------------------------------------
    @property
    def queries_served(self) -> int:
        return self._queries_served

    @property
    def cache_hits(self) -> int:
        return self.cache.hits if self.cache is not None else 0

    @property
    def cache_misses(self) -> int:
        return self.cache.misses if self.cache is not None else 0


@dataclasses.dataclass
class SortedOrder:
    """One entry of the intelligent order list (VI-B)."""

    position: int
    location_id: int
    aoi_id: int
    eta_minutes: float
    deadline_minutes: float


class OrderSortingService:
    """Ranks unpicked orders by the predicted visit route (VI-B)."""

    def __init__(self, service: RTPService):
        self.service = service

    def sort_orders(self, request: RTPRequest) -> List[SortedOrder]:
        response = self.service.handle(request)
        entries = []
        for position, location_index in enumerate(response.route, start=1):
            location = request.locations[int(location_index)]
            entries.append(SortedOrder(
                position=position,
                location_id=location.location_id,
                aoi_id=location.aoi_id,
                eta_minutes=float(response.eta_minutes[int(location_index)]),
                deadline_minutes=location.deadline - request.request_time,
            ))
        return entries


@dataclasses.dataclass
class ETAEntry:
    """Minute-level ETA for one location (VI-C)."""

    location_id: int
    eta_minutes: float
    notify_at_minutes: float
    overdue_risk: bool


class ETAService:
    """Minute-level ETA plus ahead-of-arrival notification times (VI-C)."""

    def __init__(self, service: RTPService, notify_ahead_minutes: float = 10.0):
        if notify_ahead_minutes < 0:
            raise ValueError("notify_ahead_minutes must be non-negative")
        self.service = service
        self.notify_ahead_minutes = notify_ahead_minutes

    def etas(self, request: RTPRequest) -> List[ETAEntry]:
        response = self.service.handle(request)
        entries = []
        for location_index, location in enumerate(request.locations):
            eta = float(response.eta_minutes[location_index])
            deadline_gap = location.deadline - request.request_time
            entries.append(ETAEntry(
                location_id=location.location_id,
                eta_minutes=eta,
                notify_at_minutes=max(eta - self.notify_ahead_minutes, 0.0),
                overdue_risk=eta > deadline_gap,
            ))
        return entries
