"""In-process reproduction of the deployed M²G4RTP service (Section VI).

Pipeline per request: feature extraction (graph building) → model
inference → application responses.  The two deployed applications sit
on top:

* :class:`OrderSortingService` — Intelligent Order Sorting (VI-B):
  ranks the courier's unpicked orders by the predicted route.
* :class:`ETAService` — Minute-Level ETA (VI-C): per-location ETAs and
  "courier is arriving soon" push notifications ahead of arrival.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.model import M2G4RTP
from ..graphs import GraphBuilder
from .request import RTPRequest


@dataclasses.dataclass
class RTPResponse:
    """Route + per-location ETA prediction for one request."""

    route: np.ndarray
    eta_minutes: np.ndarray
    aoi_route: Optional[np.ndarray]
    aoi_eta_minutes: Optional[np.ndarray]
    latency_ms: float


class RTPService:
    """Wraps a trained model behind the online request shape."""

    def __init__(self, model: M2G4RTP, builder: Optional[GraphBuilder] = None):
        self.model = model
        self.builder = builder or GraphBuilder(
            num_aoi_ids=model.config.num_aoi_ids)
        self._queries_served = 0

    def handle(self, request: RTPRequest) -> RTPResponse:
        start = time.perf_counter()
        graph = self.builder.build(request)
        output = self.model.predict(graph)
        latency = (time.perf_counter() - start) * 1000.0
        self._queries_served += 1
        return RTPResponse(
            route=output.route,
            eta_minutes=output.arrival_times,
            aoi_route=output.aoi_route,
            aoi_eta_minutes=output.aoi_arrival_times,
            latency_ms=latency,
        )

    @property
    def queries_served(self) -> int:
        return self._queries_served


@dataclasses.dataclass
class SortedOrder:
    """One entry of the intelligent order list (VI-B)."""

    position: int
    location_id: int
    aoi_id: int
    eta_minutes: float
    deadline_minutes: float


class OrderSortingService:
    """Ranks unpicked orders by the predicted visit route (VI-B)."""

    def __init__(self, service: RTPService):
        self.service = service

    def sort_orders(self, request: RTPRequest) -> List[SortedOrder]:
        response = self.service.handle(request)
        entries = []
        for position, location_index in enumerate(response.route, start=1):
            location = request.locations[int(location_index)]
            entries.append(SortedOrder(
                position=position,
                location_id=location.location_id,
                aoi_id=location.aoi_id,
                eta_minutes=float(response.eta_minutes[int(location_index)]),
                deadline_minutes=location.deadline - request.request_time,
            ))
        return entries


@dataclasses.dataclass
class ETAEntry:
    """Minute-level ETA for one location (VI-C)."""

    location_id: int
    eta_minutes: float
    notify_at_minutes: float
    overdue_risk: bool


class ETAService:
    """Minute-level ETA plus ahead-of-arrival notification times (VI-C)."""

    def __init__(self, service: RTPService, notify_ahead_minutes: float = 10.0):
        if notify_ahead_minutes < 0:
            raise ValueError("notify_ahead_minutes must be non-negative")
        self.service = service
        self.notify_ahead_minutes = notify_ahead_minutes

    def etas(self, request: RTPRequest) -> List[ETAEntry]:
        response = self.service.handle(request)
        entries = []
        for location_index, location in enumerate(request.locations):
            eta = float(response.eta_minutes[location_index])
            deadline_gap = location.deadline - request.request_time
            entries.append(ETAEntry(
                location_id=location.location_id,
                eta_minutes=eta,
                notify_at_minutes=max(eta - self.notify_ahead_minutes, 0.0),
                overdue_risk=eta > deadline_gap,
            ))
        return entries
