"""Canary / shadow rollout control over the model registry.

The controller owns the serving-side model lifecycle: it loads the
active registry version behind a resilient wrapper, hot-swaps in a
**candidate** version, and routes traffic in one of two modes:

* **canary** — a configurable fraction of live requests is answered by
  the candidate; once it has seen enough traffic the controller
  compares the per-version ``rtp_*`` series in the shared metrics
  registry (requests, degraded-by-reason, model latency) against the
  rollout policy and **auto-promotes** or **auto-rolls-back**;
* **shadow** — every request is duplicated to the candidate, whose
  answer is discarded; only the divergence (route permutation mismatch
  and ETA MAE against the primary) is recorded.

Promotion writes the registry's ``ACTIVE`` pointer, so a restarted
controller comes back serving the promoted version.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.fallback import FallbackPredictor
from ..obs.metrics import MetricsRegistry
from ..service.request import RTPRequest
from ..service.rtp_service import RTPResponse, RTPService
from .faults import FaultInjector
from .registry import ModelRegistry
from .resilience import ResilienceConfig, ResilientRTPService

#: Degradation reasons counted against a canary candidate.
DEGRADED_REASONS = ("breaker_open", "deadline", "shed", "error")


@dataclasses.dataclass
class RolloutPolicy:
    """Thresholds for the canary auto-promote / auto-rollback verdict."""

    canary_fraction: float = 0.2     # share of traffic sent to candidate
    min_requests: int = 20           # candidate traffic before a verdict
    max_degraded_rate: float = 0.2   # candidate degraded share → rollback
    max_latency_ratio: float = 5.0   # candidate/primary mean latency cap
    #: When set, the verdict also reads the ``rtp_quality_eta_mae``
    #: gauges (``segment="model_version"``): promotion additionally
    #: waits for ``min_quality_routes`` completed-route observations of
    #: the candidate and rolls back if its windowed ETA MAE exceeds
    #: ``max_quality_mae_ratio`` times the primary's.  ``None`` keeps
    #: the latency/degraded-only verdict.
    max_quality_mae_ratio: Optional[float] = None
    min_quality_routes: int = 0      # candidate quality obs before verdict

    def __post_init__(self) -> None:
        if not 0.0 < self.canary_fraction <= 1.0:
            raise ValueError("canary_fraction must be in (0, 1]")
        if self.min_requests < 1:
            raise ValueError("min_requests must be >= 1")
        if self.max_degraded_rate < 0:
            raise ValueError("max_degraded_rate must be non-negative")
        if self.max_latency_ratio <= 0:
            raise ValueError("max_latency_ratio must be positive")
        if (self.max_quality_mae_ratio is not None
                and self.max_quality_mae_ratio <= 0):
            raise ValueError("max_quality_mae_ratio must be positive")
        if self.min_quality_routes < 0:
            raise ValueError("min_quality_routes must be non-negative")


@dataclasses.dataclass
class RolloutDecision:
    """Outcome of one canary evaluation (kept in ``decisions``)."""

    action: str                  # "promote" or "rollback"
    version: str
    reason: str
    candidate_requests: int
    candidate_degraded_rate: float
    candidate_latency_ms: float
    primary_latency_ms: float


@dataclasses.dataclass
class ShadowStats:
    """Divergence of the shadow candidate against the primary."""

    requests: int = 0
    route_mismatches: int = 0
    degraded_candidate: int = 0
    eta_mae_sum: float = 0.0

    @property
    def route_mismatch_rate(self) -> float:
        """Share of shadowed requests with a different permutation."""
        return self.route_mismatches / self.requests if self.requests else 0.0

    @property
    def eta_mae(self) -> float:
        """Mean absolute ETA difference vs the primary (minutes)."""
        return self.eta_mae_sum / self.requests if self.requests else 0.0


class DeploymentController:
    """Routes live traffic across registry versions with rollout logic.

    Parameters
    ----------
    registry:
        The :class:`~repro.deploy.ModelRegistry` versions are loaded
        from; promotion moves its ``ACTIVE`` pointer.
    metrics:
        Shared :class:`~repro.obs.MetricsRegistry`; per-version series
        land here and the canary verdict reads them back.
    initial:
        Version ref served at start — default: the registry's active
        version, else ``latest``.
    seed:
        Seeds the canary routing RNG (deterministic traffic split).
    batcher:
        Optional queue-depth source (anything with a ``pending``
        attribute) handed to every resilient wrapper the controller
        builds, so admission control sheds on the shared backlog.  The
        load harness passes its open-loop backlog probe here.
    service_wrapper:
        Optional callable applied to each version's inner service
        (after fault injection) before the resilient wrapper — the
        load harness uses it to install modeled-latency shims under a
        virtual clock.
    """

    def __init__(self, registry: ModelRegistry, *,
                 resilience: Optional[ResilienceConfig] = None,
                 policy: Optional[RolloutPolicy] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 fallback: Optional[FallbackPredictor] = None,
                 initial: Optional[str] = None,
                 seed: int = 0,
                 clock: Callable[[], float] = time.perf_counter,
                 batcher=None,
                 service_wrapper: Optional[Callable] = None,
                 regime_of: Optional[Callable[[RTPRequest], str]] = None):
        self.registry = registry
        self.resilience = resilience or ResilienceConfig()
        self.policy = policy or RolloutPolicy()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.fallback = fallback or FallbackPredictor()
        self.clock = clock
        self.batcher = batcher
        self.service_wrapper = service_wrapper
        self._rng = np.random.default_rng(seed)
        self._decision_counter = self.metrics.counter(
            "rtp_rollout_decisions_total", "Canary verdicts by action",
            labels=("action",))
        if initial is None:
            initial = ("active" if registry.active() is not None else "latest")
        version = registry.resolve(initial)
        self.primary = self._make_service(version)
        if registry.active() != version:
            registry.activate(version)
        self.candidate: Optional[ResilientRTPService] = None
        self.mode: Optional[str] = None        # None | "canary" | "shadow"
        self.decisions: List[RolloutDecision] = []
        self.shadow_stats = ShadowStats()
        self._canary_requests_base = 0.0
        self._canary_degraded_base = 0.0
        if regime_of is None:
            from ..online.zoo import regime_of_request as regime_of
        self.regime_of = regime_of
        self.regime_routes: Dict[str, ResilientRTPService] = {}

    # ------------------------------------------------------------------
    def _make_service(self, version: str,
                      fault_injector: Optional[FaultInjector] = None,
                      ) -> ResilientRTPService:
        model, _ = self.registry.load(version)
        service = RTPService(model)
        inner = fault_injector.wrap(service) if fault_injector else service
        if self.service_wrapper is not None:
            inner = self.service_wrapper(inner)
        return ResilientRTPService(
            inner, fallback=self.fallback, config=self.resilience,
            registry=self.metrics, version=version, clock=self.clock,
            batcher=self.batcher)

    # ------------------------------------------------------------------
    # Rollout lifecycle
    # ------------------------------------------------------------------
    def start_canary(self, ref: str, fraction: Optional[float] = None,
                     fault_injector: Optional[FaultInjector] = None) -> str:
        """Load ``ref`` as the canary candidate; returns its version.

        ``fault_injector`` (tests/benchmarks) wraps the candidate's
        inner service so injected faults hit only the candidate path.
        """
        if fraction is not None:
            self.policy = dataclasses.replace(
                self.policy, canary_fraction=fraction)
        version = self._resolve_candidate(ref)
        self.candidate = self._make_service(version, fault_injector)
        # Counters in the shared registry are cumulative; the verdict
        # must judge only this canary's traffic, so snapshot baselines
        # (a re-canary after a rollback starts from a clean slate).
        self._canary_requests_base = self._metric_value(
            "rtp_model_requests_total", version=version)
        self._canary_degraded_base = self._degraded_total(version)
        self.mode = "canary"
        return version

    def start_shadow(self, ref: str,
                     fault_injector: Optional[FaultInjector] = None) -> str:
        """Load ``ref`` as a shadow candidate; returns its version."""
        version = self._resolve_candidate(ref)
        self.candidate = self._make_service(version, fault_injector)
        self.mode = "shadow"
        self.shadow_stats = ShadowStats()
        return version

    def _resolve_candidate(self, ref: str) -> str:
        version = self.registry.resolve(ref)
        if version == self.primary.version:
            # The per-version metric series would collide and the
            # canary verdict would be computed on merged numbers.
            raise ValueError(
                f"candidate {version!r} is already the serving primary; "
                "register a new version to roll out")
        return version

    def swap(self, ref: str) -> str:
        """Hot-swap the primary to an already-registered version.

        The model-zoo re-activation path: a *returning* regime swaps
        back to the version that already knows it, with no canary (the
        zoo only holds gate-approved versions) and no retrain.  Refused
        mid-rollout — a swap under a live candidate would invalidate
        the canary verdict's baselines.
        """
        version = self.registry.resolve(ref)
        if version == self.primary.version:
            return version
        if self.candidate is not None:
            raise RuntimeError(
                "cannot swap the primary while a candidate is in flight")
        self.primary = self._make_service(version)
        self.registry.activate(version)
        return version

    # ------------------------------------------------------------------
    # Regime-matched routing (model zoo)
    # ------------------------------------------------------------------
    def set_regime_route(self, regime: str, ref: str,
                         fault_injector: Optional[FaultInjector] = None,
                         ) -> str:
        """Serve requests in ``regime`` from ``ref`` instead of ACTIVE.

        Fallback stays the primary: requests whose regime has no route
        (or whose routed version *is* the primary) are untouched, and
        canary/shadow rollouts take precedence so a live experiment is
        never starved of its traffic split.
        """
        version = self.registry.resolve(ref)
        self.regime_routes[regime] = self._make_service(
            version, fault_injector)
        return version

    def clear_regime_route(self, regime: str) -> bool:
        """Drop one regime route; ``False`` if it wasn't set."""
        return self.regime_routes.pop(regime, None) is not None

    def promote(self, reason: str = "manual") -> RolloutDecision:
        """Make the candidate the primary and persist it as ACTIVE."""
        if self.candidate is None:
            raise RuntimeError("no candidate to promote")
        decision = self._decision("promote", reason)
        self.registry.activate(self.candidate.version)
        self.primary = self.candidate
        self._clear_candidate()
        return decision

    def rollback(self, reason: str = "manual") -> RolloutDecision:
        """Drop the candidate; the primary keeps serving."""
        if self.candidate is None:
            raise RuntimeError("no candidate to roll back")
        decision = self._decision("rollback", reason)
        self._clear_candidate()
        return decision

    def on_drift_alarm(self, alarm) -> Optional[RolloutDecision]:
        """React to a quality-drift alarm; returns the rollback, if any.

        Designed as a :meth:`QualityMonitor.on_alarm` subscriber:
        ``alarm`` is duck-typed (``metric`` / ``detector`` /
        ``statistic`` / ``threshold`` attributes).  A drifting quality
        stream during a canary is the strongest rollback signal there
        is — the latency/degraded verdict may still look healthy while
        the model is quietly wrong — so the candidate is dropped
        immediately.  Outside a canary the alarm is only counted: the
        primary has nothing to roll back to.
        """
        self.metrics.counter(
            "rtp_drift_alarms_total",
            "Quality-drift alarms seen by the deployment controller",
            labels=("metric", "detector")).labels(
            metric=str(getattr(alarm, "metric", "unknown")),
            detector=str(getattr(alarm, "detector", "unknown"))).inc()
        if self.mode != "canary" or self.candidate is None:
            return None
        return self.rollback(reason=(
            f"drift: {alarm.metric} {alarm.detector} statistic "
            f"{alarm.statistic:.3f} > {alarm.threshold:.3f}"))

    def _clear_candidate(self) -> None:
        self.candidate = None
        self.mode = None

    def _decision(self, action: str, reason: str) -> RolloutDecision:
        decision = RolloutDecision(
            action=action,
            version=self.candidate.version,
            reason=reason,
            candidate_requests=self.candidate.counts["requests"],
            candidate_degraded_rate=self.candidate.degraded_rate,
            candidate_latency_ms=self.candidate.model_latency_mean_ms(),
            primary_latency_ms=self.primary.model_latency_mean_ms(),
        )
        self.decisions.append(decision)
        self._decision_counter.labels(action=action).inc()
        return decision

    # ------------------------------------------------------------------
    # Request routing
    # ------------------------------------------------------------------
    def handle(self, request: RTPRequest) -> RTPResponse:
        """Route one request according to the current rollout mode.

        ``mode``/``candidate``/``primary`` are read once into locals:
        a concurrent :meth:`promote` / :meth:`rollback` must never
        yank the service out from under an in-flight request — the
        request completes against the services it was admitted to, and
        its ``model_version`` stamp stays coherent.
        """
        mode = self.mode
        candidate = self.candidate
        primary = self.primary
        if mode == "canary" and candidate is not None:
            if float(self._rng.random()) < self.policy.canary_fraction:
                response = candidate.handle(request)
                self._maybe_decide()
                return response
            return primary.handle(request)
        if mode == "shadow" and candidate is not None:
            response = primary.handle(request)
            self._shadow(candidate, request, response)
            return response
        if self.regime_routes:
            service = self.regime_routes.get(self.regime_of(request))
            if service is not None and service.version != primary.version:
                return service.handle(request)
        return primary.handle(request)

    def _shadow(self, candidate: ResilientRTPService, request: RTPRequest,
                primary: RTPResponse) -> None:
        shadow = candidate.handle(request)  # resilient: cannot raise
        self.shadow_stats.requests += 1
        if shadow.degraded:
            self.shadow_stats.degraded_candidate += 1
        if not np.array_equal(shadow.route, primary.route):
            self.shadow_stats.route_mismatches += 1
            self.metrics.counter(
                "rtp_shadow_divergence_total", "Shadow mismatches by kind",
                labels=("kind",)).labels(kind="route").inc()
        mae = float(np.mean(np.abs(shadow.eta_minutes - primary.eta_minutes)))
        self.shadow_stats.eta_mae_sum += mae
        self.metrics.summary(
            "rtp_shadow_eta_mae",
            "Per-request ETA MAE of shadow vs primary").observe(mae)

    # ------------------------------------------------------------------
    # Canary verdict
    # ------------------------------------------------------------------
    def _metric_value(self, name: str, **labels) -> float:
        instrument = self.metrics.get(name)
        if instrument is None:
            return 0.0
        return float(instrument.labels(**labels).value)

    def _degraded_total(self, version: str) -> float:
        return sum(
            self._metric_value("rtp_degraded_total",
                               version=version, reason=reason)
            for reason in DEGRADED_REASONS)

    def _maybe_decide(self) -> Optional[RolloutDecision]:
        """Auto-promote / auto-rollback once the candidate has traffic.

        Reads the per-version ``rtp_model_requests_total`` and
        ``rtp_degraded_total`` series from the shared metrics registry
        — the same exposition operators scrape — rather than private
        state, so the verdict is exactly what the dashboards show.
        """
        candidate = self.candidate
        if candidate is None or self.mode != "canary":
            return None
        version = candidate.version
        requests = (self._metric_value(
            "rtp_model_requests_total", version=version)
            - self._canary_requests_base)
        if requests < self.policy.min_requests:
            return None
        degraded = self._degraded_total(version) - self._canary_degraded_base
        degraded_rate = degraded / requests if requests else 0.0
        if degraded_rate > self.policy.max_degraded_rate:
            return self.rollback(
                reason=f"degraded rate {degraded_rate:.2f} > "
                       f"{self.policy.max_degraded_rate:.2f}")
        primary_latency = self.primary.model_latency_mean_ms()
        candidate_latency = candidate.model_latency_mean_ms()
        if (primary_latency > 0 and candidate_latency
                > self.policy.max_latency_ratio * primary_latency):
            return self.rollback(
                reason=f"latency {candidate_latency:.1f}ms > "
                       f"{self.policy.max_latency_ratio:.1f}x primary "
                       f"{primary_latency:.1f}ms")
        if self.policy.max_quality_mae_ratio is not None:
            routes = self._metric_value(
                "rtp_quality_routes_total",
                segment="model_version", key=version)
            if routes < self.policy.min_quality_routes:
                return None  # healthy, but quality evidence still thin
            candidate_mae = self._metric_value(
                "rtp_quality_eta_mae",
                segment="model_version", key=version)
            primary_mae = self._metric_value(
                "rtp_quality_eta_mae",
                segment="model_version", key=self.primary.version)
            if (primary_mae > 0 and candidate_mae
                    > self.policy.max_quality_mae_ratio * primary_mae):
                return self.rollback(
                    reason=f"quality: candidate eta mae "
                           f"{candidate_mae:.1f} > "
                           f"{self.policy.max_quality_mae_ratio:.2f}x "
                           f"primary {primary_mae:.1f} over "
                           f"{int(routes)} completed routes")
            return self.promote(
                reason=f"quality: candidate eta mae {candidate_mae:.1f} "
                       f"vs primary {primary_mae:.1f} over "
                       f"{int(routes)} completed routes")
        return self.promote(
            reason=f"healthy after {int(requests)} canary requests")

    # ------------------------------------------------------------------
    @property
    def active_version(self) -> str:
        """Version currently serving non-candidate traffic."""
        return self.primary.version

    def render_metrics(self) -> str:
        """Prometheus exposition of the shared registry."""
        return self.metrics.render()
