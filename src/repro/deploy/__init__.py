"""Deployment & resilience subsystem (paper Section VI, production).

Turns the bare :class:`~repro.service.RTPService` into an operable
deployment:

* :mod:`~repro.deploy.registry` — versioned checkpoints with JSON
  manifests, SHA-256 integrity hashing and ``latest``/pin/``active``
  resolution;
* :mod:`~repro.deploy.controller` — canary and shadow rollout of a
  candidate version with metric-driven auto-promote / auto-rollback;
* :mod:`~repro.deploy.resilience` — per-request deadline budgets,
  retry-once, a circuit breaker, queue-depth load shedding and
  graceful degradation to the cheap
  :class:`~repro.core.FallbackPredictor`;
* :mod:`~repro.deploy.faults` — deterministic fault injection (latency
  spikes, transient errors, checkpoint corruption) so all of the above
  is testable.
"""

from .registry import (
    CheckpointIntegrityError,
    ModelManifest,
    ModelRegistry,
    RegistryError,
    sha256_of_file,
)
from .resilience import (
    BREAKER_STATE_VALUES,
    CircuitBreaker,
    ResilienceConfig,
    ResilientRTPService,
)
from .controller import (
    DeploymentController,
    RolloutDecision,
    RolloutPolicy,
    ShadowStats,
)
from .faults import (
    FaultInjector,
    FaultPlan,
    FaultyService,
    TransientServiceError,
    corrupt_checkpoint,
)

__all__ = [
    "ModelRegistry", "ModelManifest", "RegistryError",
    "CheckpointIntegrityError", "sha256_of_file",
    "CircuitBreaker", "ResilienceConfig", "ResilientRTPService",
    "BREAKER_STATE_VALUES",
    "DeploymentController", "RolloutPolicy", "RolloutDecision",
    "ShadowStats",
    "FaultInjector", "FaultPlan", "FaultyService",
    "TransientServiceError", "corrupt_checkpoint",
]
