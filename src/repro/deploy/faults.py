"""Deterministic fault injection for exercising the resilience layer.

Chaos tooling for tests and benchmarks: wrap a service so a seeded RNG
decides, per call, whether to raise a transient error or add a latency
spike — and corrupt checkpoint files on disk so the registry's
integrity check has something real to catch.  Everything is driven by
``numpy.random.default_rng(seed)``, so a given seed replays the exact
same fault sequence.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Callable, List, Sequence, Union

import numpy as np


class TransientServiceError(RuntimeError):
    """An injected transient failure (retry-able by design)."""


@dataclasses.dataclass
class FaultPlan:
    """What to inject and how often (probabilities per call)."""

    error_rate: float = 0.0         # P(raise TransientServiceError)
    spike_rate: float = 0.0         # P(add latency_spike_ms of delay)
    latency_spike_ms: float = 0.0
    fail_first: int = 0             # deterministically fail calls 1..N
    # Hard-crash faults (used by the parallel-training worker pool: a
    # crash decision makes the whole worker process exit, exercising
    # dead-worker detection and respawn rather than error handling).
    crash_rate: float = 0.0         # P(the process should die this call)
    crash_first: int = 0            # deterministically crash calls 1..N

    def __post_init__(self) -> None:
        for name in ("error_rate", "spike_rate", "crash_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.latency_spike_ms < 0:
            raise ValueError("latency_spike_ms must be non-negative")
        if self.fail_first < 0:
            raise ValueError("fail_first must be non-negative")
        if self.crash_first < 0:
            raise ValueError("crash_first must be non-negative")


class FaultInjector:
    """Seeded source of fault decisions plus service/file wrappers.

    ``sleeper`` is injectable so pure-logic tests can capture delays
    without real wall-clock sleeps.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0,
                 sleeper: Callable[[float], None] = time.sleep):
        self.plan = plan
        self.seed = seed
        self.sleeper = sleeper
        self._rng = np.random.default_rng(seed)
        # Crash decisions draw from their own stream so enabling them
        # never perturbs the error/spike sequence of an existing seed.
        self._crash_rng = np.random.default_rng((seed, 0xC4A5))
        self.calls = 0
        self.crash_calls = 0
        self.errors_injected = 0
        self.spikes_injected = 0
        self.crashes_signalled = 0

    def reset(self) -> None:
        """Rewind to the start of the deterministic fault sequence."""
        self._rng = np.random.default_rng(self.seed)
        self._crash_rng = np.random.default_rng((self.seed, 0xC4A5))
        self.calls = 0
        self.crash_calls = 0
        self.errors_injected = 0
        self.spikes_injected = 0
        self.crashes_signalled = 0

    # ------------------------------------------------------------------
    def before_call(self) -> None:
        """Apply this call's faults: maybe sleep, maybe raise.

        Draws exactly two uniforms per call regardless of the outcome,
        so the decision sequence depends only on the seed and the call
        index — not on which faults happen to fire.
        """
        self.calls += 1
        error_draw = float(self._rng.random())
        spike_draw = float(self._rng.random())
        if self.plan.latency_spike_ms > 0 and (
                spike_draw < self.plan.spike_rate):
            self.spikes_injected += 1
            self.sleeper(self.plan.latency_spike_ms / 1000.0)
        if (self.calls <= self.plan.fail_first
                or error_draw < self.plan.error_rate):
            self.errors_injected += 1
            raise TransientServiceError(
                f"injected fault on call {self.calls} (seed {self.seed})")

    def fast_forward(self, calls: int) -> None:
        """Consume ``calls`` fault decisions without acting on them.

        Used when a fault stream outlives a process: a respawned
        parallel-training worker fast-forwards its fresh injector past
        the decisions its previous incarnation already consumed, so the
        logical worker replays one deterministic sequence rather than
        re-triggering ``crash_first``/``fail_first`` on every respawn.
        """
        if calls < 0:
            raise ValueError("calls must be non-negative")
        for _ in range(calls):
            self._rng.random()
            self._rng.random()
        self.calls += calls
        if self.plan.crash_rate > 0.0 or self.plan.crash_first > 0:
            self._crash_rng.random(calls)
            self.crash_calls += calls

    def should_crash(self) -> bool:
        """Decide whether the calling process should die hard this call.

        Unlike :meth:`before_call` this does not raise — a crash is not
        an exception the caller can handle, it models the whole process
        disappearing.  The parallel-training worker checks this at the
        top of each step and exits the process (no result, no goodbye)
        when it returns ``True``, which is what exercises dead-worker
        detection and respawn in the coordinator.  Draws one uniform per
        call from a dedicated stream, so seeds replay identically and
        existing error/spike sequences are unaffected.
        """
        if self.plan.crash_rate <= 0.0 and self.plan.crash_first <= 0:
            return False
        self.crash_calls += 1
        draw = float(self._crash_rng.random())
        if (self.crash_calls <= self.plan.crash_first
                or draw < self.plan.crash_rate):
            self.crashes_signalled += 1
            return True
        return False

    def wrap(self, service) -> "FaultyService":
        """Return a service façade that injects faults before each call."""
        return FaultyService(service, self)


class FaultyService:
    """Service wrapper: every handle runs through the injector first."""

    def __init__(self, service, injector: FaultInjector):
        self.service = service
        self.injector = injector

    def handle(self, request):
        """Delegate after (possibly) injecting a spike or an error."""
        self.injector.before_call()
        return self.service.handle(request)

    def handle_batch(self, requests: Sequence) -> List:
        """One injector decision per batch (a batch fails as a unit)."""
        self.injector.before_call()
        return self.service.handle_batch(requests)

    def __getattr__(self, name):
        # Forward cache/queries_served/... to the wrapped service.
        return getattr(self.service, name)


def corrupt_checkpoint(path: Union[str, Path], seed: int = 0,
                       num_bytes: int = 64) -> None:
    """Flip ``num_bytes`` random bytes of a checkpoint file in place.

    Deterministic given ``seed``; used to prove the registry's
    integrity hashing rejects bit-rot instead of serving garbage.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"{path} is empty; nothing to corrupt")
    rng = np.random.default_rng(seed)
    positions = rng.integers(0, len(data), size=min(num_bytes, len(data)))
    for position in positions:
        data[int(position)] ^= 0xFF
    path.write_bytes(bytes(data))
