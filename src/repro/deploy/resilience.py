"""Resilience layer: deadline budget, retry, breaker, shedding, fallback.

Industrial ETA stacks pair the heavy learned model with a cheap backup
path (cf. DeepETA-style systems); this module is that pairing for
:class:`~repro.service.RTPService`.  :class:`ResilientRTPService`
wraps any service-like object and guarantees **every** request gets a
valid route + ETA vector:

* **deadline budget** — each request carries a wall-clock budget; if
  the model path blows it, the cheap fallback answer is served instead
  (flagged ``degraded=true``, reason ``deadline``);
* **retry-once** — one transient model failure inside the budget is
  retried before degrading (reason ``error`` when the retry also
  fails);
* **circuit breaker** — consecutive model failures open the breaker;
  while open, requests skip the model entirely (reason
  ``breaker_open``) until a recovery window lets one trial through;
* **admission control** — when the attached
  :class:`~repro.service.MicroBatcher` queue exceeds a bound, new
  requests are shed straight to the fallback (reason ``shed``) instead
  of growing the queue without bound.

The degraded answer comes from
:class:`~repro.core.FallbackPredictor` — a distance-greedy route with
historical-average ETAs — so availability stays at 100% even with the
model hard-down.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..core.fallback import FallbackPredictor
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import span
from ..service.request import RTPRequest
from ..service.rtp_service import RTPResponse

#: Gauge encoding of breaker states.
BREAKER_STATE_VALUES = {"closed": 0, "half_open": 1, "open": 2}


def degraded_response(fallback: FallbackPredictor, request: RTPRequest,
                      reason: str, latency_ms: float = 0.0,
                      version: str = "") -> RTPResponse:
    """A valid-but-degraded answer from the cheap fallback predictor.

    The single construction point for every degraded response in the
    repo: :class:`ResilientRTPService` uses it for its own fallback
    path, and the shard router (:mod:`repro.serving_shard`) for
    load-shedding decisions made before a request ever reaches a
    worker.  Sharing it keeps the degraded-answer contract (full route
    permutation, matching ETA vector, ``degraded_reason`` stamp) in one
    place.
    """
    prediction = fallback.predict(request)
    return RTPResponse(
        route=prediction.route,
        eta_minutes=prediction.eta_minutes,
        aoi_route=None,
        aoi_eta_minutes=None,
        latency_ms=latency_ms,
        build_ms=0.0,
        infer_ms=latency_ms,
        degraded=True,
        degraded_reason=reason,
        model_version=version,
    )


class CircuitBreaker:
    """Consecutive-failure breaker with a timed half-open recovery.

    ``closed`` → (``failure_threshold`` consecutive failures) →
    ``open`` → (``recovery_seconds`` elapsed) → ``half_open`` → one
    trial: success closes, failure re-opens.  The clock is injectable
    so tests control time.
    """

    def __init__(self, failure_threshold: int = 3,
                 recovery_seconds: float = 5.0,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_seconds < 0:
            raise ValueError("recovery_seconds must be non-negative")
        self.failure_threshold = failure_threshold
        self.recovery_seconds = recovery_seconds
        self.clock = clock
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.opens = 0   # times the breaker tripped open

    @property
    def state(self) -> str:
        """``closed``, ``open`` or ``half_open`` (time-aware)."""
        if (self._state == "open"
                and self.clock() - self._opened_at >= self.recovery_seconds):
            self._state = "half_open"
        return self._state

    def allow(self) -> bool:
        """May a model call proceed right now?"""
        return self.state != "open"

    def record_success(self) -> None:
        """Model call succeeded: close and reset the failure streak."""
        self._consecutive_failures = 0
        self._state = "closed"

    def record_failure(self) -> None:
        """Model call failed: count it; trip open at the threshold."""
        self._consecutive_failures += 1
        if self._state == "half_open":
            self._trip()
        elif self._consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = "open"
        self._opened_at = self.clock()
        self._consecutive_failures = 0
        self.opens += 1


@dataclasses.dataclass
class ResilienceConfig:
    """Knobs of :class:`ResilientRTPService`."""

    deadline_ms: float = 250.0          # per-request wall-clock budget
    retry_transient: bool = True        # retry once on a model failure
    breaker_failure_threshold: int = 3
    breaker_recovery_seconds: float = 5.0
    max_queue_depth: int = 64           # admission bound on the batcher

    def __post_init__(self) -> None:
        if self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")


class ResilientRTPService:
    """Never-fail façade over a model service.

    Parameters
    ----------
    service:
        Anything with ``handle(request) -> RTPResponse`` (an
        :class:`~repro.service.RTPService`, a monitor, or a
        fault-injected wrapper).
    fallback:
        The cheap predictor used for degraded answers.
    batcher:
        Optional :class:`~repro.service.MicroBatcher` whose queue depth
        gates admission (``pending`` attribute is all that is read).
    registry:
        Optional shared metrics registry; exports per-version
        ``rtp_model_*`` series, ``rtp_degraded_total`` by reason, the
        exactly-once ``rtp_degraded_responses_total`` total (always
        equal to the per-reason sum) and the ``rtp_breaker_state``
        gauge.
    version:
        Registry version label stamped on responses and metrics.
    """

    def __init__(self, service, fallback: Optional[FallbackPredictor] = None,
                 config: Optional[ResilienceConfig] = None,
                 batcher=None,
                 registry: Optional[MetricsRegistry] = None,
                 version: str = "",
                 clock: Callable[[], float] = time.perf_counter):
        self.service = service
        self.fallback = fallback or FallbackPredictor()
        self.config = config or ResilienceConfig()
        self.batcher = batcher
        self.version = version
        self.clock = clock
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            recovery_seconds=self.config.breaker_recovery_seconds,
            clock=clock)
        # Local tallies (always on) + optional registry instruments.
        # All tallies mutate under ``_counts_lock`` so concurrent
        # callers never lose increments; the invariants
        # ``requests == model + degraded`` and ``degraded ==
        # breaker_open + deadline + shed + error`` hold exactly (each
        # degraded response is attributed to exactly one reason).
        self.counts: Dict[str, int] = {
            "requests": 0, "model": 0, "degraded": 0, "errors": 0,
            "retries": 0, "breaker_open": 0, "deadline": 0, "shed": 0,
            "error": 0,
        }
        self._counts_lock = threading.Lock()
        self._latency_sum_ms = 0.0
        self._latency_count = 0
        self._feedback = None
        self._registry = registry
        if registry is not None:
            self._m_requests = registry.counter(
                "rtp_model_requests_total", "Requests per model version",
                labels=("version",))
            self._m_errors = registry.counter(
                "rtp_model_errors_total", "Model failures per version",
                labels=("version",))
            self._m_latency = registry.summary(
                "rtp_model_latency_ms", "Model-path latency per version",
                labels=("version",))
            self._m_degraded = registry.counter(
                "rtp_degraded_total", "Degraded responses by reason",
                labels=("version", "reason"))
            self._m_degraded_responses = registry.counter(
                "rtp_degraded_responses_total",
                "Degraded responses (exactly one per degraded request; "
                "equals the sum of rtp_degraded_total over reasons)",
                labels=("version",))
            self._m_breaker = registry.gauge(
                "rtp_breaker_state",
                "Circuit breaker state (0 closed, 1 half-open, 2 open)",
                labels=("version",))

    # ------------------------------------------------------------------
    def _count(self, *keys: str) -> None:
        """Advance local tallies atomically (one lock hold per call)."""
        with self._counts_lock:
            for key in keys:
                self.counts[key] += 1

    def _publish_breaker(self) -> None:
        if self._registry is not None:
            self._m_breaker.labels(version=self.version).set(
                BREAKER_STATE_VALUES[self.breaker.state])

    def _degraded_response(self, request: RTPRequest, reason: str,
                           started: float) -> RTPResponse:
        latency_ms = (self.clock() - started) * 1000.0
        # "degraded" and its reason advance together under one lock
        # hold, so the per-reason sum always reconciles with the total.
        self._count("degraded", reason)
        if self._registry is not None:
            self._m_degraded.labels(version=self.version, reason=reason).inc()
            self._m_degraded_responses.labels(version=self.version).inc()
        self._publish_breaker()
        return degraded_response(self.fallback, request, reason,
                                 latency_ms=latency_ms, version=self.version)

    def _stamp(self, response: RTPResponse) -> RTPResponse:
        response.model_version = self.version
        return response

    # ------------------------------------------------------------------
    # Ground-truth feedback (the online-learning data loop)
    # ------------------------------------------------------------------
    def attach_feedback(self, sink) -> None:
        """Register a completed-route sink (e.g. ``OnlineLoop``).

        ``sink`` needs an ``offer(request, response, actual_route,
        actual_arrival_minutes) -> bool`` method; it must be bounded
        and non-blocking, because :meth:`complete_route` is called from
        the serving path.
        """
        self._feedback = sink

    def complete_route(self, request: RTPRequest, response: RTPResponse,
                       actual_route, actual_arrival_minutes) -> bool:
        """Report a route's late ground truth to the feedback sink.

        Returns ``True`` if a sink accepted the route (a bounded sink
        may drop under backpressure; no sink attached means ``False``).
        """
        if self._feedback is None:
            return False
        return bool(self._feedback.offer(
            request, response, actual_route, actual_arrival_minutes))

    # ------------------------------------------------------------------
    def handle(self, request: RTPRequest) -> RTPResponse:
        """Answer one request, degrading instead of ever failing."""
        started = self.clock()
        self._count("requests")
        if self._registry is not None:
            self._m_requests.labels(version=self.version).inc()
        with span("rtp.resilient", version=self.version):
            # Admission control: shed before queueing more work.
            if (self.batcher is not None
                    and self.batcher.pending >= self.config.max_queue_depth):
                return self._degraded_response(request, "shed", started)
            if not self.breaker.allow():
                return self._degraded_response(
                    request, "breaker_open", started)

            attempts = 2 if self.config.retry_transient else 1
            for attempt in range(attempts):
                try:
                    response = self.service.handle(request)
                except Exception:
                    self._count("errors")
                    self.breaker.record_failure()
                    if self._registry is not None:
                        self._m_errors.labels(version=self.version).inc()
                    budget_left = (self.config.deadline_ms
                                   - (self.clock() - started) * 1000.0)
                    if (attempt + 1 < attempts and budget_left > 0
                            and self.breaker.allow()):
                        self._count("retries")
                        continue
                    return self._degraded_response(request, "error", started)
                elapsed_ms = (self.clock() - started) * 1000.0
                if elapsed_ms > self.config.deadline_ms:
                    # The model answered too late to be useful; serve
                    # the cheap answer and count the slowness against
                    # the breaker (slow is a failure mode).
                    self.breaker.record_failure()
                    return self._degraded_response(
                        request, "deadline", started)
                self.breaker.record_success()
                with self._counts_lock:
                    self.counts["model"] += 1
                    self._latency_sum_ms += elapsed_ms
                    self._latency_count += 1
                if self._registry is not None:
                    self._m_latency.labels(
                        version=self.version).observe(elapsed_ms)
                self._publish_breaker()
                return self._stamp(response)
        raise AssertionError("unreachable")  # pragma: no cover

    def handle_batch(self, requests: Sequence[RTPRequest]) -> List[RTPResponse]:
        """Batched variant: one failed batch degrades its members.

        Batches of two or more take a true batched fast path (one
        ``service.handle_batch`` call, so a padded multi-request
        forward stays a single forward).  Admission, breaker state and
        the deadline are evaluated once for the whole flush — every
        member waited for the same batch, so they share one wall-clock
        fate — and a failed batch degrades each member individually
        through the fallback.  The batched path does not retry;
        retry-once remains a single-request affordance.
        """
        if len(requests) <= 1 or not hasattr(self.service, "handle_batch"):
            return [self.handle(request) for request in requests]
        started = self.clock()
        with self._counts_lock:
            self.counts["requests"] += len(requests)
        if self._registry is not None:
            self._m_requests.labels(version=self.version).inc(len(requests))
        with span("rtp.resilient.batch", version=self.version,
                  batch=len(requests)):
            if (self.batcher is not None
                    and self.batcher.pending >= self.config.max_queue_depth):
                return [self._degraded_response(request, "shed", started)
                        for request in requests]
            if not self.breaker.allow():
                return [self._degraded_response(
                    request, "breaker_open", started)
                    for request in requests]
            try:
                responses = self.service.handle_batch(list(requests))
            except Exception:
                self._count("errors")
                self.breaker.record_failure()
                if self._registry is not None:
                    self._m_errors.labels(version=self.version).inc()
                return [self._degraded_response(request, "error", started)
                        for request in requests]
            elapsed_ms = (self.clock() - started) * 1000.0
            if elapsed_ms > self.config.deadline_ms:
                self.breaker.record_failure()
                return [self._degraded_response(request, "deadline", started)
                        for request in requests]
            self.breaker.record_success()
            with self._counts_lock:
                self.counts["model"] += len(requests)
                self._latency_sum_ms += elapsed_ms * len(requests)
                self._latency_count += len(requests)
            if self._registry is not None:
                for _ in requests:
                    self._m_latency.labels(
                        version=self.version).observe(elapsed_ms)
            self._publish_breaker()
            return [self._stamp(response) for response in responses]

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        """Consistent copy of the tallies (one lock hold).

        Unlike reading ``counts`` directly, a snapshot taken while
        other threads are serving can never show a degraded total that
        disagrees with its per-reason breakdown.
        """
        with self._counts_lock:
            return dict(self.counts)

    @property
    def degraded_rate(self) -> float:
        """Fraction of requests answered by the fallback path."""
        with self._counts_lock:
            total = self.counts["requests"]
            return self.counts["degraded"] / total if total else 0.0

    def model_latency_mean_ms(self) -> float:
        """Mean latency of successful model-path answers (or 0)."""
        with self._counts_lock:
            if not self._latency_count:
                return 0.0
            return self._latency_sum_ms / self._latency_count
