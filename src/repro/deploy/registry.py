"""Versioned model registry: manifests, integrity hashing, resolution.

The paper retrains M²G4RTP continuously as courier behaviour drifts
(Section VI runs it inside Cainiao's production pipeline); a serving
fleet therefore needs a durable home for *versions* of the model, not
one bare checkpoint.  :class:`ModelRegistry` lays versions out on disk
as::

    registry_dir/
      v001/
        model.npz        # atomic checkpoint (training.checkpoint)
        manifest.json    # ModelManifest: config, metrics, seed, sha256
      v002/...
      ACTIVE             # version currently promoted to serve traffic
      PINNED             # optional pin overriding "latest" resolution

Every checkpoint is SHA-256 hashed at registration and re-hashed at
load; a corrupt or tampered file raises
:class:`CheckpointIntegrityError` instead of serving garbage weights.
``resolve`` understands the symbolic refs ``latest`` (pin-aware) and
``active`` alongside literal version names.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core import M2G4RTP, M2G4RTPConfig
from ..training.checkpoint import CheckpointError, load_checkpoint, save_checkpoint

MANIFEST_NAME = "manifest.json"
CHECKPOINT_NAME = "model.npz"
_VERSION_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class RegistryError(RuntimeError):
    """The registry is missing a version or got an invalid request."""


class CheckpointIntegrityError(RegistryError):
    """A stored checkpoint no longer matches its manifest hash."""


def sha256_of_file(path: Union[str, Path]) -> str:
    """Streaming SHA-256 hex digest of a file."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _atomic_write_text(path: Path, text: str) -> None:
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


@dataclasses.dataclass
class ModelManifest:
    """Everything needed to rebuild and trust one registered version."""

    version: str
    sequence: int                      # monotonic registration order
    created_at: str                    # caller-provided timestamp string
    checkpoint_sha256: str
    model_config: Dict[str, object]    # dataclasses.asdict(M2G4RTPConfig)
    metrics: Dict[str, float] = dataclasses.field(default_factory=dict)
    data_seed: Optional[int] = None
    notes: str = ""
    #: Traffic regime this version specialises in (e.g. ``weather:calm``
    #: / ``weather:storm``), keyed on the labels the experience buffer
    #: carries.  Empty for regime-agnostic versions; the model zoo only
    #: indexes tagged ones.
    regime: str = ""

    def to_json(self) -> str:
        """Serialise as pretty-printed JSON."""
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "ModelManifest":
        """Parse a manifest previously written by :meth:`to_json`."""
        return ModelManifest(**json.loads(text))


class ModelRegistry:
    """Directory of versioned checkpoints with manifests and pointers."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, model: M2G4RTP, *, version: Optional[str] = None,
                 metrics: Optional[Dict[str, float]] = None,
                 data_seed: Optional[int] = None,
                 created_at: str = "", notes: str = "",
                 regime: str = "") -> ModelManifest:
        """Store ``model`` as a new version; returns its manifest.

        ``created_at`` is passed in by the caller (a timestamp string)
        so registration is deterministic and replayable.  Auto-versions
        are ``v001``, ``v002``, … in registration order.
        """
        sequence = self._next_sequence()
        if version is None:
            version = f"v{sequence:03d}"
        if not _VERSION_RE.match(version):
            raise RegistryError(f"invalid version name {version!r}")
        version_dir = self.root / version
        if version_dir.exists():
            raise RegistryError(f"version {version!r} already registered")
        version_dir.mkdir(parents=True)
        checkpoint_path = save_checkpoint(model, version_dir / CHECKPOINT_NAME)
        manifest = ModelManifest(
            version=version,
            sequence=sequence,
            created_at=created_at,
            checkpoint_sha256=sha256_of_file(checkpoint_path),
            model_config=dataclasses.asdict(model.config),
            metrics=dict(metrics or {}),
            data_seed=data_seed,
            notes=notes,
            regime=regime,
        )
        _atomic_write_text(version_dir / MANIFEST_NAME, manifest.to_json())
        return manifest

    def tag_regime(self, version: str, regime: str) -> ModelManifest:
        """Stamp (or re-stamp) a version's regime tag in place.

        The checkpoint hash covers only the weights file, so rewriting
        the manifest is safe; the write is atomic like registration.
        """
        version = self.resolve(version)
        manifest = self.manifest(version)
        manifest = dataclasses.replace(manifest, regime=str(regime))
        _atomic_write_text(
            self.root / version / MANIFEST_NAME, manifest.to_json())
        return manifest

    def _next_sequence(self) -> int:
        manifests = [self.manifest(v) for v in self.versions()]
        return max((m.sequence for m in manifests), default=0) + 1

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def versions(self) -> List[str]:
        """Registered version names, oldest first (by sequence)."""
        found: List[Tuple[int, str]] = []
        for entry in self.root.iterdir():
            manifest_path = entry / MANIFEST_NAME
            if entry.is_dir() and manifest_path.exists():
                manifest = ModelManifest.from_json(manifest_path.read_text())
                found.append((manifest.sequence, entry.name))
        return [name for _, name in sorted(found)]

    def manifest(self, version: str) -> ModelManifest:
        """Manifest of one literal version name."""
        manifest_path = self.root / version / MANIFEST_NAME
        if not manifest_path.exists():
            raise RegistryError(
                f"unknown version {version!r}; have {self.versions()}")
        return ModelManifest.from_json(manifest_path.read_text())

    def checkpoint_path(self, version: str) -> Path:
        """Path of the version's ``.npz`` checkpoint file."""
        return self.root / version / CHECKPOINT_NAME

    def latest(self) -> str:
        """Newest registered version; the pin, if set, wins."""
        pinned = self.pinned()
        if pinned is not None:
            return pinned
        versions = self.versions()
        if not versions:
            raise RegistryError(f"registry {self.root} is empty")
        return versions[-1]

    def resolve(self, ref: str) -> str:
        """Resolve ``latest``/``active`` or a literal version name."""
        if ref == "latest":
            return self.latest()
        if ref == "active":
            active = self.active()
            if active is None:
                raise RegistryError("no version has been activated yet")
            return active
        self.manifest(ref)  # raises RegistryError if unknown
        return ref

    # ------------------------------------------------------------------
    # Pointers: pin and active
    # ------------------------------------------------------------------
    def pin(self, version: str) -> None:
        """Pin ``latest`` resolution to one version (ops override)."""
        _atomic_write_text(self.root / "PINNED", self.resolve(version))

    def unpin(self) -> None:
        """Remove the pin; ``latest`` returns to newest-registered."""
        pin_path = self.root / "PINNED"
        if pin_path.exists():
            pin_path.unlink()

    def pinned(self) -> Optional[str]:
        """Currently pinned version name, or ``None``."""
        pin_path = self.root / "PINNED"
        return pin_path.read_text().strip() if pin_path.exists() else None

    def activate(self, version: str) -> None:
        """Point ACTIVE at ``version`` (appends to promotion history)."""
        version = self.resolve(version)
        with open(self.root / "ACTIVE_HISTORY", "a") as handle:
            handle.write(version + "\n")
        _atomic_write_text(self.root / "ACTIVE", version)

    def active(self) -> Optional[str]:
        """The currently promoted version, or ``None``."""
        active_path = self.root / "ACTIVE"
        return active_path.read_text().strip() if active_path.exists() else None

    def activation_history(self) -> List[str]:
        """Every version ever activated, oldest first."""
        history_path = self.root / "ACTIVE_HISTORY"
        if not history_path.exists():
            return []
        return [line for line in history_path.read_text().splitlines() if line]

    def rollback_active(self) -> Optional[str]:
        """Re-activate the previously active version; returns it."""
        history = self.activation_history()
        if len(history) < 2:
            raise RegistryError("no earlier activation to roll back to")
        previous = history[-2]
        self.activate(previous)
        return previous

    # ------------------------------------------------------------------
    # Integrity and loading
    # ------------------------------------------------------------------
    def verify(self, version: str) -> bool:
        """``True`` iff the stored checkpoint matches its manifest hash."""
        manifest = self.manifest(version)
        checkpoint = self.checkpoint_path(version)
        return (checkpoint.exists()
                and sha256_of_file(checkpoint) == manifest.checkpoint_sha256)

    def load(self, ref: str = "latest") -> Tuple[M2G4RTP, ModelManifest]:
        """Rebuild and weight-load one version, integrity-checked.

        Raises :class:`CheckpointIntegrityError` when the file hash
        disagrees with the manifest (bit-rot, partial copy, tampering)
        and :class:`~repro.training.checkpoint.CheckpointError` when
        the archive itself is unreadable or mismatched.
        """
        version = self.resolve(ref)
        manifest = self.manifest(version)
        checkpoint = self.checkpoint_path(version)
        if not checkpoint.exists():
            raise RegistryError(f"version {version!r} has no checkpoint file")
        actual = sha256_of_file(checkpoint)
        if actual != manifest.checkpoint_sha256:
            raise CheckpointIntegrityError(
                f"checkpoint {checkpoint} fails integrity check: "
                f"manifest sha256 {manifest.checkpoint_sha256[:12]}… "
                f"vs file {actual[:12]}…")
        model = M2G4RTP(M2G4RTPConfig(**manifest.model_config))
        load_checkpoint(model, checkpoint)
        model.eval()
        return model, manifest
