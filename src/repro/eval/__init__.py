"""Evaluation harness: bucketed tables, latency profiling, case studies."""

from .evaluator import (
    MethodEvaluation,
    baseline_predictor,
    evaluate_method,
    format_table,
    model_predictor,
)
from .profiler import (
    COMPLEXITY,
    LatencyReport,
    format_latency_table,
    profile_method,
)
from .case_study import (
    CaseResult,
    CaseStudy,
    aoi_switch_count,
    build_case_study,
    select_interesting_cases,
)
from .repeats import (
    MeanStd,
    SeededEvaluation,
    evaluate_over_seeds,
    format_seeded_table,
)
from .svg import render_case_svg, write_case_svgs
from .analysis import (
    CalibrationReport,
    PositionErrorCurve,
    breakdown_by,
    calibration_report,
    format_breakdown,
    position_error_curve,
)

__all__ = [
    "MethodEvaluation", "baseline_predictor", "evaluate_method",
    "format_table", "model_predictor",
    "COMPLEXITY", "LatencyReport", "format_latency_table", "profile_method",
    "CaseResult", "CaseStudy", "aoi_switch_count", "build_case_study",
    "select_interesting_cases",
    "MeanStd", "SeededEvaluation", "evaluate_over_seeds",
    "format_seeded_table",
    "render_case_svg", "write_case_svgs",
    "CalibrationReport", "PositionErrorCurve", "breakdown_by",
    "calibration_report", "format_breakdown", "position_error_curve",
]
