"""Bucketed evaluation harness producing the paper's table rows.

Tables III/IV report every method on three size buckets: n ∈ (3, 10],
n ∈ (10, 20] and all.  :func:`evaluate_method` runs one predictor over
a test set and aggregates the six metrics per bucket.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..baselines.base import BaselinePrediction, RTPBaseline
from ..core.model import M2G4RTP
from ..data.dataset import RTPDataset, SIZE_BUCKETS
from ..data.entities import RTPInstance
from ..graphs import GraphBuilder
from ..metrics import (
    MetricReport,
    RoutePrediction,
    TimePrediction,
    combined_report,
)

#: ``predict(instance) -> (route, arrival_times)``.
PredictFn = Callable[[RTPInstance], Tuple[np.ndarray, np.ndarray]]


def baseline_predictor(baseline: RTPBaseline) -> PredictFn:
    """Adapt an :class:`RTPBaseline` to the evaluator's callable shape."""
    def predict(instance: RTPInstance):
        prediction = baseline.predict(instance)
        return prediction.route, prediction.arrival_times
    return predict


def model_predictor(model: M2G4RTP,
                    builder: Optional[GraphBuilder] = None) -> PredictFn:
    """Adapt a trained :class:`M2G4RTP` to the evaluator's callable shape."""
    builder = builder or GraphBuilder(num_aoi_ids=model.config.num_aoi_ids)

    def predict(instance: RTPInstance):
        output = model.predict(builder.build(instance))
        return output.route, output.arrival_times
    return predict


@dataclasses.dataclass
class MethodEvaluation:
    """Six-metric reports for one method across the paper's buckets."""

    name: str
    buckets: Dict[str, MetricReport]

    def row(self, bucket: str, kind: str) -> str:
        report = self.buckets[bucket]
        return report.route_row() if kind == "route" else report.time_row()


def evaluate_method(name: str, predict: PredictFn, test: RTPDataset,
                    buckets: Sequence[str] = ("(3-10]", "(10-20]", "all")
                    ) -> MethodEvaluation:
    """Evaluate one predictor on every requested size bucket.

    Predictions are computed once per instance and re-aggregated per
    bucket, so expensive models are not re-run.
    """
    predictions = {}
    for index, instance in enumerate(test):
        route, times = predict(instance)
        predictions[index] = (np.asarray(route), np.asarray(times))

    reports: Dict[str, MetricReport] = {}
    for bucket in buckets:
        low, high = SIZE_BUCKETS[bucket]
        route_preds, time_preds = [], []
        for index, instance in enumerate(test):
            if not low < instance.num_locations <= high:
                continue
            route, times = predictions[index]
            route_preds.append(RoutePrediction(route, instance.route))
            time_preds.append(TimePrediction(times, instance.arrival_times))
        if route_preds:
            reports[bucket] = combined_report(route_preds, time_preds)
    return MethodEvaluation(name=name, buckets=reports)


def format_table(evaluations: Sequence[MethodEvaluation], kind: str,
                 buckets: Sequence[str] = ("(3-10]", "(10-20]", "all")) -> str:
    """Render Table III (kind='route') or Table IV (kind='time')."""
    if kind == "route":
        header_metrics = "HR@3    KRC    LSD"
    elif kind == "time":
        header_metrics = "RMSE    MAE    acc@20"
    else:
        raise ValueError(f"kind must be 'route' or 'time', got {kind!r}")
    lines = []
    bucket_header = "".join(f"{bucket:^24}" for bucket in buckets)
    lines.append(f"{'Method':16s}{bucket_header}")
    lines.append(f"{'':16s}" + "".join(f"{header_metrics:^24}" for _ in buckets))
    for evaluation in evaluations:
        cells = []
        for bucket in buckets:
            if bucket in evaluation.buckets:
                cells.append(f"{evaluation.row(bucket, kind):^24}")
            else:
                cells.append(f"{'--':^24}")
        lines.append(f"{evaluation.name:16s}" + "".join(cells))
    return "\n".join(lines)
