"""Case-study extraction (paper Fig. 6).

Selects illustrative test instances, collects the routes several
methods predict for them, renders ASCII route maps, and computes the
per-instance RMSE/MAE comparison the paper reports (M²G4RTP 11.56/10.43
vs FDNET 15.28/12.94 on its second case).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..data.entities import RTPInstance
from ..metrics import kendall_rank_correlation, mae, rmse


@dataclasses.dataclass
class CaseResult:
    """One method's prediction on one case instance."""

    method: str
    route: np.ndarray
    arrival_times: np.ndarray
    krc: float
    rmse: float
    mae: float


@dataclasses.dataclass
class CaseStudy:
    """An instance plus every method's prediction on it."""

    instance: RTPInstance
    results: List[CaseResult]

    def render(self) -> str:
        lines = [self.instance.describe()]
        aoi_of = self.instance.aoi_index_of_location()
        true_route = self.instance.route
        lines.append("  true route : " + _route_string(true_route, aoi_of))
        for result in self.results:
            lines.append(
                f"  {result.method:12s}: "
                + _route_string(result.route, aoi_of)
                + f"   KRC {result.krc:5.2f}  RMSE {result.rmse:6.2f}"
                  f"  MAE {result.mae:6.2f}")
        return "\n".join(lines)


def _route_string(route: np.ndarray, aoi_of: np.ndarray) -> str:
    """Route rendered as location indices grouped by AOI letters."""
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    parts = [f"{letters[aoi_of[i] % 26]}{i}" for i in route]
    return " -> ".join(parts)


def aoi_switch_count(route: np.ndarray, aoi_of: np.ndarray) -> int:
    """How many times a route crosses AOI boundaries.

    The paper's first case shows Graph2Route "travelling between two
    communities multiple times" — this statistic quantifies it.
    """
    ordered = np.asarray(aoi_of)[np.asarray(route)]
    return int(np.sum(ordered[1:] != ordered[:-1]))


def build_case_study(instance: RTPInstance,
                     predictors: Dict[str, Callable[[RTPInstance], Tuple]]
                     ) -> CaseStudy:
    """Run each named predictor on the instance and package the results."""
    results = []
    for method, predict in predictors.items():
        route, times = predict(instance)
        results.append(CaseResult(
            method=method,
            route=np.asarray(route),
            arrival_times=np.asarray(times),
            krc=kendall_rank_correlation(route, instance.route),
            rmse=rmse(times, instance.arrival_times),
            mae=mae(times, instance.arrival_times),
        ))
    return CaseStudy(instance=instance, results=results)


def select_interesting_cases(instances: Sequence[RTPInstance],
                             count: int = 2,
                             min_aois: int = 2) -> List[RTPInstance]:
    """Pick multi-AOI instances with the most locations (richest cases)."""
    candidates = [i for i in instances if i.num_aois >= min_aois]
    candidates.sort(key=lambda i: i.num_locations, reverse=True)
    if not candidates:
        candidates = list(instances)
    return candidates[:count]
