"""Inference-latency profiling (paper Table V).

Measures per-query wall-clock inference time for each method and pairs
it with the paper's asymptotic complexity expressions.  Each query is
timed through a :class:`~repro.obs.tracing.Span`, so Table V numbers
and the service's request traces share one timing methodology
(monotonic clock, per-query span).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Sequence

import numpy as np

from ..data.entities import RTPInstance
from ..obs.tracing import TraceCollector

#: The complexity column of Table V, keyed by method name.
COMPLEXITY: Dict[str, str] = {
    "Time-Greedy": "O(N log N)",
    "Distance-Greedy": "O(N log N)",
    "OR-Tools": "O(N^2) per 2-opt round",
    "OSquare": "O(t d F N)",
    "DeepRoute": "O(N^2 F + N F^2 + N^2 F^2)",
    "Graph2Route": "O(N F^2 + E F^2 + N^2 F^2)",
    "FDNET": "O(N F^2 + N^2 F^2)",
    "M2G4RTP": "O(N F^2 + E F^2 + N^2 F^2 + A^2 F^2)",
}


@dataclasses.dataclass
class LatencyReport:
    """Per-method inference-latency statistics in milliseconds."""

    name: str
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    num_queries: int

    @property
    def complexity(self) -> str:
        return COMPLEXITY.get(self.name, "--")

    def row(self) -> str:
        return (f"{self.name:16s} {self.complexity:40s} "
                f"{self.mean_ms:8.3f} {self.p50_ms:8.3f} {self.p95_ms:8.3f} "
                f"{self.p99_ms:8.3f}")


def profile_method(name: str, predict: Callable[[RTPInstance], object],
                   instances: Sequence[RTPInstance],
                   warmup: int = 2, repeats: int = 1) -> LatencyReport:
    """Time ``predict`` over ``instances`` and summarise latencies."""
    if not instances:
        raise ValueError("no instances to profile")
    for instance in instances[:warmup]:
        predict(instance)
    # A local collector, independent of the process-wide tracing
    # switch: every query gets its own span.
    collector = TraceCollector()
    for _ in range(repeats):
        for instance in instances:
            with collector.span("profile.predict", method=name):
                predict(instance)
    samples_arr = np.asarray([s.duration_ms for s in collector.roots])
    return LatencyReport(
        name=name,
        mean_ms=float(samples_arr.mean()),
        p50_ms=float(np.percentile(samples_arr, 50)),
        p95_ms=float(np.percentile(samples_arr, 95)),
        p99_ms=float(np.percentile(samples_arr, 99)),
        num_queries=samples_arr.size,
    )


def format_latency_table(reports: Sequence[LatencyReport]) -> str:
    """Render Table V."""
    header = (f"{'Method':16s} {'Inference Time Complexity':40s} "
              f"{'mean ms':>8s} {'p50 ms':>8s} {'p95 ms':>8s} {'p99 ms':>8s}")
    return "\n".join([header] + [report.row() for report in reports])
