"""Error analysis beyond the paper's aggregate tables.

Tools for understanding *where* a model's error lives:

* per-route-position error curves (does error accumulate along the
  route, the failure mode the paper attributes to two-step designs?);
* calibration of predicted vs. actual arrival times;
* metric breakdowns by instance attribute (weather, courier, size).
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..data.entities import RTPInstance
from ..metrics import kendall_rank_correlation
from .evaluator import PredictFn


@dataclasses.dataclass
class PositionErrorCurve:
    """Mean |error| of the time prediction at each true route position."""

    positions: np.ndarray   # 1-indexed route positions
    mae: np.ndarray
    counts: np.ndarray

    def render(self, width: int = 40) -> str:
        peak = self.mae.max() if self.mae.size and self.mae.max() > 0 else 1.0
        lines = ["position   MAE(min)  n"]
        for position, value, count in zip(self.positions, self.mae, self.counts):
            bar = "#" * int(width * value / peak)
            lines.append(f"{position:8d} {value:9.2f} {count:4d}  {bar}")
        return "\n".join(lines)


def position_error_curve(predict: PredictFn,
                         instances: Sequence[RTPInstance],
                         max_position: int = 20) -> PositionErrorCurve:
    """Aggregate time error by the location's position in the true route."""
    sums = np.zeros(max_position)
    counts = np.zeros(max_position, dtype=np.int64)
    for instance in instances:
        _, times = predict(instance)
        ranks = instance.location_ranks()
        for location_index in range(instance.num_locations):
            position = int(ranks[location_index])
            if position >= max_position:
                continue
            error = abs(float(times[location_index])
                        - float(instance.arrival_times[location_index]))
            sums[position] += error
            counts[position] += 1
    mask = counts > 0
    return PositionErrorCurve(
        positions=np.arange(1, max_position + 1)[mask],
        mae=sums[mask] / counts[mask],
        counts=counts[mask],
    )


@dataclasses.dataclass
class CalibrationReport:
    """Linear calibration of predicted vs. actual arrival times."""

    slope: float
    intercept: float
    correlation: float
    mean_bias: float   # mean(predicted - actual); >0 means over-estimating

    def render(self) -> str:
        return (f"calibration: predicted ~= {self.slope:.2f} * actual "
                f"+ {self.intercept:.1f} (r={self.correlation:.2f}, "
                f"bias={self.mean_bias:+.1f} min)")


def calibration_report(predict: PredictFn,
                       instances: Sequence[RTPInstance]) -> CalibrationReport:
    """Fit ``predicted = slope * actual + intercept`` over all locations."""
    predicted: List[float] = []
    actual: List[float] = []
    for instance in instances:
        _, times = predict(instance)
        predicted.extend(float(t) for t in times)
        actual.extend(float(t) for t in instance.arrival_times)
    predicted_arr = np.asarray(predicted)
    actual_arr = np.asarray(actual)
    if predicted_arr.size < 2:
        raise ValueError("need at least two locations for calibration")
    slope, intercept = np.polyfit(actual_arr, predicted_arr, deg=1)
    correlation = float(np.corrcoef(actual_arr, predicted_arr)[0, 1])
    return CalibrationReport(
        slope=float(slope),
        intercept=float(intercept),
        correlation=correlation,
        mean_bias=float(np.mean(predicted_arr - actual_arr)),
    )


def breakdown_by(predict: PredictFn, instances: Sequence[RTPInstance],
                 key: Callable[[RTPInstance], object]
                 ) -> Dict[object, Dict[str, float]]:
    """KRC and time-MAE per group (e.g. ``key=lambda i: i.weather``)."""
    grouped: Dict[object, List[RTPInstance]] = defaultdict(list)
    for instance in instances:
        grouped[key(instance)].append(instance)

    result: Dict[object, Dict[str, float]] = {}
    for group, members in sorted(grouped.items(), key=lambda kv: str(kv[0])):
        krcs, maes = [], []
        for instance in members:
            route, times = predict(instance)
            krcs.append(kendall_rank_correlation(route, instance.route))
            maes.append(float(np.mean(np.abs(
                np.asarray(times) - instance.arrival_times))))
        result[group] = {
            "count": float(len(members)),
            "krc": float(np.mean(krcs)),
            "time_mae": float(np.mean(maes)),
        }
    return result


def format_breakdown(breakdown: Dict[object, Dict[str, float]],
                     label: str) -> str:
    """Render a :func:`breakdown_by` result as an aligned text table."""
    lines = [f"{label:>12s} {'n':>5s} {'KRC':>7s} {'timeMAE':>9s}"]
    for group, stats in breakdown.items():
        lines.append(f"{str(group):>12s} {int(stats['count']):5d} "
                     f"{stats['krc']:7.3f} {stats['time_mae']:9.2f}")
    return "\n".join(lines)
