"""SVG rendering of route maps (the visual half of Fig. 6).

Produces dependency-free SVG files: one panel per method, locations as
dots coloured by AOI, the route as a polyline starting at the courier
position.  Used by the case-study bench to write viewable artefacts
next to the text tables.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from ..data.entities import RTPInstance
from .case_study import CaseStudy

#: AOI colour cycle (colour-blind-friendly-ish).
_COLORS = ["#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee",
           "#aa3377", "#bbbbbb", "#999933", "#882255", "#44aa99"]

_PANEL = 260
_MARGIN = 28


def _project(instance: RTPInstance):
    """Map lon/lat to panel-local x/y (y flipped, aspect preserved)."""
    points = np.vstack([instance.location_coords(),
                        [instance.courier_position]])
    low = points.min(axis=0)
    span = points.max(axis=0) - low
    span[span == 0] = 1e-9
    scale = (_PANEL - 2 * _MARGIN) / span.max()

    def project(lon: float, lat: float):
        x = _MARGIN + (lon - low[0]) * scale
        y = _PANEL - _MARGIN - (lat - low[1]) * scale
        return x, y
    return project


def _panel(instance: RTPInstance, route: np.ndarray, title: str,
           offset_x: int) -> str:
    project = _project(instance)
    aoi_of = instance.aoi_index_of_location()
    parts = [f'<g transform="translate({offset_x},0)">']
    parts.append(f'<rect x="1" y="1" width="{_PANEL - 2}" height="{_PANEL - 2}" '
                 'fill="white" stroke="#ddd"/>')
    parts.append(f'<text x="{_PANEL / 2}" y="16" text-anchor="middle" '
                 f'font-size="12" font-family="sans-serif">{title}</text>')

    # Route polyline: courier position then stops in visit order.
    points = [project(*instance.courier_position)]
    points += [project(*instance.locations[int(i)].coord) for i in route]
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    parts.append(f'<polyline points="{path}" fill="none" stroke="#555" '
                 'stroke-width="1.5" stroke-dasharray="none" opacity="0.85"/>')

    # Courier start marker.
    cx, cy = points[0]
    parts.append(f'<rect x="{cx - 4:.1f}" y="{cy - 4:.1f}" width="8" height="8" '
                 'fill="#222"/>')

    # Location dots coloured by AOI, numbered by visit order.
    order = {int(node): position + 1 for position, node in enumerate(route)}
    for i, location in enumerate(instance.locations):
        x, y = project(*location.coord)
        color = _COLORS[aoi_of[i] % len(_COLORS)]
        parts.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="6" fill="{color}" '
                     'stroke="#333" stroke-width="0.7"/>')
        parts.append(f'<text x="{x:.1f}" y="{y + 3:.1f}" text-anchor="middle" '
                     f'font-size="8" font-family="sans-serif" fill="white">'
                     f'{order[i]}</text>')
    parts.append("</g>")
    return "\n".join(parts)


def render_case_svg(case: CaseStudy) -> str:
    """One SVG: the true route panel plus one panel per method."""
    panels = [("true route", case.instance.route)]
    panels += [(result.method, result.route) for result in case.results]
    width = _PANEL * len(panels)
    body = [_panel(case.instance, route, title, index * _PANEL)
            for index, (title, route) in enumerate(panels)]
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{_PANEL}" viewBox="0 0 {width} {_PANEL}">\n'
        + "\n".join(body) + "\n</svg>"
    )


def write_case_svgs(cases: Sequence[CaseStudy],
                    directory: Union[str, Path],
                    prefix: str = "case") -> Sequence[Path]:
    """Write one SVG per case study; returns the written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for index, case in enumerate(cases, start=1):
        path = directory / f"{prefix}{index}.svg"
        path.write_text(render_case_svg(case))
        paths.append(path)
    return paths
