"""Multi-seed evaluation with paper-style "mean±std" cells.

Tables III/IV report every learned method as ``74.46±0.01`` — the mean
and standard deviation over repeated training runs.  This module runs a
model factory across seeds and aggregates the six metrics the same way.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..data.dataset import RTPDataset
from .evaluator import PredictFn, evaluate_method


@dataclasses.dataclass
class MeanStd:
    """A mean±std cell."""

    mean: float
    std: float

    def __str__(self) -> str:
        return f"{self.mean:.2f}±{self.std:.2f}"


@dataclasses.dataclass
class SeededEvaluation:
    """Aggregated metrics of one method over several training seeds."""

    name: str
    seeds: List[int]
    metrics: Dict[str, Dict[str, MeanStd]]  # bucket -> metric -> cell

    def cell(self, bucket: str, metric: str) -> MeanStd:
        return self.metrics[bucket][metric]

    def row(self, bucket: str, kind: str) -> str:
        block = self.metrics[bucket]
        if kind == "route":
            keys = ("hr_at_3", "krc", "lsd")
        elif kind == "time":
            keys = ("rmse", "mae", "acc_at_20")
        else:
            raise ValueError(f"kind must be 'route' or 'time', got {kind!r}")
        return "  ".join(str(block[key]) for key in keys)


_METRIC_KEYS = ("hr_at_3", "krc", "lsd", "rmse", "mae", "acc_at_20")


def evaluate_over_seeds(name: str,
                        predictor_factory: Callable[[int], PredictFn],
                        test: RTPDataset,
                        seeds: Sequence[int],
                        buckets: Sequence[str] = ("all",)) -> SeededEvaluation:
    """Evaluate ``predictor_factory(seed)`` for each seed and aggregate.

    The factory receives a seed and must return a fitted predictor —
    typically it constructs a model with that seed, trains it and
    returns :func:`~repro.eval.evaluator.model_predictor` of it.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    per_seed = []
    for seed in seeds:
        predict = predictor_factory(int(seed))
        per_seed.append(evaluate_method(name, predict, test, buckets=buckets))

    metrics: Dict[str, Dict[str, MeanStd]] = {}
    for bucket in buckets:
        reports = [evaluation.buckets[bucket] for evaluation in per_seed
                   if bucket in evaluation.buckets]
        if not reports:
            continue
        metrics[bucket] = {}
        for key in _METRIC_KEYS:
            values = np.array([getattr(report, key) for report in reports])
            metrics[bucket][key] = MeanStd(float(values.mean()),
                                           float(values.std()))
    return SeededEvaluation(name=name, seeds=list(seeds), metrics=metrics)


def format_seeded_table(evaluations: Sequence[SeededEvaluation], kind: str,
                        buckets: Sequence[str] = ("all",)) -> str:
    """Render a Table III/IV-style grid with mean±std cells."""
    if kind == "route":
        header = "HR@3          KRC          LSD"
    elif kind == "time":
        header = "RMSE          MAE          acc@20"
    else:
        raise ValueError(f"kind must be 'route' or 'time', got {kind!r}")
    lines = [f"{'Method':16s}" + "".join(f"{bucket:^42}" for bucket in buckets)]
    lines.append(f"{'':16s}" + "".join(f"{header:^42}" for _ in buckets))
    for evaluation in evaluations:
        cells = []
        for bucket in buckets:
            if bucket in evaluation.metrics:
                cells.append(f"{evaluation.row(bucket, kind):^42}")
            else:
                cells.append(f"{'--':^42}")
        lines.append(f"{evaluation.name:16s}" + "".join(cells))
    return "\n".join(lines)
