"""Trace-context propagation across process and thread boundaries.

A trace that crosses a queue — the coordinator dispatching a gradient
shard to a worker process, a request ticket waiting for the
micro-batcher's flush thread — would otherwise fall apart into
disconnected process-local fragments (or, worse, the worker-side spans
would land in the worker's own collector and be silently dropped when
the process exits).  This module is the wire protocol that keeps the
tree whole:

* :class:`SpanContext` — the (trace id, span id) pair identifying "the
  span this work logically belongs under"; :meth:`SpanContext.to_wire`
  is a plain picklable tuple, matching the tuple-message discipline of
  :mod:`repro.parallel.worker`;
* :func:`capture_context` — snapshot the caller's innermost active
  span as a wire tuple (``None`` when tracing is off), taken at
  dispatch time and shipped with the task;
* :class:`worker_span_session` — worker-side context manager: installs
  a fresh process-local collector for the duration of one task so the
  worker's spans are captured even though the parent's collector lives
  in another address space, then :meth:`~worker_span_session.export`-s
  them as plain dicts to ship back with the result;
* :func:`merge_worker_spans` — coordinator-side stitch: rebuilds the
  shipped spans and attaches them under the span that dispatched the
  work (fresh local ids, durations preserved), yielding one
  cross-process tree.

The round trip::

    # coordinator, at dispatch                 # worker process
    ctx = capture_context()                    with worker_span_session(ctx) as s:
    queue.put((task, ctx))                         with span("worker.step"):
                                                       ...work...
    # coordinator, at collect                      result = (data, s.export())
    data, spans = queue.get()
    merge_worker_spans(spans, ctx)

Everything degrades to no-ops when tracing is disabled on the
coordinator: ``capture_context`` returns ``None``, the worker session
stays inactive (unless the worker itself has tracing on), ``export``
returns ``[]`` and ``merge_worker_spans`` does nothing.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from . import tracing
from .tracing import Span, TraceCollector

__all__ = [
    "SpanContext", "current_context", "capture_context",
    "worker_span_session", "merge_worker_spans",
]

#: Wire form of a span context: a plain picklable (trace_id, span_id).
WireContext = Tuple[str, str]


@dataclasses.dataclass(frozen=True)
class SpanContext:
    """Identity of a span that work on another thread/process joins."""

    trace_id: str
    span_id: str

    def to_wire(self) -> WireContext:
        """Plain-tuple form for queue messages (picklable, no class)."""
        return (self.trace_id, self.span_id)

    @staticmethod
    def from_wire(wire: Optional[Sequence[str]]) -> Optional["SpanContext"]:
        """Rebuild from :meth:`to_wire` output; ``None`` passes through."""
        if wire is None:
            return None
        trace_id, span_id = wire
        return SpanContext(trace_id, span_id)


def current_context() -> Optional[SpanContext]:
    """Context of the innermost active span, or ``None`` (tracing off /
    no span open on this thread)."""
    active = tracing.current_span()
    if active is None or active.span_id is None:
        return None
    return SpanContext(active.trace_id, active.span_id)


def capture_context() -> Optional[WireContext]:
    """:func:`current_context` in wire form, ready to put on a queue."""
    context = current_context()
    return context.to_wire() if context is not None else None


class worker_span_session:
    """Capture spans opened while one worker task runs.

    Active when the task shipped a parent context *or* the worker
    process already has tracing enabled (e.g. inherited via ``fork`` —
    writing into the inherited collector would be invisible to the
    parent, so a fresh one is installed either way and the previous
    collector is restored on exit).  Inactive sessions cost one global
    read and export nothing.
    """

    def __init__(self, wire_context: Optional[Sequence[str]] = None):
        self.context = SpanContext.from_wire(wire_context)
        self._collector: Optional[TraceCollector] = None
        self._previous: Optional[TraceCollector] = None

    def __enter__(self) -> "worker_span_session":
        self._previous = tracing.get_collector()
        if self.context is not None or self._previous is not None:
            self._collector = TraceCollector()
            tracing.enable_tracing(self._collector)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._collector is not None:
            if self._previous is not None:
                tracing.enable_tracing(self._previous)
            else:
                tracing.disable_tracing()
        return False

    @property
    def active(self) -> bool:
        return self._collector is not None

    def export(self) -> List[Dict[str, Any]]:
        """The session's root spans as plain dicts (queue payload)."""
        if self._collector is None:
            return []
        with self._collector._lock:
            return [root.to_dict() for root in self._collector.roots]


def merge_worker_spans(records: Sequence[Dict[str, Any]],
                       wire_context: Optional[Sequence[str]] = None,
                       collector: Optional[TraceCollector] = None) -> int:
    """Stitch shipped span records into the (local) active collector.

    Each record is rebuilt into a :class:`Span` tree (durations frozen
    to the exported values) and attached under the span named by
    ``wire_context`` when that span lives in the target collector —
    else as a new root.  Returns the number of roots merged; a no-op
    (0) when tracing is off here or there is nothing to merge.
    """
    if not records:
        return 0
    collector = collector if collector is not None else \
        tracing.get_collector()
    if collector is None:
        return 0
    context = SpanContext.from_wire(wire_context)
    parent_id = context.span_id if context is not None else None
    for record in records:
        collector.attach(Span.from_dict(record), parent_id=parent_id)
    return len(records)
