"""Append-only JSONL event sink for training telemetry.

The :class:`~repro.training.trainer.Trainer` writes one record per
epoch (loss, validation loss, per-task sigma weights, gradient norm,
learning rate, epoch seconds) through an :class:`EventLog`.  Records
are flushed line-by-line, so a long run can be inspected mid-flight
with ``tail -f`` or ``repro-rtp obs --file events.jsonl`` and plotted
afterwards without the process that produced them.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["EventLog", "read_jsonl", "summarize_events"]


class EventLog:
    """Append-only JSONL sink; one JSON object per :meth:`log` call."""

    def __init__(self, path):
        self.path = Path(path)
        self._handle = None
        self._seq = 0

    # ------------------------------------------------------------------
    def log(self, event_type: str, **fields: Any) -> Dict[str, Any]:
        """Append one event record; returns the written dict."""
        record: Dict[str, Any] = {
            "type": event_type,
            "seq": self._seq,
            "ts": round(time.time(), 6),
        }
        record.update(fields)
        if self._handle is None:
            self._handle = open(self.path, "a")
        json.dump(record, self._handle)
        self._handle.write("\n")
        self._handle.flush()
        self._seq += 1
        return record

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def read_jsonl(path) -> List[Dict[str, Any]]:
    """Parse a JSONL file (trace export or event log) into dicts."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _fmt(value: Optional[float], width: int = 10, digits: int = 4) -> str:
    if value is None:
        return " " * (width - 2) + "--"
    return f"{value:{width}.{digits}f}"


def summarize_events(records: Sequence[Dict[str, Any]]) -> str:
    """Text summary of a training event log (per-epoch table)."""
    epochs = [r for r in records if r.get("type") == "epoch"]
    lines = []
    if epochs:
        header = (f"{'epoch':>5s} {'train':>10s} {'val':>10s} "
                  f"{'grad norm':>10s} {'lr':>10s} {'seconds':>8s}")
        lines.append(header)
        for record in epochs:
            lines.append(
                f"{record.get('epoch', -1):5d} "
                f"{_fmt(record.get('train_loss'))} "
                f"{_fmt(record.get('val_loss'))} "
                f"{_fmt(record.get('grad_norm'))} "
                f"{_fmt(record.get('lr'), digits=6)} "
                f"{record.get('seconds', 0.0):8.2f}")
    fits = [r for r in records if r.get("type") == "fit"]
    if fits:
        final = fits[-1]
        lines.append(
            f"fit: {final.get('epochs', len(epochs))} epochs, "
            f"best epoch {final.get('best_epoch', -1)}, "
            f"total {final.get('total_seconds', 0.0):.2f} s")
    sigma_records = [r.get("sigmas") for r in epochs if r.get("sigmas")]
    if sigma_records:
        last = sigma_records[-1]
        sigma_text = ", ".join(f"{k}={v:.4f}" for k, v in sorted(last.items()))
        lines.append(f"final sigmas: {sigma_text}")
    if not lines:
        lines.append("no epoch/fit events found")
    return "\n".join(lines)
