"""Named metric instruments with a Prometheus-exposition renderer.

One :class:`MetricsRegistry` holds every instrument of a process —
service counters, training gauges, autodiff-op profiles — so a single
``registry.render()`` produces the full exposition text.  Instruments
are get-or-create by name: asking twice for ``rtp_queries_total``
returns the same :class:`Counter`, which is how the service monitor,
the trainer and the op profiler share a registry without coordination.

Label support follows the Prometheus client idiom::

    errors = registry.counter("rtp_errors_total", "Failed requests",
                              labels=("path",))
    errors.labels(path="batch").inc(4)

Instruments declared without labels are used directly
(``counter.inc()``, ``gauge.set(3.0)``, ``histogram.observe(12.5)``).

Concurrency contract:

* **Threads** — every write (``inc``/``set``/``observe``) and
  ``render()`` runs under the instrument's lock, so instruments are
  safe to hammer from many threads (the service monitor and the
  parallel-training main loop do exactly that); no increments are lost.
* **Processes** — a registry is **per-process** state and is *not*
  shared across ``fork``/``spawn``; each process that wants metrics
  owns its own registry.  The parallel-training worker pool follows a
  single-writer design: workers ship raw step statistics back over the
  result queue and only the coordinator process writes them into its
  registry (see :mod:`repro.parallel`).
"""

from __future__ import annotations

import threading
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

from .tracing import current_trace_id

__all__ = [
    "Counter", "Gauge", "Histogram", "Summary", "MetricsRegistry",
    "DEFAULT_HISTOGRAM_BUCKETS", "DEFAULT_MAX_LABEL_SETS",
    "OVERFLOW_LABEL_VALUE",
]

#: Generic latency-shaped default buckets (milliseconds).
DEFAULT_HISTOGRAM_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
                             float("inf"))

#: Label-set cardinality cap per instrument (see ``max_label_sets``).
DEFAULT_MAX_LABEL_SETS = 256

#: Label value every clamped (over-the-cap) label set collapses into.
OVERFLOW_LABEL_VALUE = "__overflow__"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6f}".rstrip("0").rstrip(".")


def _format_labels(names: Sequence[str], values: Sequence[str],
                   extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [f'{name}="{value}"' for name, value in zip(names, values)]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Instrument:
    """Base class: name, help text, label names, per-labelset state.

    ``max_label_sets`` caps the number of distinct label sets one
    instrument can hold (default :data:`DEFAULT_MAX_LABEL_SETS`).
    Unbounded label values — per-courier quality segments, user ids —
    would otherwise grow the registry without limit; past the cap every
    *new* label set is clamped into a single ``__overflow__`` child (a
    one-time :class:`RuntimeWarning` is emitted).  Existing label sets
    keep updating normally.
    """

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "",
                 labels: Sequence[str] = (),
                 max_label_sets: Optional[int] = None):
        self.name = name
        self.help = help_text
        self.label_names = tuple(labels)
        self.max_label_sets = (DEFAULT_MAX_LABEL_SETS
                               if max_label_sets is None
                               else int(max_label_sets))
        if self.max_label_sets < 1:
            raise ValueError("max_label_sets must be >= 1")
        self._overflow_warned = False
        self._values: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def labels(self, **kwargs: object) -> "_Bound":
        """Bind a concrete label set, e.g. ``c.labels(path="batch")``."""
        if set(kwargs) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(kwargs)}")
        key = tuple(str(kwargs[name]) for name in self.label_names)
        return _Bound(self, key)

    def _unlabeled(self) -> Tuple[str, ...]:
        if self.label_names:
            raise ValueError(
                f"{self.name} has labels {self.label_names}; "
                "use .labels(...) to select a child")
        return ()

    def _admit_unlocked(self, key: Tuple[str, ...]) -> Tuple[str, ...]:
        """Cardinality guard: clamp new over-the-cap label sets."""
        if not key or len(self._values) < self.max_label_sets:
            return key
        overflow = (OVERFLOW_LABEL_VALUE,) * len(self.label_names)
        if key == overflow:
            return key
        if not self._overflow_warned:
            self._overflow_warned = True
            warnings.warn(
                f"{self.name}: label cardinality reached the cap of "
                f"{self.max_label_sets} label sets; new label sets are "
                f"clamped to {OVERFLOW_LABEL_VALUE!r} (raise "
                f"max_label_sets if this segmentation is intended)",
                RuntimeWarning, stacklevel=4)
        return overflow

    def _cell_unlocked(self, key: Tuple[str, ...]):
        cell = self._values.get(key)
        if cell is None:
            key = self._admit_unlocked(key)
            cell = self._values.get(key)
            if cell is None:
                cell = self._new_cell()
                self._values[key] = cell
        return cell

    def _cell(self, key: Tuple[str, ...]):
        with self._lock:
            return self._cell_unlocked(key)

    def _mutate(self, key: Tuple[str, ...], update) -> None:
        """Run ``update(cell)`` under the lock — the only write path.

        Fetch-then-mutate outside the lock would drop concurrent
        updates; every ``inc``/``set``/``observe`` funnels through here.
        """
        with self._lock:
            update(self._cell_unlocked(key))

    def _new_cell(self):
        raise NotImplementedError

    def reset(self) -> None:
        """Drop all recorded values (all label children)."""
        with self._lock:
            self._values.clear()

    # ------------------------------------------------------------------
    def render(self) -> List[str]:
        """Exposition lines for this instrument (TYPE line included)."""
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        # Format under the lock so a concurrent observe cannot yield a
        # torn cell (e.g. a histogram sum without its count).
        with self._lock:
            items = sorted(self._values.items())
            if not items and not self.label_names:
                items = [((), self._new_cell())]
            for key, cell in items:
                lines.extend(self._render_cell(key, cell))
        return lines

    def _render_cell(self, key, cell) -> List[str]:
        raise NotImplementedError


class _Bound:
    """One label child of an instrument; forwards the write methods."""

    __slots__ = ("_instrument", "_key")

    def __init__(self, instrument: _Instrument, key: Tuple[str, ...]):
        self._instrument = instrument
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._instrument._inc(self._key, amount)

    def set(self, value: float) -> None:
        self._instrument._set(self._key, value)

    def observe(self, value: float,
                trace_id: Optional[str] = None) -> None:
        if trace_id is None:
            self._instrument._observe(self._key, value)
        else:
            self._instrument._observe(self._key, value, trace_id=trace_id)

    @property
    def value(self) -> float:
        return self._instrument._get(self._key)


class Counter(_Instrument):
    """Monotonically increasing count (``*_total`` convention)."""

    kind = "counter"

    def _new_cell(self):
        return [0.0]

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (label-less form)."""
        self._inc(self._unlabeled(), amount)

    def _inc(self, key, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters cannot decrease")

        def update(cell):
            cell[0] += amount

        self._mutate(key, update)

    def _get(self, key) -> float:
        return self._cell(key)[0]

    @property
    def value(self) -> float:
        """Current count (label-less form)."""
        return self._get(self._unlabeled())

    def _render_cell(self, key, cell) -> List[str]:
        labels = _format_labels(self.label_names, key)
        return [f"{self.name}{labels} {_format_value(cell[0])}"]


class Gauge(_Instrument):
    """A value that can go up and down (last-write-wins)."""

    kind = "gauge"

    def _new_cell(self):
        return [0.0]

    def set(self, value: float) -> None:
        """Set the current value (label-less form)."""
        self._set(self._unlabeled(), value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the current value (label-less form)."""
        self._inc(self._unlabeled(), amount)

    def _set(self, key, value: float) -> None:
        def update(cell):
            cell[0] = float(value)

        self._mutate(key, update)

    def _inc(self, key, amount: float) -> None:
        def update(cell):
            cell[0] += amount

        self._mutate(key, update)

    def _get(self, key) -> float:
        return self._cell(key)[0]

    @property
    def value(self) -> float:
        """Current value (label-less form)."""
        return self._get(self._unlabeled())

    def _render_cell(self, key, cell) -> List[str]:
        labels = _format_labels(self.label_names, key)
        return [f"{self.name}{labels} {_format_value(cell[0])}"]


class Summary(_Instrument):
    """Streaming sum/count pair (``_sum`` and ``_count`` series)."""

    kind = "summary"

    def _new_cell(self):
        return [0.0, 0]  # sum, count

    def observe(self, value: float) -> None:
        """Record one observation (label-less form)."""
        self._observe(self._unlabeled(), value)

    def _observe(self, key, value: float) -> None:
        def update(cell):
            cell[0] += float(value)
            cell[1] += 1

        self._mutate(key, update)

    def _get(self, key) -> float:
        return self._cell(key)[0]

    @property
    def sum(self) -> float:
        """Total of all observations (label-less form)."""
        return self._cell(self._unlabeled())[0]

    @property
    def count(self) -> int:
        """Number of observations (label-less form)."""
        return self._cell(self._unlabeled())[1]

    def _render_cell(self, key, cell) -> List[str]:
        labels = _format_labels(self.label_names, key)
        return [
            f"{self.name}_sum{labels} {cell[0]:.3f}",
            f"{self.name}_count{labels} {cell[1]}",
        ]


class Histogram(_Instrument):
    """Bucketed distribution with cumulative Prometheus rendering.

    ``exemplars=K`` (default 0: off) keeps, per label set, the K
    *largest* observations seen together with the trace id active when
    each was recorded — the join from a p99 spike in the exposition to
    the exact trace (and, via a flight recorder, the request payload)
    that caused it.  Pass ``trace_id=`` to :meth:`observe` explicitly
    or let it auto-capture
    :func:`~repro.obs.tracing.current_trace_id`; observations with no
    trace id never become exemplars.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 labels: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_HISTOGRAM_BUCKETS,
                 exemplars: int = 0,
                 max_label_sets: Optional[int] = None):
        super().__init__(name, help_text, labels,
                         max_label_sets=max_label_sets)
        buckets = tuple(float(b) for b in buckets)
        if list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted")
        if not buckets or buckets[-1] != float("inf"):
            buckets = buckets + (float("inf"),)
        self.buckets = buckets
        if exemplars < 0:
            raise ValueError("exemplars must be >= 0")
        self.max_exemplars = int(exemplars)
        self._exemplar_seq = 0

    def _new_cell(self):
        cell = {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
        if self.max_exemplars:
            cell["exemplars"] = []
        return cell

    def observe(self, value: float,
                trace_id: Optional[str] = None) -> None:
        """Record one observation (label-less form)."""
        self._observe(self._unlabeled(), value, trace_id=trace_id)

    def _observe(self, key, value: float,
                 trace_id: Optional[str] = None) -> None:
        if self.max_exemplars and trace_id is None:
            trace_id = current_trace_id()

        def update(cell):
            cell["sum"] += float(value)
            cell["count"] += 1
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    cell["counts"][index] += 1
                    break
            if self.max_exemplars and trace_id is not None:
                self._exemplar_seq += 1
                entries = cell["exemplars"]
                entries.append({"value": float(value),
                                "trace_id": trace_id,
                                "seq": self._exemplar_seq})
                if len(entries) > self.max_exemplars:
                    # Keep the K largest; among equals, evict the oldest.
                    smallest = min(
                        range(len(entries)),
                        key=lambda i: (entries[i]["value"],
                                       entries[i]["seq"]))
                    entries.pop(smallest)

        self._mutate(key, update)

    def exemplars(self, **labels: object) -> List[Dict[str, object]]:
        """Tail exemplars of one cell, largest value first."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(labels)}")
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            cell = self._cell_unlocked(key)
            entries = [dict(e) for e in cell.get("exemplars", ())]
        return sorted(entries,
                      key=lambda e: (-e["value"], -e["seq"]))

    @property
    def count(self) -> int:
        """Number of observations (label-less form)."""
        return self._cell(self._unlabeled())["count"]

    @property
    def sum(self) -> float:
        """Total of all observations (label-less form)."""
        return self._cell(self._unlabeled())["sum"]

    def snapshot(self, **labels: object) -> Dict[str, object]:
        """Consistent copy of one cell: bounds, per-bucket counts, sum.

        Taken under the instrument lock, so a concurrent ``observe``
        can never yield a torn view (a count without its sum).  The
        load harness reads these to build its JSON artifacts from the
        same registry state operators scrape.
        """
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(labels)}")
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            cell = self._cell_unlocked(key)
            snapshot = {
                "upper_bounds": list(self.buckets),
                "counts": list(cell["counts"]),
                "sum": float(cell["sum"]),
                "count": int(cell["count"]),
            }
            if self.max_exemplars:
                snapshot["exemplars"] = [dict(e)
                                         for e in cell["exemplars"]]
            return snapshot

    def _render_cell(self, key, cell) -> List[str]:
        lines = []
        cumulative = 0
        for bound, count in zip(self.buckets, cell["counts"]):
            cumulative += count
            le = "+Inf" if bound == float("inf") else f"{bound:g}"
            labels = _format_labels(self.label_names, key, extra=("le", le))
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
        labels = _format_labels(self.label_names, key)
        lines.append(f"{self.name}_sum{labels} {cell['sum']:.3f}")
        lines.append(f"{self.name}_count{labels} {cell['count']}")
        return lines


class MetricsRegistry:
    """Get-or-create home for instruments; renders one exposition."""

    def __init__(self):
        self._instruments: Dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help_text: str,
                       labels: Sequence[str], **kwargs) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"{name} already registered as {existing.kind}, "
                        f"cannot re-register as {cls.kind}")
                if tuple(labels) != existing.label_names:
                    raise ValueError(
                        f"{name} already registered with labels "
                        f"{existing.label_names}, got {tuple(labels)}")
                return existing
            instrument = cls(name, help_text, labels, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = (),
                max_label_sets: Optional[int] = None) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help_text, labels,
                                   max_label_sets=max_label_sets)

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = (),
              max_label_sets: Optional[int] = None) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help_text, labels,
                                   max_label_sets=max_label_sets)

    def summary(self, name: str, help_text: str = "",
                labels: Sequence[str] = (),
                max_label_sets: Optional[int] = None) -> Summary:
        """Get or create a :class:`Summary`."""
        return self._get_or_create(Summary, name, help_text, labels,
                                   max_label_sets=max_label_sets)

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_HISTOGRAM_BUCKETS,
                  exemplars: int = 0,
                  max_label_sets: Optional[int] = None) -> Histogram:
        """Get or create a :class:`Histogram` with ``buckets``.

        Construction kwargs (``buckets``/``exemplars``/
        ``max_label_sets``) apply on first registration only; later
        get-or-create calls return the existing instrument unchanged.
        """
        return self._get_or_create(Histogram, name, help_text, labels,
                                   buckets=buckets, exemplars=exemplars,
                                   max_label_sets=max_label_sets)

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[_Instrument]:
        """Look up an instrument by name, or ``None``."""
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> List[str]:
        """Registered instrument names, in registration order."""
        with self._lock:
            return list(self._instruments)

    def reset(self) -> None:
        """Zero every instrument (keeps registrations)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()

    def render(self) -> str:
        """Full Prometheus-exposition text of every instrument."""
        with self._lock:
            instruments = list(self._instruments.values())
        lines: List[str] = []
        for instrument in instruments:
            lines.extend(instrument.render())
        return "\n".join(lines)
