"""Self-contained JSON-Schema-subset interpreter for pinned artifacts.

Machine-readable artifacts in this repo (the load harness's run
artifact, the observability layer's quality/drift report) are pinned by
checked-in schema files so their shape cannot silently drift across
PRs.  Third-party validators are out of bounds (the repo is
stdlib+numpy only), so this module interprets the subset of JSON Schema
those files actually use:

``type`` (including type lists), ``enum``, ``minimum``, ``required``,
``properties``, ``additionalProperties: false``, ``items``, and the
local extension ``patternValues`` (a homogeneous map: every value of
the object validates against one schema).

:func:`check_schema` raises ``error_cls`` (default
:class:`SchemaValidationError`) on the first violation, with a JSON
path pinpointing it.
"""

from __future__ import annotations

from typing import Dict, Type

__all__ = ["SchemaValidationError", "check_schema"]


class SchemaValidationError(ValueError):
    """The value violates the schema."""


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def check_schema(value, schema: Dict[str, object], path: str,
                 error_cls: Type[Exception] = SchemaValidationError) -> None:
    """Validate ``value`` against the schema subset described above."""
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](value) for t in types):
            raise error_cls(
                f"{path}: expected type {expected}, "
                f"got {type(value).__name__}")
    if "enum" in schema and value not in schema["enum"]:
        raise error_cls(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) and value < schema["minimum"]:
        raise error_cls(
            f"{path}: {value} below minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                raise error_cls(f"{path}: missing key {key!r}")
        properties = schema.get("properties", {})
        for key, child in value.items():
            if key in properties:
                check_schema(child, properties[key], f"{path}.{key}",
                             error_cls)
            elif not schema.get("additionalProperties", True):
                raise error_cls(f"{path}: unexpected key {key!r}")
        extra = schema.get("patternValues")
        if extra is not None:   # homogeneous map: every value same schema
            for key, child in value.items():
                check_schema(child, extra, f"{path}.{key}", error_cls)
    if isinstance(value, list) and "items" in schema:
        for index, child in enumerate(value):
            check_schema(child, schema["items"], f"{path}[{index}]",
                         error_cls)
