"""Op-level profiling of the autodiff engine.

``profile_ops()`` is an opt-in instrumentation mode that wraps the
:class:`~repro.autodiff.tensor.Tensor` op dispatch — the arithmetic /
reduction / shape methods on the class plus the functional ops in
``repro.autodiff.ops`` and ``extra_ops`` — with timing shims::

    with profile_ops() as prof:
        model.predict(graph)
    print(prof.report(top_k=10))

Per op type it accumulates call counts, **self** wall time (time inside
the op minus time inside nested profiled ops, so composite ops like
``mean`` → ``sum`` + ``mul`` do not double-count), total result bytes
and the peak single-result allocation.  With profiling off nothing is
wrapped and the engine runs at full speed.

Patching strategy: ``Tensor`` methods are replaced on the class (dunder
dispatch always goes through the class, so every call site is covered);
module-level functional ops are additionally rebound in every loaded
``repro.*`` module that imported them by name.  Everything is restored
on exit by identity.
"""

from __future__ import annotations

import functools
import sys
import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from ..autodiff import extra_ops as _extra_ops
from ..autodiff import ops as _ops
from ..autodiff.tensor import Tensor

from .metrics import MetricsRegistry

__all__ = ["OpProfiler", "OpStat", "profile_ops"]

#: Tensor methods wrapped by the profiler (op dispatch surface).
TENSOR_METHODS = (
    "__add__", "__radd__", "__neg__", "__sub__", "__rsub__",
    "__mul__", "__rmul__", "__truediv__", "__rtruediv__", "__pow__",
    "__matmul__", "__getitem__",
    "sum", "mean", "max", "exp", "log", "sqrt", "abs", "tanh",
    "sigmoid", "relu", "leaky_relu", "reshape", "flatten", "transpose",
)

#: Functional ops wrapped by the profiler, per defining module.
FUNCTIONAL_OPS = {
    _ops: ("concat", "stack", "where", "maximum", "softmax",
           "log_softmax", "masked_softmax", "padded_gather",
           "cross_entropy", "mae_loss", "mse_loss", "huber_loss",
           "dropout"),
    _extra_ops: ("clip", "l2_norm", "logsumexp", "min_reduce", "minimum",
                 "softplus", "tensor_pow"),
}


class OpStat:
    """Accumulated statistics for one op type."""

    __slots__ = ("calls", "self_ms", "total_bytes", "peak_bytes")

    def __init__(self):
        self.calls = 0
        self.self_ms = 0.0
        self.total_bytes = 0
        self.peak_bytes = 0

    def record(self, self_ms: float, nbytes: int) -> None:
        """Fold one call into the running totals."""
        self.calls += 1
        self.self_ms += self_ms
        self.total_bytes += nbytes
        if nbytes > self.peak_bytes:
            self.peak_bytes = nbytes


def _display_name(name: str) -> str:
    return name.strip("_") if name.startswith("__") else name


class OpProfiler:
    """Accumulates per-op-type counts, self time and array bytes."""

    def __init__(self):
        self._stats: Dict[str, OpStat] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._patches: List[Tuple[object, str, object]] = []
        self._active = False

    # ------------------------------------------------------------------
    def _record(self, name: str, self_ms: float, nbytes: int) -> None:
        with self._lock:
            stat = self._stats.get(name)
            if stat is None:
                stat = OpStat()
                self._stats[name] = stat
            stat.record(self_ms, nbytes)

    def _wrap(self, name: str, fn):
        display = _display_name(name)
        local = self._local
        record = self._record

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            stack = getattr(local, "stack", None)
            if stack is None:
                stack = []
                local.stack = stack
            stack.append(0.0)  # nested-op time accumulator for this frame
            start = time.perf_counter()
            try:
                out = fn(*args, **kwargs)
            finally:
                elapsed = (time.perf_counter() - start) * 1000.0
                child_ms = stack.pop()
                if stack:
                    stack[-1] += elapsed
                nbytes = out.data.nbytes if isinstance(out, Tensor) else 0
                record(display, elapsed - child_ms, nbytes)
            return out

        wrapper.__wrapped_by_opprofiler__ = fn
        return wrapper

    # ------------------------------------------------------------------
    def start(self) -> "OpProfiler":
        """Install the dispatch shims (idempotent)."""
        if self._active:
            return self
        self._active = True
        for name in TENSOR_METHODS:
            original = getattr(Tensor, name)
            setattr(Tensor, name, self._wrap(name, original))
            self._patches.append((Tensor, name, original))
        for module, names in FUNCTIONAL_OPS.items():
            for name in names:
                original = getattr(module, name)
                wrapped = self._wrap(name, original)
                setattr(module, name, wrapped)
                self._patches.append((module, name, original))
                # Rebind by identity in every loaded repro.* module that
                # imported the function by name.
                for other in list(sys.modules.values()):
                    if other is None or other is module:
                        continue
                    if not getattr(other, "__name__", "").startswith("repro"):
                        continue
                    for attr, value in list(vars(other).items()):
                        if value is original:
                            setattr(other, attr, wrapped)
                            self._patches.append((other, attr, original))
        return self

    def stop(self) -> "OpProfiler":
        """Remove the shims, restoring every original by identity."""
        while self._patches:
            owner, name, original = self._patches.pop()
            setattr(owner, name, original)
        self._active = False
        return self

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, OpStat]:
        """Snapshot of the per-op statistics (name → :class:`OpStat`)."""
        with self._lock:
            return dict(self._stats)

    def total_ms(self) -> float:
        """Total profiled self time across every op type."""
        with self._lock:
            return sum(stat.self_ms for stat in self._stats.values())

    def report(self, top_k: int = 10) -> str:
        """Text table of the ``top_k`` op types by self wall time."""
        stats = self.stats()
        header = (f"{'op':<16s} {'calls':>8s} {'self ms':>10s} "
                  f"{'ms/call':>9s} {'total MB':>9s} {'peak KB':>9s}")
        lines = [header]
        ranked = sorted(stats.items(), key=lambda item: -item[1].self_ms)
        for name, stat in ranked[:top_k]:
            lines.append(
                f"{name:<16s} {stat.calls:8d} {stat.self_ms:10.3f} "
                f"{stat.self_ms / max(stat.calls, 1):9.4f} "
                f"{stat.total_bytes / 1e6:9.3f} "
                f"{stat.peak_bytes / 1e3:9.2f}")
        if len(ranked) > top_k:
            rest = ranked[top_k:]
            rest_ms = sum(stat.self_ms for _, stat in rest)
            lines.append(f"{'(other)':<16s} "
                         f"{sum(s.calls for _, s in rest):8d} {rest_ms:10.3f}")
        return "\n".join(lines)

    def publish(self, registry: MetricsRegistry) -> None:
        """Emit the accumulated stats into a shared metrics registry."""
        calls = registry.counter("autodiff_op_calls_total",
                                 "Autodiff op invocations", labels=("op",))
        self_ms = registry.counter("autodiff_op_self_ms_total",
                                   "Self wall time per op type (ms)",
                                   labels=("op",))
        peak = registry.gauge("autodiff_op_peak_bytes",
                              "Largest single result array (bytes)",
                              labels=("op",))
        for name, stat in self.stats().items():
            calls.labels(op=name).inc(stat.calls)
            self_ms.labels(op=name).inc(stat.self_ms)
            peak.labels(op=name).set(stat.peak_bytes)


@contextmanager
def profile_ops(profiler: Optional[OpProfiler] = None):
    """Context manager enabling op-level profiling for its body."""
    profiler = profiler or OpProfiler()
    profiler.start()
    try:
        yield profiler
    finally:
        profiler.stop()
