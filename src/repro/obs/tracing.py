"""Hierarchical tracing spans with a context-manager API.

A :class:`Span` measures one named section of work on the monotonic
clock (``time.perf_counter``).  Spans nest: entering a span while
another is active on the same thread makes it a child, so one traced
request yields a tree (graph build → encoder → route decode → …) that
:class:`TraceCollector` can render as a flame-style text tree or export
as JSONL for offline analysis (``repro-rtp obs``).

Tracing is **off by default** and costs one global read per
:func:`span` call when disabled — cheap enough to leave the
instrumentation permanently in hot paths.  Enable it process-wide with
:func:`enable_tracing`::

    collector = enable_tracing()
    service.handle(request)
    print(collector.render())
    disable_tracing()

Thread-locality: each thread has its own active-span stack inside the
collector, so concurrent requests produce separate root trees instead
of interleaving.

Identity: every span collected by a :class:`TraceCollector` carries a
``trace_id`` (shared by the whole tree it belongs to) and a unique
``span_id``.  The ids let histogram exemplars point back at the trace
of a tail observation (:mod:`repro.obs.metrics`) and let spans created
on other threads or shipped from other processes be stitched under
their logical parent (:mod:`repro.obs.propagate`).
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "Span", "TraceCollector", "enable_tracing", "disable_tracing",
    "tracing_enabled", "get_collector", "span", "current_span",
    "current_trace_id", "summarize_spans", "format_span_record",
]


class Span:
    """One timed, named section of work; may own child spans."""

    __slots__ = ("name", "attrs", "children", "trace_id", "span_id",
                 "_start", "_end", "_frozen_ms")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self._start: Optional[float] = None
        self._end: Optional[float] = None
        self._frozen_ms: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self) -> "Span":
        """Record the start time (monotonic clock)."""
        self._start = time.perf_counter()
        return self

    def finish(self) -> "Span":
        """Record the end time (monotonic clock)."""
        self._end = time.perf_counter()
        return self

    @property
    def duration_ms(self) -> float:
        """Wall time between :meth:`start` and :meth:`finish`, in ms."""
        if self._frozen_ms is not None:
            return self._frozen_ms
        if self._start is None or self._end is None:
            return 0.0
        return (self._end - self._start) * 1000.0

    def freeze(self, duration_ms: float) -> "Span":
        """Pin ``duration_ms`` directly (spans rebuilt from exports)."""
        self._frozen_ms = float(duration_ms)
        return self

    def set_attr(self, key: str, value: Any) -> None:
        """Attach an attribute (must be JSON-serialisable for export)."""
        self.attrs[key] = value

    # ------------------------------------------------------------------
    def to_dict(self, epoch: Optional[float] = None) -> Dict[str, Any]:
        """Nested-dict form of this span (JSONL export unit)."""
        record: Dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 6),
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if self.span_id is not None:
            record["span_id"] = self.span_id
        if epoch is not None and self._start is not None:
            record["start_ms"] = round((self._start - epoch) * 1000.0, 6)
        if self.attrs:
            record["attrs"] = self.attrs
        if self.children:
            record["children"] = [c.to_dict(epoch) for c in self.children]
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Span":
        """Rebuild a span tree from its :meth:`to_dict` export.

        Durations are frozen to the exported values; ids are *not*
        restored — the adopting collector assigns fresh ones so ids
        from another process can never collide with local ids.
        """
        span_obj = cls(record["name"], record.get("attrs"))
        span_obj.freeze(float(record.get("duration_ms", 0.0)))
        for child in record.get("children", ()):
            span_obj.children.append(cls.from_dict(child))
        return span_obj

    def iter_spans(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration_ms:.3f} ms)"


class _ActiveSpan:
    """Context manager binding a span to a collector's thread stack."""

    __slots__ = ("_collector", "_span", "_parent_id")

    def __init__(self, collector: "TraceCollector", span_obj: Span,
                 parent_id: Optional[str] = None):
        self._collector = collector
        self._span = span_obj
        self._parent_id = parent_id

    def __enter__(self) -> Span:
        self._collector._push(self._span, parent_id=self._parent_id)
        self._span.start()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.finish()
        self._collector._pop(self._span)
        return False


class _NullSpan:
    """Shared no-op stand-in returned by :func:`span` when disabled."""

    __slots__ = ()

    duration_ms = 0.0
    trace_id = None
    span_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class TraceCollector:
    """Collects span trees; one active-span stack per thread.

    Structural mutation (attaching a span to its parent or the root
    list) and serialisation (:meth:`render` / :meth:`to_jsonl`) both
    run under the collector lock, so exporting a trace while other
    threads are actively opening spans never observes a torn tree.
    """

    def __init__(self):
        self._epoch = time.perf_counter()
        self._local = threading.local()
        self._lock = threading.Lock()
        self.roots: List[Span] = []
        self._by_id: Dict[str, Span] = {}
        self._trace_counter = 0
        self._span_counter = 0

    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _assign_ids_unlocked(self, span_obj: Span,
                             trace_id: Optional[str]) -> None:
        if trace_id is None:
            self._trace_counter += 1
            trace_id = f"t{self._trace_counter:06d}"
        self._span_counter += 1
        span_obj.trace_id = trace_id
        span_obj.span_id = f"s{self._span_counter:06d}"
        self._by_id[span_obj.span_id] = span_obj
        for child in span_obj.children:
            self._assign_ids_unlocked(child, trace_id)

    def _push(self, span_obj: Span,
              parent_id: Optional[str] = None) -> None:
        stack = self._stack()
        with self._lock:
            parent = (self._by_id.get(parent_id) if parent_id is not None
                      else (stack[-1] if stack else None))
            if parent is not None:
                self._assign_ids_unlocked(span_obj, parent.trace_id)
                parent.children.append(span_obj)
            else:
                span_obj.attrs.setdefault(
                    "thread", threading.current_thread().name)
                self._assign_ids_unlocked(span_obj, None)
                self.roots.append(span_obj)
        stack.append(span_obj)

    def _pop(self, span_obj: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span_obj:
            stack.pop()

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a span under this collector (instance-level API)."""
        return _ActiveSpan(self, Span(name, attrs))

    def span_under(self, context, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a span parented by id rather than the thread stack.

        ``context`` is anything with a ``span_id`` attribute (a
        :class:`Span` or a :class:`~repro.obs.propagate.SpanContext`)
        or a raw span-id string.  This is the cross-thread stitch: a
        flush thread can attach work under the submitting request's
        span.  An unknown parent id starts a fresh root trace.
        """
        parent_id = getattr(context, "span_id", context)
        return _ActiveSpan(self, Span(name, attrs), parent_id=parent_id)

    def attach(self, span_obj: Span,
               parent_id: Optional[str] = None) -> Span:
        """Adopt an externally built (finished) span tree.

        Used for spans shipped back from worker processes
        (:mod:`repro.obs.propagate`): fresh local ids are assigned to
        the whole tree and it is appended under ``parent_id`` when that
        span is known here, else as a new root.
        """
        with self._lock:
            parent = self._by_id.get(parent_id) if parent_id else None
            self._assign_ids_unlocked(
                span_obj, parent.trace_id if parent is not None else None)
            if parent is not None:
                parent.children.append(span_obj)
            else:
                self.roots.append(span_obj)
        return span_obj

    def current(self) -> Optional[Span]:
        """The innermost active span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def find(self, span_id: str) -> Optional[Span]:
        """Look a span up by id (exemplar / flight-recorder joins)."""
        with self._lock:
            return self._by_id.get(span_id)

    def trace_roots(self, trace_id: str) -> List[Span]:
        """All root spans belonging to ``trace_id``."""
        with self._lock:
            return [root for root in self.roots
                    if root.trace_id == trace_id]

    def clear(self) -> None:
        """Drop all collected root spans."""
        with self._lock:
            self.roots.clear()
            self._by_id.clear()

    # ------------------------------------------------------------------
    def render(self, max_roots: Optional[int] = None) -> str:
        """Flame-style text tree of the collected spans."""
        lines: List[str] = []
        # Serialise fully under the lock: children lists are appended
        # under the same lock, so a concurrent push cannot tear the walk.
        with self._lock:
            roots = self.roots if max_roots is None else \
                self.roots[:max_roots]
            for root in roots:
                _render_span(root, "", True, lines, is_root=True)
        return "\n".join(lines)

    def to_jsonl(self) -> str:
        """One JSON object per root span (nested children), one per line."""
        with self._lock:
            return "\n".join(
                json.dumps(root.to_dict(self._epoch))
                for root in self.roots)

    def write_jsonl(self, path) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns the root count."""
        text = self.to_jsonl()
        with open(path, "w") as handle:
            if text:
                handle.write(text + "\n")
        with self._lock:
            return len(self.roots)


def _render_span(span_obj: Span, prefix: str, last: bool,
                 lines: List[str], is_root: bool = False) -> None:
    if is_root:
        label, child_prefix = "", ""
    else:
        label = "└─ " if last else "├─ "
        child_prefix = prefix + ("   " if last else "│  ")
        label = prefix + label
    attrs = {k: v for k, v in span_obj.attrs.items() if k != "thread"}
    attr_text = ("  " + ", ".join(f"{k}={v}" for k, v in attrs.items())
                 if attrs else "")
    name_field = f"{label}{span_obj.name}"
    lines.append(f"{name_field:<44s}{span_obj.duration_ms:10.3f} ms{attr_text}")
    for index, child in enumerate(span_obj.children):
        _render_span(child, child_prefix, index == len(span_obj.children) - 1,
                     lines)


# ----------------------------------------------------------------------
# Global (process-wide) tracing switch
# ----------------------------------------------------------------------
_ACTIVE_COLLECTOR: Optional[TraceCollector] = None


def enable_tracing(collector: Optional[TraceCollector] = None) -> TraceCollector:
    """Install ``collector`` (or a fresh one) as the process collector."""
    global _ACTIVE_COLLECTOR
    _ACTIVE_COLLECTOR = collector or TraceCollector()
    return _ACTIVE_COLLECTOR


def disable_tracing() -> Optional[TraceCollector]:
    """Turn tracing off; returns the collector that was active."""
    global _ACTIVE_COLLECTOR
    previous = _ACTIVE_COLLECTOR
    _ACTIVE_COLLECTOR = None
    return previous


def tracing_enabled() -> bool:
    """Whether a process-wide collector is installed."""
    return _ACTIVE_COLLECTOR is not None


def get_collector() -> Optional[TraceCollector]:
    """The process-wide collector, or ``None`` when tracing is off."""
    return _ACTIVE_COLLECTOR


def span(name: str, **attrs: Any):
    """Open a span on the process collector; no-op when tracing is off.

    Designed for permanent instrumentation of hot paths: when tracing
    is disabled this returns a shared null context manager without
    allocating a :class:`Span`.
    """
    collector = _ACTIVE_COLLECTOR
    if collector is None:
        return _NULL_SPAN
    return collector.span(name, **attrs)


def current_span() -> Optional[Span]:
    """The innermost active span on this thread, or ``None``."""
    collector = _ACTIVE_COLLECTOR
    return collector.current() if collector is not None else None


def current_trace_id() -> Optional[str]:
    """Trace id of the innermost active span, or ``None``.

    This is what histogram exemplars capture: the id linking a tail
    observation back to its full trace.
    """
    collector = _ACTIVE_COLLECTOR
    if collector is None:
        return None
    active = collector.current()
    return active.trace_id if active is not None else None


# ----------------------------------------------------------------------
# Offline summaries (shared by the ``repro-rtp obs`` subcommand)
# ----------------------------------------------------------------------
def _walk_records(record: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    yield record
    for child in record.get("children", ()):
        yield from _walk_records(child)


def summarize_spans(records: Sequence[Dict[str, Any]]) -> str:
    """Aggregate exported span records by name (count / total / mean)."""
    totals: Dict[str, List[float]] = {}
    for root in records:
        for node in _walk_records(root):
            entry = totals.setdefault(node["name"], [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += node.get("duration_ms", 0.0)
            entry[2] = max(entry[2], node.get("duration_ms", 0.0))
    header = (f"{'span':<28s} {'calls':>7s} {'total ms':>10s} "
              f"{'mean ms':>9s} {'max ms':>9s}")
    lines = [header]
    for name, (calls, total, peak) in sorted(
            totals.items(), key=lambda item: -item[1][1]):
        lines.append(f"{name:<28s} {calls:7d} {total:10.3f} "
                     f"{total / calls:9.3f} {peak:9.3f}")
    return "\n".join(lines)


def format_span_record(record: Dict[str, Any]) -> str:
    """Render one exported (nested-dict) span record as a text tree."""
    lines: List[str] = []

    def walk(node: Dict[str, Any], prefix: str, last: bool,
             is_root: bool) -> None:
        if is_root:
            label, child_prefix = "", ""
        else:
            label = prefix + ("└─ " if last else "├─ ")
            child_prefix = prefix + ("   " if last else "│  ")
        attrs = {k: v for k, v in node.get("attrs", {}).items()
                 if k != "thread"}
        attr_text = ("  " + ", ".join(f"{k}={v}" for k, v in attrs.items())
                     if attrs else "")
        name_field = f"{label}{node['name']}"
        lines.append(f"{name_field:<44s}"
                     f"{node.get('duration_ms', 0.0):10.3f} ms{attr_text}")
        children = node.get("children", [])
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1, False)

    walk(record, "", True, True)
    return "\n".join(lines)
