"""Hierarchical tracing spans with a context-manager API.

A :class:`Span` measures one named section of work on the monotonic
clock (``time.perf_counter``).  Spans nest: entering a span while
another is active on the same thread makes it a child, so one traced
request yields a tree (graph build → encoder → route decode → …) that
:class:`TraceCollector` can render as a flame-style text tree or export
as JSONL for offline analysis (``repro-rtp obs``).

Tracing is **off by default** and costs one global read per
:func:`span` call when disabled — cheap enough to leave the
instrumentation permanently in hot paths.  Enable it process-wide with
:func:`enable_tracing`::

    collector = enable_tracing()
    service.handle(request)
    print(collector.render())
    disable_tracing()

Thread-locality: each thread has its own active-span stack inside the
collector, so concurrent requests produce separate root trees instead
of interleaving.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "Span", "TraceCollector", "enable_tracing", "disable_tracing",
    "tracing_enabled", "get_collector", "span", "current_span",
    "summarize_spans", "format_span_record",
]


class Span:
    """One timed, named section of work; may own child spans."""

    __slots__ = ("name", "attrs", "children", "_start", "_end")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self._start: Optional[float] = None
        self._end: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self) -> "Span":
        """Record the start time (monotonic clock)."""
        self._start = time.perf_counter()
        return self

    def finish(self) -> "Span":
        """Record the end time (monotonic clock)."""
        self._end = time.perf_counter()
        return self

    @property
    def duration_ms(self) -> float:
        """Wall time between :meth:`start` and :meth:`finish`, in ms."""
        if self._start is None or self._end is None:
            return 0.0
        return (self._end - self._start) * 1000.0

    def set_attr(self, key: str, value: Any) -> None:
        """Attach an attribute (must be JSON-serialisable for export)."""
        self.attrs[key] = value

    # ------------------------------------------------------------------
    def to_dict(self, epoch: Optional[float] = None) -> Dict[str, Any]:
        """Nested-dict form of this span (JSONL export unit)."""
        record: Dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration_ms, 6),
        }
        if epoch is not None and self._start is not None:
            record["start_ms"] = round((self._start - epoch) * 1000.0, 6)
        if self.attrs:
            record["attrs"] = self.attrs
        if self.children:
            record["children"] = [c.to_dict(epoch) for c in self.children]
        return record

    def iter_spans(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration_ms:.3f} ms)"


class _ActiveSpan:
    """Context manager binding a span to a collector's thread stack."""

    __slots__ = ("_collector", "_span")

    def __init__(self, collector: "TraceCollector", span_obj: Span):
        self._collector = collector
        self._span = span_obj

    def __enter__(self) -> Span:
        self._collector._push(self._span)
        self._span.start()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.finish()
        self._collector._pop(self._span)
        return False


class _NullSpan:
    """Shared no-op stand-in returned by :func:`span` when disabled."""

    __slots__ = ()

    duration_ms = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class TraceCollector:
    """Collects span trees; one active-span stack per thread."""

    def __init__(self):
        self._epoch = time.perf_counter()
        self._local = threading.local()
        self._lock = threading.Lock()
        self.roots: List[Span] = []

    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span_obj: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span_obj)
        else:
            span_obj.attrs.setdefault("thread", threading.current_thread().name)
            with self._lock:
                self.roots.append(span_obj)
        stack.append(span_obj)

    def _pop(self, span_obj: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span_obj:
            stack.pop()

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a span under this collector (instance-level API)."""
        return _ActiveSpan(self, Span(name, attrs))

    def current(self) -> Optional[Span]:
        """The innermost active span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def clear(self) -> None:
        """Drop all collected root spans."""
        with self._lock:
            self.roots.clear()

    # ------------------------------------------------------------------
    def render(self, max_roots: Optional[int] = None) -> str:
        """Flame-style text tree of the collected spans."""
        with self._lock:
            roots = list(self.roots)
        if max_roots is not None:
            roots = roots[:max_roots]
        lines: List[str] = []
        for root in roots:
            _render_span(root, "", True, lines, is_root=True)
        return "\n".join(lines)

    def to_jsonl(self) -> str:
        """One JSON object per root span (nested children), one per line."""
        with self._lock:
            roots = list(self.roots)
        return "\n".join(
            json.dumps(root.to_dict(self._epoch)) for root in roots)

    def write_jsonl(self, path) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns the root count."""
        text = self.to_jsonl()
        with open(path, "w") as handle:
            if text:
                handle.write(text + "\n")
        with self._lock:
            return len(self.roots)


def _render_span(span_obj: Span, prefix: str, last: bool,
                 lines: List[str], is_root: bool = False) -> None:
    if is_root:
        label, child_prefix = "", ""
    else:
        label = "└─ " if last else "├─ "
        child_prefix = prefix + ("   " if last else "│  ")
        label = prefix + label
    attrs = {k: v for k, v in span_obj.attrs.items() if k != "thread"}
    attr_text = ("  " + ", ".join(f"{k}={v}" for k, v in attrs.items())
                 if attrs else "")
    name_field = f"{label}{span_obj.name}"
    lines.append(f"{name_field:<44s}{span_obj.duration_ms:10.3f} ms{attr_text}")
    for index, child in enumerate(span_obj.children):
        _render_span(child, child_prefix, index == len(span_obj.children) - 1,
                     lines)


# ----------------------------------------------------------------------
# Global (process-wide) tracing switch
# ----------------------------------------------------------------------
_ACTIVE_COLLECTOR: Optional[TraceCollector] = None


def enable_tracing(collector: Optional[TraceCollector] = None) -> TraceCollector:
    """Install ``collector`` (or a fresh one) as the process collector."""
    global _ACTIVE_COLLECTOR
    _ACTIVE_COLLECTOR = collector or TraceCollector()
    return _ACTIVE_COLLECTOR


def disable_tracing() -> Optional[TraceCollector]:
    """Turn tracing off; returns the collector that was active."""
    global _ACTIVE_COLLECTOR
    previous = _ACTIVE_COLLECTOR
    _ACTIVE_COLLECTOR = None
    return previous


def tracing_enabled() -> bool:
    """Whether a process-wide collector is installed."""
    return _ACTIVE_COLLECTOR is not None


def get_collector() -> Optional[TraceCollector]:
    """The process-wide collector, or ``None`` when tracing is off."""
    return _ACTIVE_COLLECTOR


def span(name: str, **attrs: Any):
    """Open a span on the process collector; no-op when tracing is off.

    Designed for permanent instrumentation of hot paths: when tracing
    is disabled this returns a shared null context manager without
    allocating a :class:`Span`.
    """
    collector = _ACTIVE_COLLECTOR
    if collector is None:
        return _NULL_SPAN
    return collector.span(name, **attrs)


def current_span() -> Optional[Span]:
    """The innermost active span on this thread, or ``None``."""
    collector = _ACTIVE_COLLECTOR
    return collector.current() if collector is not None else None


# ----------------------------------------------------------------------
# Offline summaries (shared by the ``repro-rtp obs`` subcommand)
# ----------------------------------------------------------------------
def _walk_records(record: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    yield record
    for child in record.get("children", ()):
        yield from _walk_records(child)


def summarize_spans(records: Sequence[Dict[str, Any]]) -> str:
    """Aggregate exported span records by name (count / total / mean)."""
    totals: Dict[str, List[float]] = {}
    for root in records:
        for node in _walk_records(root):
            entry = totals.setdefault(node["name"], [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += node.get("duration_ms", 0.0)
            entry[2] = max(entry[2], node.get("duration_ms", 0.0))
    header = (f"{'span':<28s} {'calls':>7s} {'total ms':>10s} "
              f"{'mean ms':>9s} {'max ms':>9s}")
    lines = [header]
    for name, (calls, total, peak) in sorted(
            totals.items(), key=lambda item: -item[1][1]):
        lines.append(f"{name:<28s} {calls:7d} {total:10.3f} "
                     f"{total / calls:9.3f} {peak:9.3f}")
    return "\n".join(lines)


def format_span_record(record: Dict[str, Any]) -> str:
    """Render one exported (nested-dict) span record as a text tree."""
    lines: List[str] = []

    def walk(node: Dict[str, Any], prefix: str, last: bool,
             is_root: bool) -> None:
        if is_root:
            label, child_prefix = "", ""
        else:
            label = prefix + ("└─ " if last else "├─ ")
            child_prefix = prefix + ("   " if last else "│  ")
        attrs = {k: v for k, v in node.get("attrs", {}).items()
                 if k != "thread"}
        attr_text = ("  " + ", ".join(f"{k}={v}" for k, v in attrs.items())
                     if attrs else "")
        name_field = f"{label}{node['name']}"
        lines.append(f"{name_field:<44s}"
                     f"{node.get('duration_ms', 0.0):10.3f} ms{attr_text}")
        children = node.get("children", [])
        for index, child in enumerate(children):
            walk(child, child_prefix, index == len(children) - 1, False)

    walk(record, "", True, True)
    return "\n".join(lines)
