"""Unified observability layer: tracing, metrics, op profiling, events.

Zero-dependency (stdlib-only) subsystem threaded through every layer of
the stack:

* :mod:`~repro.obs.tracing` — hierarchical :class:`Span` trees on the
  monotonic clock, with a process-wide on/off switch and JSONL export;
* :mod:`~repro.obs.metrics` — named Counter/Gauge/Histogram/Summary
  instruments in a :class:`MetricsRegistry` with Prometheus-exposition
  rendering;
* :mod:`~repro.obs.opprofile` — opt-in per-op-type profiling of the
  autodiff engine (call counts, self wall time, array bytes);
* :mod:`~repro.obs.events` — append-only JSONL :class:`EventLog` used
  for per-epoch training telemetry;
* :mod:`~repro.obs.propagate` — span-context propagation across
  process/thread boundaries (worker sessions, stitch-on-collect);
* :mod:`~repro.obs.quality` — streaming prediction-quality windows,
  drift detectors (:class:`DriftAlarm` events) and the flight recorder
  that resolves latency exemplars back to request payloads.

Everything is off by default and adds near-zero overhead when disabled,
so the instrumentation lives permanently in the hot paths.
"""

from .tracing import (
    Span,
    TraceCollector,
    current_span,
    current_trace_id,
    disable_tracing,
    enable_tracing,
    format_span_record,
    get_collector,
    span,
    summarize_spans,
    tracing_enabled,
)
from .metrics import (
    DEFAULT_HISTOGRAM_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Summary,
)
from .opprofile import OpProfiler, OpStat, profile_ops
from .events import EventLog, read_jsonl, summarize_events
from .propagate import (
    SpanContext,
    capture_context,
    current_context,
    merge_worker_spans,
    worker_span_session,
)
from .quality import (
    CompletedRoute,
    DriftAlarm,
    FlightRecorder,
    PageHinkleyDetector,
    QualityMonitor,
    ReferenceWindowDetector,
    build_quality_artifact,
    validate_quality_artifact,
    write_quality_artifact,
)
from .schema import SchemaValidationError, check_schema

__all__ = [
    "Span", "TraceCollector", "span", "current_span", "current_trace_id",
    "enable_tracing", "disable_tracing", "tracing_enabled", "get_collector",
    "summarize_spans", "format_span_record",
    "Counter", "Gauge", "Histogram", "Summary", "MetricsRegistry",
    "DEFAULT_HISTOGRAM_BUCKETS",
    "OpProfiler", "OpStat", "profile_ops",
    "EventLog", "read_jsonl", "summarize_events",
    "SpanContext", "current_context", "capture_context",
    "worker_span_session", "merge_worker_spans",
    "CompletedRoute", "DriftAlarm", "PageHinkleyDetector",
    "ReferenceWindowDetector", "QualityMonitor", "FlightRecorder",
    "build_quality_artifact", "validate_quality_artifact",
    "write_quality_artifact",
    "SchemaValidationError", "check_schema",
]
