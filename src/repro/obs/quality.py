"""Streaming prediction-quality telemetry and drift detection.

Serving metrics (latency, error rate) tell you the service is *up*;
they say nothing about whether the model is still *right*.  Ground
truth for route-and-time prediction arrives late — a courier finishes
the route minutes after the prediction was served — so quality is a
second stream joined after the fact.  This module consumes that stream:

* :class:`CompletedRoute` — one prediction paired with its outcome
  (predicted vs. actual visit order, predicted ETAs vs. actual
  arrivals, plus the labels the prediction was served under);
* :class:`QualityMonitor` — maintains windowed route KRC/LSD and ETA
  MAE/MAPE per label segment (weather, courier, model version, and an
  ``all`` rollup), published as ``rtp_quality_*`` gauges in the shared
  :class:`~repro.obs.metrics.MetricsRegistry`;
* :class:`PageHinkleyDetector` / :class:`ReferenceWindowDetector` —
  deterministic streaming change detectors (Page-Hinkley cumulative
  deviation; Kolmogorov-Smirnov + Population Stability Index against a
  frozen reference window) watching the per-route error streams;
* :class:`DriftAlarm` — the event a detector raises; subscribers
  (notably ``DeploymentController.on_drift_alarm``) receive it
  synchronously so a drifting canary can be rolled back before the
  window fills with bad routes;
* :class:`FlightRecorder` — bounded ring buffer keying request
  payloads by trace id, so a p99 latency exemplar resolves to the
  offending trace *and* the request that caused it;
* :func:`build_quality_artifact` — schema-pinned JSON report
  (``repro-rtp obs report``) for CI upload and offline diffing.

Everything is seeded/deterministic: detectors hold no RNG state, and
timestamps come from an injected clock, so a replayed scenario raises
the same alarm at the same observation count, bit for bit.
"""

from __future__ import annotations

import collections
import dataclasses
import json
import pathlib
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, \
    Tuple

import numpy as np

from ..metrics.route import kendall_rank_correlation, \
    location_square_deviation
from ..metrics.time import mae
from .metrics import MetricsRegistry
from .schema import check_schema

__all__ = [
    "CompletedRoute", "DriftAlarm",
    "PageHinkleyDetector", "ReferenceWindowDetector",
    "QualityMonitor", "FlightRecorder",
    "QUALITY_ARTIFACT_KIND", "QUALITY_SCHEMA_VERSION",
    "QualityArtifactError", "build_quality_artifact",
    "validate_quality_artifact", "write_quality_artifact",
    "load_quality_schema",
]

QUALITY_ARTIFACT_KIND = "repro.obs.quality"
QUALITY_SCHEMA_VERSION = 1

_SCHEMA_PATH = pathlib.Path(__file__).with_name("quality_schema.json")

#: Fraction of an ETA treated as the floor denominator for MAPE, so a
#: near-zero actual arrival cannot blow the percentage up to infinity.
_MAPE_FLOOR_MINUTES = 1.0


class QualityArtifactError(ValueError):
    """The quality artifact does not match the pinned schema."""


# ---------------------------------------------------------------------------
# Ground-truth records and alarms


@dataclasses.dataclass
class CompletedRoute:
    """One served prediction joined with its late-arriving ground truth."""

    predicted_route: Sequence[int]
    actual_route: Sequence[int]
    predicted_eta_minutes: Sequence[float]
    actual_arrival_minutes: Sequence[float]
    labels: Dict[str, str] = dataclasses.field(default_factory=dict)
    trace_id: Optional[str] = None


@dataclasses.dataclass
class DriftAlarm:
    """A detector decided the quality stream changed distribution."""

    metric: str          # which quality stream (e.g. "eta_mae")
    detector: str        # "page_hinkley" | "ks" | "psi"
    segment: str         # label dimension ("all", "model_version", ...)
    key: str             # label value within the segment
    statistic: float     # the detector statistic that crossed
    threshold: float     # the configured firing threshold
    observations: int    # completed routes seen when it fired
    at: float            # clock reading when it fired
    reference_size: int = 0
    window_size: int = 0
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


# ---------------------------------------------------------------------------
# Streaming detectors (deterministic, no RNG)


class PageHinkleyDetector:
    """Page-Hinkley test for an upward mean shift in a scalar stream.

    Tracks the running mean and the cumulative deviation
    ``cum += x - mean - delta``; the test statistic is
    ``cum - min(cum)``, which stays near zero while the stream is
    stationary and climbs linearly once the mean rises.  Fires when the
    statistic exceeds ``threshold`` after ``min_samples`` observations,
    then resets so a persistent shift re-alarms rather than saturating.
    """

    name = "page_hinkley"

    def __init__(self, delta: float = 0.1, threshold: float = 12.0,
                 min_samples: int = 20):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.delta = float(delta)
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self.reset()

    def reset(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._cum = 0.0
        self._cum_min = 0.0

    def update(self, value: float) -> Optional[Dict[str, Any]]:
        """Feed one observation; returns firing info or ``None``."""
        value = float(value)
        self._count += 1
        self._mean += (value - self._mean) / self._count
        self._cum += value - self._mean - self.delta
        self._cum_min = min(self._cum_min, self._cum)
        statistic = self._cum - self._cum_min
        if self._count >= self.min_samples and statistic > self.threshold:
            fired = {
                "statistic": statistic,
                "threshold": self.threshold,
                "detail": f"mean drifted to {self._mean:.4f} "
                          f"after {self._count} samples",
            }
            self.reset()
            return fired
        return None


class ReferenceWindowDetector:
    """Two-sample KS + PSI test of a sliding window against a frozen
    reference.

    The first ``reference_size`` observations are frozen as the
    reference distribution (the healthy baseline); afterwards a sliding
    window of the most recent ``window_size`` observations is compared
    against it whenever the window is full.  Fires on whichever of the
    two statistics crosses first:

    * KS — max vertical distance between the empirical CDFs;
    * PSI — population stability index over the reference's decile
      bins, with epsilon smoothing so empty bins stay finite.

    The window is cleared after firing so one shift yields one alarm
    per window-fill, not one per observation.
    """

    def __init__(self, reference_size: int = 32, window_size: int = 24,
                 ks_threshold: float = 0.6, psi_threshold: float = 2.0):
        # Small-sample note: with ~24-sample windows over 10 bins the
        # sampling-noise floor of PSI is already ~0.65 and the 5% KS
        # critical value ~0.36, so the defaults sit well above both.
        if reference_size < 4 or window_size < 4:
            raise ValueError("reference and window need >= 4 samples")
        self.reference_size = int(reference_size)
        self.window_size = int(window_size)
        self.ks_threshold = float(ks_threshold)
        self.psi_threshold = float(psi_threshold)
        self._reference: List[float] = []
        self._ref_sorted: Optional[np.ndarray] = None
        self._bin_edges: Optional[np.ndarray] = None
        self._ref_fractions: Optional[np.ndarray] = None
        self._window: Deque[float] = collections.deque(
            maxlen=self.window_size)

    @property
    def reference_ready(self) -> bool:
        return self._ref_sorted is not None

    def _freeze_reference(self) -> None:
        reference = np.asarray(self._reference, dtype=float)
        self._ref_sorted = np.sort(reference)
        # Decile edges; interior only — the outer bins are open-ended so
        # out-of-range live values still land somewhere.
        edges = np.quantile(reference, np.linspace(0.0, 1.0, 11)[1:-1])
        self._bin_edges = np.unique(edges)
        counts = np.bincount(
            np.searchsorted(self._bin_edges, reference, side="right"),
            minlength=self._bin_edges.size + 1).astype(float)
        self._ref_fractions = counts / counts.sum()

    def _ks_statistic(self, window: np.ndarray) -> float:
        assert self._ref_sorted is not None
        window_sorted = np.sort(window)
        grid = np.concatenate([self._ref_sorted, window_sorted])
        ref_cdf = np.searchsorted(self._ref_sorted, grid, side="right") \
            / self._ref_sorted.size
        win_cdf = np.searchsorted(window_sorted, grid, side="right") \
            / window_sorted.size
        return float(np.max(np.abs(ref_cdf - win_cdf)))

    def _psi_statistic(self, window: np.ndarray) -> float:
        assert self._bin_edges is not None \
            and self._ref_fractions is not None
        counts = np.bincount(
            np.searchsorted(self._bin_edges, window, side="right"),
            minlength=self._bin_edges.size + 1).astype(float)
        # Half-count (Laplace) smoothing: a handful of empty decile bins
        # in a ~24-sample window is expected noise, not drift, so bins
        # are smoothed with pseudo-counts rather than a raw epsilon.
        bins = counts.size
        actual = (counts + 0.5) / (counts.sum() + 0.5 * bins)
        expected = (self._ref_fractions * self.reference_size + 0.5) \
            / (self.reference_size + 0.5 * bins)
        return float(np.sum((actual - expected) * np.log(actual / expected)))

    def update(self, value: float) -> Optional[Dict[str, Any]]:
        """Feed one observation; returns firing info or ``None``."""
        value = float(value)
        if not self.reference_ready:
            self._reference.append(value)
            if len(self._reference) >= self.reference_size:
                self._freeze_reference()
            return None
        self._window.append(value)
        if len(self._window) < self.window_size:
            return None
        window = np.asarray(self._window, dtype=float)
        ks = self._ks_statistic(window)
        psi = self._psi_statistic(window)
        fired: Optional[Dict[str, Any]] = None
        if ks > self.ks_threshold:
            fired = {"statistic": ks, "threshold": self.ks_threshold,
                     "detector": "ks",
                     "detail": f"KS {ks:.3f} vs reference "
                               f"(psi {psi:.3f})"}
        elif psi > self.psi_threshold:
            fired = {"statistic": psi, "threshold": self.psi_threshold,
                     "detector": "psi",
                     "detail": f"PSI {psi:.3f} vs reference "
                               f"(ks {ks:.3f})"}
        if fired is not None:
            self._window.clear()
        return fired


# ---------------------------------------------------------------------------
# Flight recorder: trace id -> payload, bounded


class FlightRecorder:
    """Bounded ring buffer mapping trace ids to request payloads.

    The exemplar on a latency histogram gives you a trace id; the
    flight recorder turns that id back into the request that produced
    the tail observation.  Oldest entries are evicted first; capacity
    bounds memory regardless of traffic volume.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._entries: "collections.OrderedDict[str, Any]" = \
            collections.OrderedDict()

    def record(self, trace_id: Optional[str], payload: Any) -> None:
        if trace_id is None:
            return
        if trace_id in self._entries:
            self._entries.pop(trace_id)
        self._entries[trace_id] = payload
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def lookup(self, trace_id: str) -> Optional[Any]:
        return self._entries.get(trace_id)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, trace_id: str) -> bool:
        return trace_id in self._entries


# ---------------------------------------------------------------------------
# The monitor


_DEFAULT_SEGMENTS = ("weather", "courier", "model_version")

_GAUGE_SPECS = (
    ("rtp_quality_route_krc", "Windowed mean Kendall rank correlation"),
    ("rtp_quality_route_lsd", "Windowed mean location square deviation"),
    ("rtp_quality_eta_mae", "Windowed mean ETA absolute error (minutes)"),
    ("rtp_quality_eta_mape",
     "Windowed mean ETA absolute percentage error"),
)


class _SegmentWindow:
    """Per-(segment, key) sliding window of per-route quality tuples."""

    __slots__ = ("rows", "count")

    def __init__(self, window: int):
        self.rows: Deque[Tuple[float, float, float, float]] = \
            collections.deque(maxlen=window)
        self.count = 0

    def push(self, row: Tuple[float, float, float, float]) -> None:
        self.rows.append(row)
        self.count += 1

    def means(self) -> Tuple[float, float, float, float]:
        block = np.asarray(self.rows, dtype=float)
        means = block.mean(axis=0)
        return (float(means[0]), float(means[1]),
                float(means[2]), float(means[3]))


class QualityMonitor:
    """Streaming per-segment quality rollups plus drift detection.

    Feed :meth:`record` one :class:`CompletedRoute` per finished route.
    The monitor computes the per-route KRC/LSD/ETA-MAE/ETA-MAPE,
    updates the windowed gauges for every configured label segment (and
    the ``all`` rollup), then pushes the route's ETA MAE into the drift
    detectors.  Alarms are appended to :attr:`alarms` and delivered
    synchronously to every callback registered via :meth:`on_alarm`.
    """

    def __init__(self, registry: MetricsRegistry, *, window: int = 64,
                 segments: Sequence[str] = _DEFAULT_SEGMENTS,
                 clock: Optional[Callable[[], float]] = None,
                 page_hinkley: Optional[PageHinkleyDetector] = None,
                 reference_window: Optional[ReferenceWindowDetector] = None,
                 drift_metric: str = "eta_mae"):
        if window < 2:
            raise ValueError("window must be >= 2")
        self.registry = registry
        self.window = int(window)
        self.segments = tuple(segments)
        self.clock = clock
        self.drift_metric = drift_metric
        self.page_hinkley = page_hinkley if page_hinkley is not None \
            else PageHinkleyDetector()
        self.reference_window = reference_window \
            if reference_window is not None else ReferenceWindowDetector()
        self.observations = 0
        self.alarms: List[DriftAlarm] = []
        self._callbacks: List[Callable[[DriftAlarm], None]] = []
        self._windows: Dict[Tuple[str, str], _SegmentWindow] = {}

        self._routes_total = registry.counter(
            "rtp_quality_routes_total",
            "Completed routes folded into quality windows",
            labels=("segment", "key"))
        self._gauges = {
            name: registry.gauge(name, help_text,
                                 labels=("segment", "key"))
            for name, help_text in _GAUGE_SPECS
        }
        self._alarms_total = registry.counter(
            "rtp_quality_drift_alarms_total",
            "Drift alarms raised by quality detectors",
            labels=("metric", "detector", "segment", "key"))

    # -- subscriptions ----------------------------------------------------

    def on_alarm(self, callback: Callable[[DriftAlarm], None]) -> None:
        """Register a synchronous alarm subscriber."""
        self._callbacks.append(callback)

    # -- ingestion --------------------------------------------------------

    @staticmethod
    def route_scores(completed: CompletedRoute) \
            -> Tuple[float, float, float, float]:
        """(krc, lsd, eta_mae, eta_mape) for one completed route."""
        krc = kendall_rank_correlation(completed.predicted_route,
                                       completed.actual_route)
        lsd = location_square_deviation(completed.predicted_route,
                                        completed.actual_route)
        eta_mae = mae(completed.predicted_eta_minutes,
                      completed.actual_arrival_minutes)
        predicted = np.asarray(completed.predicted_eta_minutes, dtype=float)
        actual = np.asarray(completed.actual_arrival_minutes, dtype=float)
        denominator = np.maximum(np.abs(actual), _MAPE_FLOOR_MINUTES)
        eta_mape = float(np.mean(np.abs(predicted - actual) / denominator))
        return krc, lsd, eta_mae, eta_mape

    def record(self, completed: CompletedRoute) -> List[DriftAlarm]:
        """Fold one completed route in; returns alarms raised by it."""
        row = self.route_scores(completed)
        self.observations += 1
        self._fold(("all", "all"), row)
        for segment in self.segments:
            value = completed.labels.get(segment)
            if value is not None:
                self._fold((segment, str(value)), row)
        return self._detect(row)

    def _fold(self, key: Tuple[str, str],
              row: Tuple[float, float, float, float]) -> None:
        segment_window = self._windows.get(key)
        if segment_window is None:
            segment_window = self._windows[key] = \
                _SegmentWindow(self.window)
        segment_window.push(row)
        segment, label = key
        self._routes_total.labels(segment=segment, key=label).inc()
        means = segment_window.means()
        for (name, _), value in zip(_GAUGE_SPECS, means):
            self._gauges[name].labels(segment=segment, key=label).set(value)

    def _detect(self, row: Tuple[float, float, float, float]) \
            -> List[DriftAlarm]:
        # Detectors watch one scalar stream: the per-route drift metric.
        index = {"route_krc": 0, "route_lsd": 1,
                 "eta_mae": 2, "eta_mape": 3}[self.drift_metric]
        value = row[index]
        raised: List[DriftAlarm] = []
        fired = self.page_hinkley.update(value)
        if fired is not None:
            raised.append(self._raise_alarm(
                detector=self.page_hinkley.name, fired=fired))
        fired = self.reference_window.update(value)
        if fired is not None:
            raised.append(self._raise_alarm(
                detector=fired.pop("detector"), fired=fired,
                reference_size=self.reference_window.reference_size,
                window_size=self.reference_window.window_size))
        return raised

    def _raise_alarm(self, *, detector: str, fired: Dict[str, Any],
                     reference_size: int = 0,
                     window_size: int = 0) -> DriftAlarm:
        alarm = DriftAlarm(
            metric=self.drift_metric, detector=detector,
            segment="all", key="all",
            statistic=float(fired["statistic"]),
            threshold=float(fired["threshold"]),
            observations=self.observations,
            at=float(self.clock()) if self.clock is not None
            else float(self.observations),
            reference_size=reference_size, window_size=window_size,
            detail=str(fired.get("detail", "")))
        self.alarms.append(alarm)
        self._alarms_total.labels(
            metric=alarm.metric, detector=alarm.detector,
            segment=alarm.segment, key=alarm.key).inc()
        for callback in self._callbacks:
            callback(alarm)
        return alarm

    # -- reporting --------------------------------------------------------

    def segment_summary(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """``{segment: {key: {metric: windowed mean, routes: n}}}``."""
        summary: Dict[str, Dict[str, Dict[str, float]]] = {}
        metric_names = ("route_krc", "route_lsd", "eta_mae", "eta_mape")
        for (segment, key), window in sorted(self._windows.items()):
            means = window.means()
            entry = {name: round(value, 6)
                     for name, value in zip(metric_names, means)}
            entry["routes"] = float(window.count)
            summary.setdefault(segment, {})[key] = entry
        return summary


# ---------------------------------------------------------------------------
# Schema-pinned quality artifact


def load_quality_schema() -> Dict[str, Any]:
    """The checked-in quality artifact schema."""
    with open(_SCHEMA_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def build_quality_artifact(monitor: QualityMonitor, *, source: str,
                           seed: int,
                           extra: Optional[Dict[str, Any]] = None) \
        -> Dict[str, Any]:
    """Assemble and validate the quality/drift report for ``monitor``."""
    artifact: Dict[str, Any] = {
        "kind": QUALITY_ARTIFACT_KIND,
        "schema_version": QUALITY_SCHEMA_VERSION,
        "source": source,
        "seed": int(seed),
        "observations": int(monitor.observations),
        "drift_metric": monitor.drift_metric,
        "window": int(monitor.window),
        "segments": monitor.segment_summary(),
        "alarms": [alarm.to_dict() for alarm in monitor.alarms],
        "verdict": "drift" if monitor.alarms else "stable",
    }
    if extra:
        artifact["extra"] = dict(extra)
    validate_quality_artifact(artifact)
    return artifact


def validate_quality_artifact(artifact: Dict[str, Any]) -> None:
    """Raise :class:`QualityArtifactError` unless schema-conformant."""
    check_schema(artifact, load_quality_schema(), "$",
                 error_cls=QualityArtifactError)
    if artifact["kind"] != QUALITY_ARTIFACT_KIND:
        raise QualityArtifactError(
            f"$.kind: expected {QUALITY_ARTIFACT_KIND!r}, "
            f"got {artifact['kind']!r}")
    if artifact["schema_version"] != QUALITY_SCHEMA_VERSION:
        raise QualityArtifactError(
            f"$.schema_version: expected {QUALITY_SCHEMA_VERSION}, "
            f"got {artifact['schema_version']}")


def write_quality_artifact(artifact: Dict[str, Any],
                           path: "pathlib.Path | str") -> pathlib.Path:
    """Validate and write the artifact as stable, diff-friendly JSON."""
    validate_quality_artifact(artifact)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
