"""Setuptools shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` works via PEP 660 where `wheel`
is available; this file additionally enables the legacy
`--no-use-pep517` editable path used in fully offline environments.
"""

from setuptools import setup

setup()
