"""Extension benches beyond the paper's figures (DESIGN.md Section 5).

* Beam-width sweep: greedy (width 1) vs beam search at inference time.
* Robustness sweep: route quality under GPS feature noise, M²G4RTP vs
  Distance-Greedy (the learned model should degrade more gracefully —
  it does not rely on raw distance alone).
* Scheduled sampling: exposure-bias mitigation vs plain teacher forcing.
* DeepETA: the related-work time-only model as an extra Table IV row.
"""

import numpy as np
import pytest

from repro.baselines import DeepBaselineConfig, DeepETA
from repro.core import M2G4RTP, M2G4RTPConfig, beam_search_predict
from repro.data import jitter_coordinates, robustness_sweep
from repro.eval import baseline_predictor, evaluate_method, model_predictor
from repro.graphs import GraphBuilder
from repro.metrics import kendall_rank_correlation
from repro.training import Trainer, TrainerConfig

from common import get_baselines, get_context, get_m2g4rtp, write_result


@pytest.fixture(scope="module")
def model():
    return get_m2g4rtp()


@pytest.fixture(scope="module")
def builder(model):
    return GraphBuilder(num_aoi_ids=model.config.num_aoi_ids)


def test_beam_width_sweep(model, builder, benchmark):
    context = get_context()
    lines = [f"{'width':>6s} {'HR@3':>7s} {'KRC':>6s} {'LSD':>7s}"]
    results = {}
    for width in (1, 2, 4):
        def predict(instance, width=width):
            output = beam_search_predict(model, builder.build(instance),
                                         width=width)
            return output.route, output.arrival_times
        evaluation = evaluate_method(f"beam{width}", predict, context.test,
                                     buckets=("all",))
        report = evaluation.buckets["all"]
        results[width] = report
        lines.append(f"{width:6d} {report.hr_at_3:7.2f} {report.krc:6.2f} "
                     f"{report.lsd:7.2f}")
    write_result("ext_beam_width.txt", "\n".join(lines))
    # Beam search optimises sequence log-likelihood; on a well-trained
    # model it should not collapse route quality.
    assert results[4].krc > results[1].krc - 0.1

    instance = context.test[0]
    benchmark(lambda: beam_search_predict(model, builder.build(instance),
                                          width=4))


def test_robustness_to_gps_noise(model, benchmark):
    context = get_context()
    instances = list(context.test)[:15]
    noise_levels = [0.0, 60.0, 150.0, 1000.0]

    def metric(route, times, instance):
        return kendall_rank_correlation(route, instance.route)

    ours = robustness_sweep(model_predictor(model), instances, noise_levels,
                            jitter_coordinates, metric)
    greedy = robustness_sweep(
        baseline_predictor(get_baselines()["Distance-Greedy"]), instances,
        noise_levels, jitter_coordinates, metric)

    lines = [f"{'noise m':>8s} {'M2G4RTP KRC':>12s} {'Dist-Greedy KRC':>16s}"]
    for level, a, b in zip(noise_levels, ours, greedy):
        lines.append(f"{level:8.0f} {a:12.3f} {b:16.3f}")
    write_result("ext_gps_robustness.txt", "\n".join(lines))

    # City-block-scale noise (1 km) must hurt both methods; moderate
    # GPS noise (<= 150 m, below within-AOI spacing) barely matters.
    assert ours[-1] < ours[0] and greedy[-1] < greedy[0]
    # The learned model keeps a usable signal even at 1 km noise: the
    # deadline/AOI features still carry ordering information.
    assert ours[-1] > 0.0

    rng = np.random.default_rng(0)
    benchmark(jitter_coordinates, instances[0], 60.0, rng)


def test_scheduled_sampling_extension(benchmark):
    context = get_context()
    epochs = max(4, context.profile.ablation_epochs // 2)
    scheduled = M2G4RTP(M2G4RTPConfig(seed=11))
    Trainer(scheduled, TrainerConfig(
        epochs=epochs, scheduled_sampling=0.5)).fit(
        context.train, context.validation)
    evaluation = evaluate_method(
        "scheduled", model_predictor(scheduled), context.test,
        buckets=("all",))
    report = evaluation.buckets["all"]
    write_result("ext_scheduled_sampling.txt",
                 f"scheduled sampling (eps->0.5, {epochs} epochs): "
                 f"HR@3 {report.hr_at_3:.2f} KRC {report.krc:.2f} "
                 f"LSD {report.lsd:.2f}")
    assert report.krc > 0.2  # learns a meaningful policy
    instance = context.test[0]
    predict = model_predictor(scheduled)
    benchmark(predict, instance)


def test_tsp_substitution_optimality_gap(benchmark):
    """Evidence for the OR-Tools substitution (DESIGN.md): the NN+2-opt
    heuristic stays within a few percent of the exact Held-Karp optimum
    at the paper's instance sizes."""
    from repro.baselines import (
        held_karp_path, nearest_neighbor_path, path_length, two_opt,
    )
    rng = np.random.default_rng(42)
    lines = [f"{'n':>4s} {'mean gap %':>11s} {'max gap %':>10s}"]
    worst = 0.0
    for n in (6, 9, 12):
        gaps = []
        for _ in range(8):
            coords = rng.random((n, 2)) * 1000
            distance = np.linalg.norm(coords[:, None] - coords[None, :],
                                      axis=-1)
            start = rng.random(n) * 1000
            heuristic = two_opt(nearest_neighbor_path(start, distance),
                                start, distance)
            exact = held_karp_path(start, distance)
            gaps.append(path_length(heuristic, start, distance)
                        / path_length(exact, start, distance) - 1.0)
        lines.append(f"{n:4d} {100 * np.mean(gaps):11.2f} "
                     f"{100 * np.max(gaps):10.2f}")
        worst = max(worst, float(np.max(gaps)))
    write_result("ext_tsp_optimality_gap.txt", "\n".join(lines))
    assert worst < 0.25  # heuristic within 25% even in the worst draw

    coords = rng.random((12, 2)) * 1000
    distance = np.linalg.norm(coords[:, None] - coords[None, :], axis=-1)
    start = rng.random(12) * 1000
    benchmark(lambda: two_opt(nearest_neighbor_path(start, distance),
                              start, distance))


def test_aoi_contiguity_repair(benchmark):
    """Post-processing extension: repairing AOI-bouncing routes helps
    the single-level Graph2Route (whose Fig. 6 failure mode is exactly
    that) and never increases AOI switches."""
    from repro.core import enforce_aoi_contiguity
    context = get_context()
    theirs = baseline_predictor(get_baselines()["Graph2Route"])
    raw_scores, repaired_scores = [], []
    for instance in context.test:
        route, _ = theirs(instance)
        aoi_of = instance.aoi_index_of_location()
        repaired = enforce_aoi_contiguity(route, aoi_of)
        raw_scores.append(kendall_rank_correlation(route, instance.route))
        repaired_scores.append(
            kendall_rank_correlation(repaired, instance.route))
    text = ("AOI-contiguity repair on Graph2Route routes\n"
            f"  raw KRC      : {np.mean(raw_scores):.3f}\n"
            f"  repaired KRC : {np.mean(repaired_scores):.3f}")
    write_result("ext_aoi_repair.txt", text)
    # Ground truth is AOI-first, so the repair stays close to or above
    # the raw quality (it can cost a little when the AOI *order* itself
    # was wrong); its hard guarantee — fewer AOI switches — is unit
    # tested in tests/test_core_postprocess.py.
    assert np.mean(repaired_scores) >= np.mean(raw_scores) - 0.05

    instance = context.test[0]
    route, _ = theirs(instance)
    benchmark(enforce_aoi_contiguity, route,
              instance.aoi_index_of_location())


def test_eta_uncertainty_intervals(model, builder, benchmark):
    """Monte-Carlo ETA intervals: actual arrivals should fall inside the
    sampled 10-90% band far more often than a point estimate would."""
    from repro.core import predict_with_uncertainty
    context = get_context()
    covered, total, widths = 0, 0, []
    for instance in list(context.test)[:12]:
        graph = builder.build(instance)
        prediction = predict_with_uncertainty(model, graph, num_samples=8,
                                              temperature=1.0, seed=1)
        margin = 5.0  # minutes of slack around the sampled band
        low = prediction.eta_low - margin
        high = prediction.eta_high + margin
        covered += int(np.sum((instance.arrival_times >= low)
                              & (instance.arrival_times <= high)))
        total += instance.num_locations
        widths.append(float(np.mean(high - low)))
    coverage = covered / total
    text = ("ETA uncertainty via route sampling (8 samples, T=1.0)\n"
            f"  10-90% band (+-5 min) coverage: {100 * coverage:.1f}%\n"
            f"  mean band width               : {np.mean(widths):.1f} min")
    write_result("ext_eta_uncertainty.txt", text)
    assert coverage > 0.3
    instance = context.test[0]
    benchmark(lambda: predict_with_uncertainty(
        model, builder.build(instance), num_samples=4, seed=0))


def test_cell_type_ablation(benchmark):
    """Extra ablation: GRU vs LSTM decoder cells (DESIGN.md Section 5)."""
    context = get_context()
    epochs = max(4, context.profile.ablation_epochs // 2)
    gru = M2G4RTP(M2G4RTPConfig(seed=11, cell_type="gru"))
    Trainer(gru, TrainerConfig(epochs=epochs)).fit(
        context.train, context.validation)
    evaluation = evaluate_method("gru-cells", model_predictor(gru),
                                 context.test, buckets=("all",))
    report = evaluation.buckets["all"]
    write_result("ext_cell_type.txt",
                 f"GRU decoder cells ({epochs} epochs): "
                 f"HR@3 {report.hr_at_3:.2f} KRC {report.krc:.2f} "
                 f"MAE {report.mae:.2f} "
                 f"(params {gru.num_parameters()} vs LSTM "
                 f"{get_m2g4rtp().num_parameters()})")
    assert report.krc > 0.2
    benchmark(model_predictor(gru), context.test[0])


def test_significance_vs_best_deep_baseline(benchmark):
    """Paired bootstrap + permutation test of M²G4RTP vs Graph2Route on
    per-instance KRC — statistical backing for the Table III claim."""
    from repro.metrics import paired_comparison
    context = get_context()
    ours = model_predictor(get_m2g4rtp())
    theirs = baseline_predictor(get_baselines()["Graph2Route"])
    our_scores, their_scores = [], []
    for instance in context.test:
        route, _ = ours(instance)
        our_scores.append(kendall_rank_correlation(route, instance.route))
        route, _ = theirs(instance)
        their_scores.append(kendall_rank_correlation(route, instance.route))
    comparison = paired_comparison(our_scores, their_scores, seed=0)
    write_result("ext_significance.txt",
                 comparison.render("M2G4RTP - Graph2Route (per-instance KRC)"))
    # The direction must favour M2G4RTP; significance depends on test size.
    assert comparison.mean_difference > -0.05
    benchmark(paired_comparison, our_scores, their_scores)


def test_deepeta_extra_row(benchmark):
    context = get_context()
    profile = context.profile
    deepeta = DeepETA(DeepBaselineConfig(epochs=profile.deep_time_epochs))
    deepeta.fit(context.train, context.validation)
    evaluation = evaluate_method(
        "DeepETA", baseline_predictor(deepeta), context.test, buckets=("all",))
    report = evaluation.buckets["all"]
    write_result("ext_deepeta.txt",
                 f"DeepETA (time-only, TSP routes): RMSE {report.rmse:.2f} "
                 f"MAE {report.mae:.2f} acc@20 {report.acc_at_20:.2f}")
    assert np.isfinite(report.mae)
    benchmark(deepeta.predict, context.test[0])
