"""Produce sample observability artifacts for CI.

Replays a handful of requests through a monitored service with tracing
and op profiling enabled, then writes to ``benchmarks/results/``:

* ``sample_metrics.prom`` — a Prometheus exposition combining service,
  trainer-style and op-profiler series from one shared registry;
* ``sample_trace.jsonl`` — the span trees of the replayed requests;
* ``sample_trace.txt`` — the same trace rendered as a text tree plus
  the top-k op table (the artifact shown in EXPERIMENTS.md).

Run ``python benchmarks/export_sample_metrics.py``; finishes in a few
seconds.
"""

from __future__ import annotations

import argparse
import pathlib

from repro.core import M2G4RTP, M2G4RTPConfig
from repro.data import GeneratorConfig, RTPDataset, SyntheticWorld
from repro.obs import MetricsRegistry, OpProfiler, disable_tracing, enable_tracing
from repro.service import RTPRequest, RTPService, ServiceMonitor

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def run(num_requests: int = 4, batch_size: int = 3) -> str:
    config = GeneratorConfig(num_aois=40, num_couriers=4, num_days=6,
                             instances_per_courier_day=2, seed=7)
    dataset = RTPDataset(SyntheticWorld(config).generate())
    instances = list(dataset)[: num_requests + batch_size]
    model = M2G4RTP(M2G4RTPConfig(hidden_dim=16, num_heads=2,
                                  num_encoder_layers=1, seed=3))

    registry = MetricsRegistry()
    monitor = ServiceMonitor(RTPService(model), registry=registry)
    monitor.handle(RTPRequest.from_instance(instances[0]))  # warm-up

    collector = enable_tracing()
    profiler = OpProfiler().start()
    try:
        for instance in instances[:num_requests]:
            monitor.handle(RTPRequest.from_instance(instance))
        monitor.handle_batch([RTPRequest.from_instance(i)
                              for i in instances[num_requests:]])
    finally:
        profiler.stop()
        disable_tracing()
    profiler.publish(registry)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "sample_metrics.prom").write_text(
        monitor.render_metrics() + "\n")
    collector.write_jsonl(RESULTS_DIR / "sample_trace.jsonl")
    report = "\n\n".join([
        "Sample request traces (one per root span)",
        collector.render(),
        "Top autodiff ops by self time",
        profiler.report(top_k=10),
    ])
    (RESULTS_DIR / "sample_trace.txt").write_text(report + "\n")
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=3)
    args = parser.parse_args()
    print(run(num_requests=args.requests, batch_size=args.batch_size))
    print(f"\nwrote sample_metrics.prom / sample_trace.jsonl / "
          f"sample_trace.txt to {RESULTS_DIR}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
