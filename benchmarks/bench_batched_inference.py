"""Sequential-vs-batched serving throughput for M²G4RTP.

Measures the same request stream through the two service paths:

* sequential — ``RTPService.handle`` once per request (the paper's
  original deployment shape);
* batched — ``RTPService.handle_batch`` over micro-batches of
  ``--batch-size`` requests (the padded/masked batched engine of
  ``repro.core.batching``).

Reports throughput (requests/s) and p50/p95 per-request latency for
both paths, verifies route parity between them, and writes the table to
``benchmarks/results/batched_inference.txt`` (``_smoke`` suffix in
smoke mode).

Run ``python benchmarks/bench_batched_inference.py`` for the full
measurement or ``--smoke`` for a <10 s CI-sized run.
"""

from __future__ import annotations

import argparse
import pathlib
import time
from typing import List

import numpy as np

from repro.core import M2G4RTP, M2G4RTPConfig
from repro.data import GeneratorConfig, RTPDataset, SyntheticWorld
from repro.service import RTPRequest, RTPService

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def build_requests(num_requests: int, seed: int = 2023) -> List[RTPRequest]:
    config = GeneratorConfig(num_aois=60, num_couriers=6, num_days=10,
                             instances_per_courier_day=3, seed=seed)
    dataset = RTPDataset(SyntheticWorld(config).generate())
    instances = list(dataset)
    requests = [RTPRequest.from_instance(instances[i % len(instances)])
                for i in range(num_requests)]
    return requests


def _percentiles(latencies_ms: List[float]) -> tuple:
    arr = np.asarray(latencies_ms)
    return float(np.percentile(arr, 50)), float(np.percentile(arr, 95))


def run(num_requests: int = 96, batch_size: int = 8,
        hidden_dim: int = 32, num_heads: int = 4,
        num_encoder_layers: int = 2, smoke: bool = False) -> str:
    """Execute the benchmark; returns the rendered report."""
    if smoke:
        num_requests = min(num_requests, 24)
        batch_size = min(batch_size, 4)
        hidden_dim = 16
        num_heads = 2
        num_encoder_layers = 1

    requests = build_requests(num_requests)
    model = M2G4RTP(M2G4RTPConfig(
        hidden_dim=hidden_dim, num_heads=num_heads,
        num_encoder_layers=num_encoder_layers, seed=11))
    service = RTPService(model)

    # Warm-up (BLAS threads, allocator) outside the timed region.
    service.handle(requests[0])
    service.handle_batch(requests[:batch_size])

    sequential_latencies: List[float] = []
    start = time.perf_counter()
    sequential_responses = []
    for request in requests:
        response = service.handle(request)
        sequential_latencies.append(response.latency_ms)
        sequential_responses.append(response)
    sequential_seconds = time.perf_counter() - start

    batched_latencies: List[float] = []
    batched_responses = []
    start = time.perf_counter()
    for offset in range(0, len(requests), batch_size):
        chunk = requests[offset:offset + batch_size]
        chunk_start = time.perf_counter()
        responses = service.handle_batch(chunk)
        chunk_ms = (time.perf_counter() - chunk_start) * 1000.0
        batched_latencies.extend([chunk_ms / len(chunk)] * len(chunk))
        batched_responses.extend(responses)
    batched_seconds = time.perf_counter() - start

    parity = all(
        np.array_equal(seq.route, bat.route)
        and np.max(np.abs(seq.eta_minutes - bat.eta_minutes)) < 1e-6
        for seq, bat in zip(sequential_responses, batched_responses))

    seq_throughput = num_requests / sequential_seconds
    bat_throughput = num_requests / batched_seconds
    seq_p50, seq_p95 = _percentiles(sequential_latencies)
    bat_p50, bat_p95 = _percentiles(batched_latencies)

    lines = [
        "Batched inference engine — sequential vs batched serving",
        f"mode={'smoke' if smoke else 'full'}  requests={num_requests}  "
        f"batch_size={batch_size}  hidden_dim={hidden_dim}",
        "",
        f"{'path':<12}{'throughput req/s':>18}{'p50 ms':>10}{'p95 ms':>10}",
        f"{'sequential':<12}{seq_throughput:>18.1f}{seq_p50:>10.2f}{seq_p95:>10.2f}",
        f"{'batched':<12}{bat_throughput:>18.1f}{bat_p50:>10.2f}{bat_p95:>10.2f}",
        "",
        f"speedup: {bat_throughput / seq_throughput:.2f}x",
        f"route/eta parity (exact route, 1e-6 eta): {'OK' if parity else 'FAILED'}",
    ]
    report = "\n".join(lines)

    RESULTS_DIR.mkdir(exist_ok=True)
    filename = ("batched_inference_smoke.txt" if smoke
                else "batched_inference.txt")
    (RESULTS_DIR / filename).write_text(report + "\n")
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run that finishes in <10 s")
    parser.add_argument("--requests", type=int, default=96)
    parser.add_argument("--batch-size", type=int, default=8)
    args = parser.parse_args()
    if args.requests < 1:
        parser.error("--requests must be >= 1")
    if args.batch_size < 1:
        parser.error("--batch-size must be >= 1")
    report = run(num_requests=args.requests, batch_size=args.batch_size,
                 smoke=args.smoke)
    print(report)
    return 0 if "FAILED" not in report else 1


if __name__ == "__main__":
    raise SystemExit(main())
