"""Table V — inference time complexity and measured latency per method.

The paper reports per-query inference milliseconds under optimal
parameters (Greedy 0.12 ... M²G4RTP 0.61).  Absolute numbers differ on
a pure-Python substrate; the shape to hold is the *ordering*: greedy
fastest, learned models slower, M²G4RTP the slowest learned model (it
adds the AOI-level decode) but the same order of magnitude as the other
deep models.
"""

import pytest

from repro.eval import format_latency_table, profile_method

from common import all_predictors, get_context, write_result


@pytest.fixture(scope="module")
def latency_reports():
    context = get_context()
    instances = list(context.test)[:20]
    return [
        profile_method(name, predict, instances, warmup=2)
        for name, predict in all_predictors().items()
    ]


def test_table5_scalability(latency_reports, benchmark):
    table = format_latency_table(latency_reports)
    write_result("table5_scalability.txt", table)
    benchmark(format_latency_table, latency_reports)

    by_name = {report.name: report for report in latency_reports}
    # Shape check 1: greedy methods are the fastest.
    fastest_learned = min(
        by_name[name].mean_ms
        for name in ("OSquare", "DeepRoute", "FDNET", "Graph2Route", "M2G4RTP"))
    assert by_name["Distance-Greedy"].mean_ms < fastest_learned
    # Shape check 2: M2G4RTP costs more than the single-level graph model
    # (extra AOI-level decode), but stays within ~10x of it.
    assert by_name["M2G4RTP"].mean_ms > by_name["Graph2Route"].mean_ms * 0.8
    assert by_name["M2G4RTP"].mean_ms < by_name["Graph2Route"].mean_ms * 10


@pytest.mark.parametrize("method", [
    "Distance-Greedy", "Time-Greedy", "OR-Tools", "OSquare",
    "DeepRoute", "FDNET", "Graph2Route", "M2G4RTP",
])
def test_bench_per_method_inference(method, benchmark):
    context = get_context()
    predict = all_predictors()[method]
    instance = context.test[0]
    benchmark(predict, instance)
