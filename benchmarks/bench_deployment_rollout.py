"""Canary rollout under injected faults: availability / degraded / p99.

Replays a synthetic traffic trace through the deployment controller in
three phases:

1. **baseline** — the registered ``v1`` serves alone (p99 "before");
2. **faulty canary** — a fault-injected ``v2`` takes a canary split
   (transient errors + latency spikes on the candidate path only); the
   controller must auto-roll-back while every request still gets an
   answer (degraded responses allowed, failures not);
3. **clean canary** — the same ``v2`` without faults; the controller
   must auto-promote it (p99 "after" measured on the promoted model).

Reports availability (answered/total), degraded-rate and p99 latency
per phase, and writes the table to
``benchmarks/results/deployment_rollout.txt`` (``_smoke`` suffix in
smoke mode).  Run with ``--smoke`` for a CI-sized run.
"""

from __future__ import annotations

import argparse
import pathlib
from typing import List

import numpy as np

from repro.core import FallbackPredictor, M2G4RTP, M2G4RTPConfig
from repro.data import GeneratorConfig, RTPDataset, SyntheticWorld
from repro.deploy import (
    DeploymentController,
    FaultInjector,
    FaultPlan,
    ModelRegistry,
    ResilienceConfig,
    RolloutPolicy,
)
from repro.service import RTPRequest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def build_trace(num_requests: int, seed: int = 2023) -> List[RTPRequest]:
    config = GeneratorConfig(num_aois=60, num_couriers=6, num_days=10,
                             instances_per_courier_day=3, seed=seed)
    dataset = RTPDataset(SyntheticWorld(config).generate())
    instances = list(dataset)
    return [RTPRequest.from_instance(instances[i % len(instances)])
            for i in range(num_requests)]


def small_model(seed: int, hidden_dim: int) -> M2G4RTP:
    model = M2G4RTP(M2G4RTPConfig(
        hidden_dim=hidden_dim, num_heads=2, num_encoder_layers=1,
        continuous_embed_dim=8, discrete_embed_dim=4, position_dim=4,
        courier_embed_dim=4, seed=seed))
    model.eval()
    return model


def replay(controller: DeploymentController,
           trace: List[RTPRequest]) -> dict:
    """Run the trace; every request must produce a valid answer."""
    answered = 0
    degraded = 0
    latencies: List[float] = []
    for request in trace:
        response = controller.handle(request)
        valid = (sorted(int(i) for i in response.route)
                 == list(range(request.num_locations))
                 and len(response.eta_minutes) == request.num_locations)
        answered += int(valid)
        degraded += int(response.degraded)
        latencies.append(response.latency_ms)
    total = len(trace)
    return {
        "availability": 100.0 * answered / total,
        "degraded_rate": 100.0 * degraded / total,
        "p50_ms": float(np.percentile(latencies, 50)),
        "p99_ms": float(np.percentile(latencies, 99)),
    }


def run(num_requests: int = 240, hidden_dim: int = 32,
        smoke: bool = False) -> str:
    """Execute the rollout benchmark; returns the rendered report."""
    if smoke:
        num_requests = min(num_requests, 60)
        hidden_dim = 16

    trace = build_trace(num_requests)
    registry_dir = RESULTS_DIR / ("rollout_registry_smoke" if smoke
                                  else "rollout_registry")
    if registry_dir.exists():
        import shutil
        shutil.rmtree(registry_dir)
    registry = ModelRegistry(registry_dir)
    registry.register(small_model(seed=11, hidden_dim=hidden_dim),
                      created_at="bench-v1", data_seed=2023)
    registry.register(small_model(seed=29, hidden_dim=hidden_dim),
                      created_at="bench-v2", data_seed=2023)

    resilience = ResilienceConfig(deadline_ms=5_000.0,
                                  breaker_recovery_seconds=0.05)
    policy = RolloutPolicy(canary_fraction=0.3,
                           min_requests=max(8, num_requests // 12),
                           max_degraded_rate=0.2)

    def fresh_controller() -> DeploymentController:
        return DeploymentController(
            registry, resilience=resilience, policy=policy,
            fallback=FallbackPredictor(), initial="v001", seed=7)

    # Phase 1: baseline, v1 alone.
    controller = fresh_controller()
    baseline = replay(controller, trace)

    # Phase 2: canary of v2 with injected faults on the candidate only.
    controller = fresh_controller()
    injector = FaultInjector(FaultPlan(
        error_rate=0.7, spike_rate=0.2, latency_spike_ms=2.0), seed=13)
    controller.start_canary("v002", fault_injector=injector)
    faulty = replay(controller, trace)
    faulty_decisions = list(controller.decisions)
    rolled_back = any(d.action == "rollback" for d in faulty_decisions)
    after_faulty_active = controller.active_version

    # Phase 3: clean canary of v2 — should promote.
    controller = fresh_controller()
    controller.start_canary("v002")
    clean = replay(controller, trace)
    clean_decisions = list(controller.decisions)
    promoted = any(d.action == "promote" for d in clean_decisions)
    after_clean_active = controller.active_version

    def row(name: str, stats: dict) -> str:
        return (f"  {name:16s} availability {stats['availability']:6.2f}%  "
                f"degraded {stats['degraded_rate']:6.2f}%  "
                f"p50 {stats['p50_ms']:7.2f} ms  "
                f"p99 {stats['p99_ms']:7.2f} ms")

    decisions_text = "\n".join(
        f"  {d.action:9s} {d.version} — {d.reason}"
        for d in faulty_decisions + clean_decisions) or "  (none)"
    lines = [
        "Deployment rollout benchmark"
        + (" (smoke)" if smoke else ""),
        f"  requests/phase : {num_requests}  "
        f"canary fraction {policy.canary_fraction:.0%}  "
        f"verdict after {policy.min_requests} candidate requests",
        f"  injected faults: error_rate 0.70, spike_rate 0.20 "
        f"(candidate path only)",
        "",
        row("baseline v1", baseline),
        row("faulty canary", faulty),
        row("clean canary", clean),
        "",
        "decisions:",
        decisions_text,
        "",
        f"  faulty v2 rolled back : {rolled_back} "
        f"(active stayed {after_faulty_active})",
        f"  clean  v2 promoted    : {promoted} "
        f"(active now {after_clean_active})",
    ]
    report = "\n".join(lines)

    assert baseline["availability"] == 100.0
    assert faulty["availability"] == 100.0, "degradation must not drop requests"
    assert rolled_back and after_faulty_active == "v001"
    assert promoted and after_clean_active == "v002"

    import shutil
    shutil.rmtree(registry_dir, ignore_errors=True)
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (<10s)")
    parser.add_argument("--requests", type=int, default=240)
    parser.add_argument("--hidden-dim", type=int, default=32)
    args = parser.parse_args()
    report = run(num_requests=args.requests, hidden_dim=args.hidden_dim,
                 smoke=args.smoke)
    RESULTS_DIR.mkdir(exist_ok=True)
    suffix = "_smoke" if args.smoke else ""
    out = RESULTS_DIR / f"deployment_rollout{suffix}.txt"
    out.write_text(report + "\n")
    print(report)
    print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
