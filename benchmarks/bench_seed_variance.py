"""Paper-style mean±std rows (Tables III/IV report e.g. 74.46±0.01).

Trains M²G4RTP under multiple seeds and aggregates the six metrics the
way the paper's tables do.  Kept to two seeds and shortened training in
the quick profile; raise ``REPRO_BENCH_PROFILE=full`` (and the seed
list) for tighter intervals.
"""

import numpy as np
import pytest

from repro.core import M2G4RTP, M2G4RTPConfig
from repro.eval import evaluate_over_seeds, format_seeded_table, model_predictor
from repro.training import Trainer, TrainerConfig

from common import get_context, profile_name, write_result

SEEDS = {"quick": [11, 12], "full": [11, 12, 13]}


@pytest.fixture(scope="module")
def seeded_evaluation():
    context = get_context()
    epochs = max(4, context.profile.ablation_epochs // 2)

    def factory(seed):
        model = M2G4RTP(M2G4RTPConfig(seed=seed))
        Trainer(model, TrainerConfig(epochs=epochs, shuffle_seed=seed)).fit(
            context.train, context.validation)
        return model_predictor(model)

    return evaluate_over_seeds(
        "M2G4RTP", factory, context.test,
        seeds=SEEDS[profile_name()], buckets=("all",))


def test_seed_variance_table(seeded_evaluation, benchmark):
    route = format_seeded_table([seeded_evaluation], "route")
    time = format_seeded_table([seeded_evaluation], "time")
    write_result("seed_variance.txt", route + "\n\n" + time)
    benchmark(format_seeded_table, [seeded_evaluation], "route")

    krc = seeded_evaluation.cell("all", "krc")
    mae = seeded_evaluation.cell("all", "mae")
    # The paper's learned models show small run-to-run variance; ours
    # should be a stable estimator too (std well below the mean signal).
    assert krc.mean > 0.3
    assert krc.std < 0.3
    assert np.isfinite(mae.mean)
