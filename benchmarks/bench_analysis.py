"""Error-analysis benches: where does each model's error live?

* Position-error curves: the paper attributes FDNET's weakness to error
  accumulation along the route; the curves make that visible — the
  two-step model's time error should grow faster with route position
  than the jointly trained M²G4RTP.
* Calibration: predicted vs. actual ETA regression for M²G4RTP.
* Dynamic-day replay: quality across a realistic re-prediction stream.
"""

import numpy as np
import pytest

from repro.data import DynamicDaySimulator
from repro.eval import (
    baseline_predictor,
    calibration_report,
    format_breakdown,
    breakdown_by,
    model_predictor,
    position_error_curve,
)
from repro.metrics import kendall_rank_correlation
from repro.service import RTPRequest, RTPService

from common import get_baselines, get_context, get_m2g4rtp, write_result


@pytest.fixture(scope="module")
def ours():
    return model_predictor(get_m2g4rtp())


def test_position_error_curves(ours, benchmark):
    context = get_context()
    instances = list(context.test)
    our_curve = position_error_curve(ours, instances)
    fdnet_curve = position_error_curve(
        baseline_predictor(get_baselines()["FDNET"]), instances)

    text = ("M2G4RTP\n" + our_curve.render()
            + "\n\nFDNET (two-step)\n" + fdnet_curve.render())
    write_result("analysis_position_error.txt", text)

    # Error-accumulation shape: over the back half of the route the
    # two-step FDNET's time error exceeds the joint model's.
    half = our_curve.positions.size // 2
    ours_tail = our_curve.mae[half:].mean()
    fdnet_tail = fdnet_curve.mae[:half * 2][half:].mean()
    assert ours_tail < fdnet_tail

    benchmark(position_error_curve, ours, instances[:10])


def test_calibration(ours, benchmark):
    context = get_context()
    report = calibration_report(ours, list(context.test))
    write_result("analysis_calibration.txt", report.render())
    # A sane ETA model: strongly correlated, slope near 1, small bias.
    assert report.correlation > 0.7
    assert 0.5 < report.slope < 1.5
    assert abs(report.mean_bias) < 20.0
    benchmark(calibration_report, ours, list(context.test)[:10])


def test_weather_breakdown(ours, benchmark):
    context = get_context()
    breakdown = breakdown_by(ours, list(context.test),
                             key=lambda i: i.weather)
    write_result("analysis_weather_breakdown.txt",
                 format_breakdown(breakdown, "weather"))
    assert sum(int(stats["count"]) for stats in breakdown.values()) == len(
        context.test)
    benchmark(format_breakdown, breakdown, "weather")


def test_courier_cold_start(benchmark):
    """Generalization to unseen couriers: train on a courier subset,
    compare seen-courier vs held-out-courier test quality."""
    from repro.core import M2G4RTP, M2G4RTPConfig
    from repro.data import cold_start_protocol
    from repro.eval import evaluate_method
    from repro.training import Trainer, TrainerConfig

    context = get_context()
    train, seen_test, unseen_test = cold_start_protocol(
        context.dataset, holdout_fraction=0.3, seed=4)
    epochs = max(4, context.profile.ablation_epochs // 2)
    model = M2G4RTP(M2G4RTPConfig(seed=11))
    Trainer(model, TrainerConfig(epochs=epochs)).fit(train)
    predict = model_predictor(model)

    seen = evaluate_method("seen", predict, seen_test,
                           buckets=("all",)).buckets["all"]
    unseen = evaluate_method("unseen", predict, unseen_test,
                             buckets=("all",)).buckets["all"]
    text = ("courier cold-start (train couriers vs held-out couriers)\n"
            f"  seen   KRC {seen.krc:.3f}  MAE {seen.mae:6.2f} "
            f"(n={seen.num_instances})\n"
            f"  unseen KRC {unseen.krc:.3f}  MAE {unseen.mae:6.2f} "
            f"(n={unseen.num_instances})")
    write_result("analysis_cold_start.txt", text)
    # Transferable structure: held-out couriers stay clearly above chance.
    assert unseen.krc > 0.2
    benchmark(predict, unseen_test[0])


def test_dynamic_day_replay(benchmark):
    context = get_context()
    service = RTPService(get_m2g4rtp())
    simulator = DynamicDaySimulator(context.world, courier_index=0,
                                    initial_orders=7, seed=5)
    day = simulator.simulate()
    krcs, latencies = [], []
    for snapshot in day.snapshots:
        response = service.handle(RTPRequest.from_instance(snapshot))
        krcs.append(kendall_rank_correlation(response.route, snapshot.route))
        latencies.append(response.latency_ms)
    text = (f"dynamic day: {len(day)} re-plan events "
            f"({day.event_kinds.count('arrival')} arrivals)\n"
            f"  mean KRC      : {np.mean(krcs):.3f}\n"
            f"  mean latency  : {np.mean(latencies):.2f} ms")
    write_result("analysis_dynamic_replay.txt", text)
    assert np.mean(krcs) > 0.2
    snapshot = day.snapshots[0]
    benchmark(service.handle, RTPRequest.from_instance(snapshot))
