"""Reference-vs-fused kernel latency for the no-grad hot paths.

Measures each dispatched kernel stage on a prebuilt :class:`GraphBatch`
(the shape the serving path actually sees, with guidance inputs already
constructed) under both ``kernels`` backends:

* ``gat_encoder``   — multi-level GAT-e encoder ``forward_batch``;
* ``pointer_decode``— location-level greedy route decode;
* ``sort_rnn``      — location-level arrival-time decode;
* ``aoi_route_decode`` / ``aoi_time_decode`` — the AOI-level decodes;
* ``lstm_unroll``   — raw recurrent unroll kernel on synthetic inputs;
* ``encoder+decode``— the sum of the five dispatched stages (encoder,
  AOI route/time decode, location route/time decode): the serving hot
  path with backend-independent glue excluded;
* ``end_to_end``    — the full ``BatchedM2G4RTP._predict`` stage chain,
  including the per-instance guidance construction that runs in plain
  Python regardless of backend.

Each stage is timed as the minimum over ``--rounds`` rounds of
``--iters`` calls (min-of-rounds suppresses allocator/scheduler noise).
Before timing, the two backends' full predictions are compared — exact
routes, 1e-8 ETAs — and any mismatch fails the run (exit code 1), so a
fast-but-wrong kernel can never publish a number.

Writes the table to ``benchmarks/results/kernels.txt`` (``_smoke``
suffix in smoke mode).  Run ``--smoke`` for a <10 s CI-sized run.
"""

from __future__ import annotations

import argparse
import pathlib
import time
from typing import Callable, Dict, List

import numpy as np

from repro import kernels
from repro.autodiff import Tensor, concat, no_grad, padded_gather
from repro.core import BatchedM2G4RTP, GraphBatch, M2G4RTP, M2G4RTPConfig
from repro.core.decoder import positional_guidance
from repro.data import GeneratorConfig, RTPDataset, SyntheticWorld
from repro.graphs import GraphBuilder
from repro.nn import LSTMCell

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def build_batches(batch_sizes: List[int], seed: int = 123) -> Dict[int, tuple]:
    """One GraphBatch (plus its raw graphs) per requested batch size."""
    config = GeneratorConfig(num_aois=40, num_couriers=4, num_days=6,
                             instances_per_courier_day=2, seed=seed)
    instances = list(RTPDataset(SyntheticWorld(config).generate()))
    builder = GraphBuilder(k_neighbors=3)
    out = {}
    for size in batch_sizes:
        graphs = [builder.build(instances[i % len(instances)])
                  for i in range(size)]
        out[size] = (GraphBatch.from_graphs(graphs), graphs)
    return out


def prepare_stage_inputs(model: M2G4RTP, batch: GraphBatch) -> Dict[str, object]:
    """Replicate ``BatchedM2G4RTP._predict`` up to the location stages.

    The location decoders consume guidance-concatenated inputs (encoder
    reps + AOI positional guidance + per-location ETA), so timing them
    in isolation requires the same construction the serving path does.
    """
    cfg = model.config
    size = len(batch)
    n = batch.location.max_nodes
    with no_grad(), kernels.backend_scope("reference"):
        location_reps, aoi_reps = model.encoder.forward_batch(batch)
        courier_embed = model.courier_embedding(
            batch.courier_ids % cfg.num_couriers)
        courier = concat([courier_embed, Tensor(batch.courier_profiles)],
                         axis=-1)
        aoi_routes = model.aoi_route_decoder.forward_batch(
            aoi_reps, courier, batch.aoi.lengths,
            adjacency=batch.aoi.adjacency)
        aoi_times = model.aoi_time_decoder.forward_batch(
            aoi_reps, aoi_routes, batch.aoi.lengths)
        positions = np.zeros((size, batch.aoi.max_nodes, cfg.position_dim))
        for b in range(size):
            m_b = int(batch.aoi.lengths[b])
            positions[b, :m_b] = positional_guidance(
                aoi_routes[b, :m_b], cfg.position_dim)
        per_location_positions = positions[
            np.arange(size)[:, None], batch.aoi_of_location]
        per_location_eta = padded_gather(
            aoi_times, batch.aoi_of_location, valid=batch.location.mask)
        location_inputs = concat(
            [location_reps, Tensor(per_location_positions),
             per_location_eta.reshape(size, n, 1)], axis=-1)
        routes = model.location_route_decoder.forward_batch(
            location_inputs, courier, batch.location.lengths,
            adjacency=batch.location.adjacency)
    return {"courier": courier, "aoi_reps": aoi_reps,
            "aoi_routes": aoi_routes, "location_inputs": location_inputs,
            "routes": routes}


def time_stage(fn: Callable[[], object], iters: int, rounds: int) -> float:
    """Minimum per-call milliseconds over ``rounds`` rounds of ``iters``."""
    fn()  # warm-up: workspace buffers, BLAS threads
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, (time.perf_counter() - start) / iters)
    return best * 1000.0


def check_parity(engine: BatchedM2G4RTP, graphs) -> bool:
    with kernels.backend_scope("reference"):
        ref = engine.predict(graphs)
    with kernels.backend_scope("fused"):
        fus = engine.predict(graphs)
    for a, b in zip(ref, fus):
        if not np.array_equal(a.route, b.route):
            return False
        if np.max(np.abs(a.arrival_times - b.arrival_times)) > 1e-8:
            return False
        if a.aoi_route is not None and not np.array_equal(a.aoi_route,
                                                          b.aoi_route):
            return False
    return True


def run(batch_sizes: List[int], iters: int = 30, rounds: int = 5,
        smoke: bool = False) -> str:
    """Execute the benchmark; returns the rendered report."""
    if smoke:
        iters = min(iters, 10)
        rounds = min(rounds, 3)

    model = M2G4RTP(M2G4RTPConfig(hidden_dim=32, num_heads=4,
                                  num_encoder_layers=2, seed=11))
    model.eval()
    engine = BatchedM2G4RTP(model)
    batches = build_batches(batch_sizes)

    lines = [
        "Fused kernels — reference vs fused backend latency (ms/call, "
        "min over rounds)",
        f"mode={'smoke' if smoke else 'full'}  iters={iters}  "
        f"rounds={rounds}  hidden_dim=32 heads=4 layers=2",
        "",
        f"{'stage':<18}{'batch':>6}{'reference':>12}{'fused':>10}"
        f"{'speedup':>9}",
    ]
    parity_ok = True
    e2e_speedups = []
    for size in batch_sizes:
        batch, graphs = batches[size]
        if not check_parity(engine, graphs):
            parity_ok = False
        prepared = prepare_stage_inputs(model, batch)

        def encoder_stage():
            return model.encoder.forward_batch(batch)

        def aoi_route_stage():
            return model.aoi_route_decoder.forward_batch(
                prepared["aoi_reps"], prepared["courier"],
                batch.aoi.lengths, adjacency=batch.aoi.adjacency)

        def aoi_time_stage():
            return model.aoi_time_decoder.forward_batch(
                prepared["aoi_reps"], prepared["aoi_routes"],
                batch.aoi.lengths)

        def pointer_stage():
            return model.location_route_decoder.forward_batch(
                prepared["location_inputs"], prepared["courier"],
                batch.location.lengths, adjacency=batch.location.adjacency)

        def sort_stage():
            return model.location_time_decoder.forward_batch(
                prepared["location_inputs"], prepared["routes"],
                batch.location.lengths)

        def end_to_end_stage():
            return engine._predict(batch)

        cell = LSTMCell(32, 32, np.random.default_rng(0))
        unroll_input = np.random.default_rng(1).normal(
            size=(size, batch.location.max_nodes, 32))

        def unroll_stage():
            return kernels.active().lstm_unroll(cell, unroll_input)

        # The five dispatched kernel stages; their per-backend sum is the
        # "encoder+decode" hot path (glue code excluded on both sides).
        kernel_stages = [("gat_encoder", encoder_stage),
                         ("aoi_route_decode", aoi_route_stage),
                         ("aoi_time_decode", aoi_time_stage),
                         ("pointer_decode", pointer_stage),
                         ("sort_rnn", sort_stage)]
        path_totals = {"reference": 0.0, "fused": 0.0}
        for name, fn in kernel_stages + [("lstm_unroll", unroll_stage),
                                         ("end_to_end", end_to_end_stage)]:
            timings = {}
            for backend in ("reference", "fused"):
                with no_grad(), kernels.backend_scope(backend):
                    timings[backend] = time_stage(fn, iters, rounds)
            if (name, fn) in kernel_stages:
                for backend in path_totals:
                    path_totals[backend] += timings[backend]
            speedup = timings["reference"] / timings["fused"]
            lines.append(f"{name:<18}{size:>6}{timings['reference']:>12.3f}"
                         f"{timings['fused']:>10.3f}{speedup:>8.2f}x")
        path_speedup = path_totals["reference"] / path_totals["fused"]
        e2e_speedups.append(path_speedup)
        lines.append(f"{'encoder+decode':<18}{size:>6}"
                     f"{path_totals['reference']:>12.3f}"
                     f"{path_totals['fused']:>10.3f}{path_speedup:>8.2f}x")
        lines.append("")

    lines.append(f"encoder+decode speedups: "
                 + "  ".join(f"bs={s}: {x:.2f}x"
                             for s, x in zip(batch_sizes, e2e_speedups)))
    lines.append("route/eta parity (exact route, 1e-8 eta): "
                 + ("OK" if parity_ok else "FAILED"))
    report = "\n".join(lines)

    RESULTS_DIR.mkdir(exist_ok=True)
    filename = "kernels_smoke.txt" if smoke else "kernels.txt"
    (RESULTS_DIR / filename).write_text(report + "\n")
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run that finishes in <10 s")
    parser.add_argument("--batch-sizes", type=int, nargs="+",
                        default=[1, 4, 8])
    parser.add_argument("--iters", type=int, default=30)
    parser.add_argument("--rounds", type=int, default=5)
    args = parser.parse_args()
    if any(b < 1 for b in args.batch_sizes):
        parser.error("--batch-sizes entries must be >= 1")
    report = run(batch_sizes=args.batch_sizes, iters=args.iters,
                 rounds=args.rounds, smoke=args.smoke)
    print(report)
    return 0 if "FAILED" not in report else 1


if __name__ == "__main__":
    raise SystemExit(main())
